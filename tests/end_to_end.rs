//! Workspace-level integration tests: cross-crate scenarios through the
//! `caa` facade.

use std::sync::Arc;

use caa::baselines::{CrResolution, Rom96Resolution};
use caa::core::exception::{Exception, ExceptionId};
use caa::core::outcome::{ActionOutcome, HandlerVerdict};
use caa::core::time::secs;
use caa::exgraph::generate::conjunction_lattice;
use caa::exgraph::ExceptionGraphBuilder;
use caa::prodcell::{CellFaultScripts, ControllerConfig, DeviceFault, FaultScript, ProductionCell};
use caa::runtime::protocol::ResolutionProtocol;
use caa::runtime::{ActionDef, System};
use caa::simnet::{ClockMode, FaultPlan, FaultSpec, LatencyModel};

/// The production cell keeps producing under every resolution protocol —
/// the paper's claim that the protocol is a pluggable part of the CA-action
/// support (§5.3).
#[test]
fn production_cell_runs_under_every_protocol() {
    for protocol in [
        None,
        Some(Arc::new(CrResolution) as Arc<dyn ResolutionProtocol>),
        Some(Arc::new(Rom96Resolution)),
    ] {
        let scripts = CellFaultScripts {
            table: FaultScript::new().with(3, DeviceFault::VerticalMotorStop),
            ..CellFaultScripts::default()
        };
        let cell = ProductionCell::new(scripts);
        let config = ControllerConfig {
            cycles: 2,
            ..ControllerConfig::default()
        };
        let mut builder = System::builder()
            .latency(config.latency)
            .seed(config.seed)
            .resolution_delay(config.resolution_delay);
        let label = match &protocol {
            Some(p) => {
                let name = p.name();
                builder = builder.protocol(Arc::clone(p));
                name
            }
            None => "default",
        };
        let mut sys = builder.build();
        caa::prodcell::spawn_controller(&mut sys, &cell, &config);
        let report = sys.run();
        assert!(report.is_ok(), "{label}: {:?}", report.results);
        let m = cell.metrics.committed();
        assert_eq!(m.delivered, 2, "{label}: {m:?}");
        assert!(cell.audit_committed().is_consistent(), "{label}");
    }
}

/// Network-level message loss during the production cell's signalling is
/// absorbed by the §3.4 extension when a signal timeout is set; here we
/// lose an application message instead and let the corruption path raise
/// `l_mes` — Figure 7's ninth primitive exception, reached end-to-end.
#[test]
fn corrupted_network_message_raises_l_mes_in_the_cell() {
    let cell = ProductionCell::new(CellFaultScripts::default());
    let config = ControllerConfig {
        cycles: 2,
        ..ControllerConfig::default()
    };
    let mut sys = System::builder()
        .latency(config.latency)
        .seed(config.seed)
        .resolution_delay(config.resolution_delay)
        .faults(FaultPlan::new().corrupt(FaultSpec::any().class("App").count(1)))
        .build();
    caa::prodcell::spawn_controller(&mut sys, &cell, &config);
    let report = sys.run();
    assert!(report.is_ok(), "{:?}", report.results);
    assert!(
        report.runtime_stats.recoveries > 0,
        "the corrupted message must have triggered coordinated recovery"
    );
    assert!(cell.audit_committed().is_consistent());
}

/// The whole stack also runs in real time (no virtual clock): protocols do
/// not depend on the simulated-time machinery.
#[test]
fn real_clock_smoke_test() {
    let graph = ExceptionGraphBuilder::new()
        .resolves("both", ["a", "b"])
        .build()
        .unwrap();
    let action = ActionDef::builder("real_time")
        .role("left", 0u32)
        .role("right", 1u32)
        .graph(graph)
        .handler("left", "both", |_| Ok(HandlerVerdict::Recovered))
        .handler("right", "both", |_| Ok(HandlerVerdict::Recovered))
        .build()
        .unwrap();
    let mut sys = System::builder()
        .clock(ClockMode::Real)
        .latency(LatencyModel::Fixed(caa::core::time::millis(5)))
        .build();
    let wall = std::time::Instant::now();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "left", |rc| {
            rc.work(caa::core::time::millis(20))?;
            rc.raise(Exception::new("a"))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "right", |rc| {
            rc.work(caa::core::time::millis(20))?;
            rc.raise(Exception::new("b"))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    assert!(
        wall.elapsed() >= std::time::Duration::from_millis(20),
        "real mode consumes wall time"
    );
    assert_eq!(report.runtime_stats.resolutions_invoked, 1);
}

/// Determinism: the same virtual-time configuration produces the same
/// elapsed time and message counts run after run.
#[test]
fn virtual_runs_are_reproducible() {
    let run = || {
        let prims: Vec<ExceptionId> = (0..4).map(|i| ExceptionId::new(format!("e{i}"))).collect();
        let graph = conjunction_lattice(&prims, 4).unwrap();
        let mut builder = ActionDef::builder("repro");
        for i in 0..4u32 {
            builder = builder.role(format!("r{i}"), i);
        }
        builder = builder.graph(graph);
        for i in 0..4u32 {
            builder = builder.fallback_handler(format!("r{i}"), |_| Ok(HandlerVerdict::Recovered));
        }
        let action = builder.build().unwrap();
        let mut sys = System::builder()
            .latency(LatencyModel::UniformUpTo(secs(0.7)))
            .seed(99)
            .resolution_delay(secs(0.2))
            .build();
        for i in 0..4u32 {
            let a = action.clone();
            sys.spawn(format!("T{i}"), move |ctx| {
                ctx.enter(&a, &format!("r{i}"), |rc| {
                    rc.work(secs(0.5))?;
                    if i % 2 == 0 {
                        rc.raise(Exception::new(format!("e{i}")))?;
                    }
                    rc.work(secs(10.0))
                })
                .map(|_| ())
            });
        }
        let report = sys.run();
        report.expect_ok();
        (
            report.elapsed.as_nanos(),
            report.net_stats.total_sent(),
            report.runtime_stats.resolutions_invoked,
        )
    };
    assert_eq!(run(), run());
}

/// Coverage-guided fuzzing smoke: a ≤200-execution budget over the seed
/// corpus still lets frontier-scheduled mutations mint at least one
/// protocol-path signature the fresh seeds alone never reached — the
/// feedback loop works end to end through the facade, cheap enough for
/// tier 1.
#[test]
fn fuzz_smoke_finds_a_novel_path_beyond_the_seed_corpus() {
    use caa::harness::fuzz::{fuzz, FuzzConfig};
    let report = fuzz(&FuzzConfig {
        executions: 160,
        initial_seeds: 48,
        batch: 32,
        workers: 2,
        ..FuzzConfig::default()
    });
    assert!(report.executions <= 200, "smoke budget exceeded");
    assert!(
        report.novel_from_mutation >= 1,
        "no mutated child reached a signature outside the 48-seed corpus:\n{}",
        report.summary()
    );
    assert!(report.generations >= 1, "the frontier never scheduled");
}

/// A long chain of nested actions (depth 4) aborts cleanly from the top.
#[test]
fn deep_nesting_abort_cascade() {
    let order = Arc::new(std::sync::Mutex::new(Vec::new()));
    let graph = ExceptionGraphBuilder::new()
        .resolves("covered", ["TOP", "AB1"])
        .build()
        .unwrap();
    let mut outer = ActionDef::builder("level0")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph);
    for role in ["a", "b"] {
        outer = outer.fallback_handler(role, |_| Ok(HandlerVerdict::Recovered));
    }
    let outer = outer.build().unwrap();

    let mut defs = Vec::new();
    for depth in 1..=3 {
        let o = Arc::clone(&order);
        let def = ActionDef::builder(format!("level{depth}"))
            .role("b", 1u32)
            .abort_handler("b", move |_| {
                o.lock().unwrap().push(depth);
                Ok((depth == 1).then(|| Exception::new("AB1")))
            })
            .build()
            .unwrap();
        defs.push(def);
    }

    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.05)))
        .build();
    let o0 = outer.clone();
    sys.spawn("T0", move |ctx| {
        ctx.enter(&o0, "a", |rc| {
            rc.work(secs(1.0))?;
            rc.raise(Exception::new("TOP"))
        })
        .map(|_| ())
    });
    sys.spawn("T1", move |ctx| {
        ctx.enter(&outer, "b", |rc| {
            rc.enter(&defs[0], "b", |c1| {
                c1.enter(&defs[1], "b", |c2| {
                    c2.enter(&defs[2], "b", |c3| c3.work(secs(120.0)))?;
                    Ok(())
                })?;
                Ok(())
            })?;
            Ok(())
        })
        .map(|_| ())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(
        order.lock().unwrap().as_slice(),
        [3, 2, 1],
        "abortion handlers run innermost-first across the whole chain"
    );
    assert_eq!(report.runtime_stats.aborts, 3);
}
