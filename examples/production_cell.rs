//! The paper's case study (§4): the FZI production cell controlled by
//! nested CA actions, with faults injected into the devices.
//!
//! ```text
//! cargo run --example production_cell
//! ```
//!
//! Forges five blanks while the table's vertical motor stalls once and a
//! plate is dropped once; forward recovery repairs the motor, the lost
//! plate escalates `l_plate → L_PLATE → lost_workpiece` through the action
//! hierarchy, and production continues.

use caa::prodcell::{
    build_system, move_loaded_table_graph, CellFaultScripts, ControllerConfig, DeviceFault,
    FaultScript, ProductionCell,
};

fn main() {
    println!("Move_Loaded_Table exception graph (Figure 7), DOT format:");
    println!("{}", move_loaded_table_graph().to_dot());

    let scripts = CellFaultScripts {
        table: FaultScript::new()
            .with(3, DeviceFault::VerticalMotorStop) // cycle 1: lift stalls
            .with(16, DeviceFault::LostPlate), // cycle 3: plate drops
        ..CellFaultScripts::default()
    };
    let cell = ProductionCell::new(scripts);
    let config = ControllerConfig {
        cycles: 5,
        ..ControllerConfig::default()
    };

    println!("running 5 production cycles with scripted faults…");
    let report = build_system(&cell, &config).run();
    report.expect_ok();

    let m = cell.metrics.committed();
    println!();
    println!("blanks inserted        : {}", m.inserted);
    println!("forged plates delivered: {}", m.delivered);
    println!("plates lost            : {}", m.lost_plates);
    println!("cycles with recovery   : {}", m.recovered_cycles);
    println!(
        "coordinated recoveries : {} (across all participants and levels)",
        report.runtime_stats.recoveries
    );
    println!(
        "virtual time           : {:.2}s; control messages: {}",
        report.elapsed_secs(),
        report.net_stats.total_sent()
    );
    let audit = cell.audit_committed();
    assert!(audit.is_consistent(), "plate conservation: {audit:?}");
    println!("plate conservation audit: {audit:?} — consistent");
}
