//! Quickstart: two cooperating roles, one exception, coordinated recovery.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A `calibrate` CA action has two roles on two (simulated) nodes. The
//! driver raises `sensor_glitch` mid-way; the runtime informs the monitor,
//! both transfer control to their handlers for the resolved exception, and
//! the action still exits successfully after forward recovery.

use caa::core::exception::Exception;
use caa::core::outcome::{ActionOutcome, HandlerVerdict};
use caa::core::time::secs;
use caa::exgraph::ExceptionGraphBuilder;
use caa::runtime::{ActionDef, System};
use caa::simnet::LatencyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = ExceptionGraphBuilder::new()
        .primitive("sensor_glitch")
        .build()?;

    let action = ActionDef::builder("calibrate")
        .role("driver", 0u32)
        .role("monitor", 1u32)
        .graph(graph)
        .handler("driver", "sensor_glitch", |hc| {
            println!("  [driver ] handling {}", hc.handling().unwrap());
            hc.work(secs(0.2))?; // re-zero the sensor
            Ok(HandlerVerdict::Recovered)
        })
        .handler("monitor", "sensor_glitch", |hc| {
            println!("  [monitor] handling {}", hc.handling().unwrap());
            Ok(HandlerVerdict::Recovered)
        })
        .build()?;

    let mut sys = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(0.05)))
        .seed(1)
        .resolution_delay(secs(0.01))
        .build();

    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "driver", |rc| {
            rc.work(secs(0.5))?;
            println!("  [driver ] raising sensor_glitch");
            rc.raise(Exception::new("sensor_glitch"))
        })?;
        println!("  [driver ] action outcome: {outcome}");
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "monitor", |rc| {
            // Would run for 60 virtual seconds; the driver's exception
            // interrupts it at the next poll point.
            rc.work(secs(60.0))
        })?;
        println!("  [monitor] action outcome: {outcome}");
        Ok(())
    });

    println!("running the calibrate action:");
    let report = sys.run();
    report.expect_ok();
    println!(
        "done in {:.3} virtual seconds; {} resolution message(s), {} recovery(ies)",
        report.elapsed_secs(),
        report.net_stats.sent("Exception")
            + report.net_stats.sent("Suspended")
            + report.net_stats.sent("Commit"),
        report.runtime_stats.recoveries,
    );
    Ok(())
}
