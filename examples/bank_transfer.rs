//! Coordinated µ/ƒ semantics in a two-bank transfer.
//!
//! ```text
//! cargo run --example bank_transfer
//! ```
//!
//! Two banks perform a transfer inside a CA action over transactional
//! account objects. Run 1: the receiving bank detects a compliance problem
//! and requests **undo (µ)** — both banks' effects roll back atomically.
//! Run 2: the money has already been handed to an irreversible cash
//! dispenser, so undo is impossible and the action signals **failure (ƒ)**,
//! leaving the dispenser tainted for the enclosing context to handle.

use caa::core::exception::Exception;
use caa::core::outcome::{ActionOutcome, HandlerVerdict};
use caa::core::time::secs;
use caa::exgraph::ExceptionGraphBuilder;
use caa::runtime::objects::irreversible;
use caa::runtime::{ActionDef, SharedObject, System};

fn transfer_action(undoable: bool) -> (ActionDef, SharedObject<i64>, SharedObject<i64>) {
    let graph = ExceptionGraphBuilder::new()
        .primitive("compliance_hold")
        .build()
        .expect("graph");
    let source = SharedObject::new("source_account", 1_000i64);
    let dest: SharedObject<i64> = if undoable {
        SharedObject::new("dest_account", 50)
    } else {
        irreversible("cash_dispenser", 50)
    };
    let action = ActionDef::builder("transfer")
        .role("debit", 0u32)
        .role("credit", 1u32)
        .graph(graph)
        // The receiving side cannot recover: it requests undo.
        .handler("credit", "compliance_hold", |_| Ok(HandlerVerdict::Undo))
        .handler("debit", "compliance_hold", |_| {
            Ok(HandlerVerdict::Recovered)
        })
        .build()
        .expect("definition");
    (action, source, dest)
}

fn run(undoable: bool) -> ActionOutcome {
    let (action, source, dest) = transfer_action(undoable);
    let mut sys = System::builder().build();
    let (a, src) = (action.clone(), source.clone());
    let mut outcome_seen = ActionOutcome::Success;
    let (tx, rx) = std::sync::mpsc::channel();
    sys.spawn("bank_a", move |ctx| {
        let outcome = ctx.enter(&a, "debit", |rc| {
            rc.update(&src, |b| *b -= 200)?;
            rc.work(secs(5.0))
        })?;
        tx.send(outcome).ok();
        Ok(())
    });
    let d = dest.clone();
    sys.spawn("bank_b", move |ctx| {
        ctx.enter(&action, "credit", |rc| {
            rc.update(&d, |b| *b += 200)?;
            rc.work(secs(0.5))?;
            // Compliance check fails after the credit was applied.
            rc.raise(Exception::new("compliance_hold"))
        })
        .map(|_| ())
    });
    sys.run().expect_ok();
    if let Ok(o) = rx.try_recv() {
        outcome_seen = o;
    }
    println!(
        "  source balance: {:>5}   destination balance: {:>5}   tainted: {}",
        source.committed(),
        dest.committed(),
        dest.is_tainted()
    );
    outcome_seen
}

fn main() {
    println!("run 1: both accounts undoable — µ rolls everything back");
    let outcome = run(true);
    println!("  outcome for the debit side: {outcome}");
    assert_eq!(outcome, ActionOutcome::Undone);

    println!();
    println!("run 2: destination is a cash dispenser — undo impossible, ƒ signalled");
    let outcome = run(false);
    println!("  outcome for the debit side: {outcome}");
    assert_eq!(outcome, ActionOutcome::Failed);
}
