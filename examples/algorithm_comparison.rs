//! Head-to-head of the three resolution algorithms on the §5.3 workload.
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```
//!
//! Three threads raise different exceptions nearly simultaneously; the same
//! run executes under the paper's 1998 algorithm, Romanovsky-1996 and
//! Campbell–Randell-1986, printing time, messages and resolution
//! invocations — the comparison behind Figures 12/13.

use std::sync::Arc;

use caa::baselines::{CrResolution, Rom96Resolution};
use caa::core::exception::{Exception, ExceptionId};
use caa::core::outcome::HandlerVerdict;
use caa::core::time::secs;
use caa::exgraph::generate::conjunction_lattice;
use caa::runtime::protocol::ResolutionProtocol;
use caa::runtime::{ActionDef, System, XrrResolution};
use caa::simnet::LatencyModel;

fn run(n: u32, protocol: Arc<dyn ResolutionProtocol>) {
    let name = protocol.name();
    let prims: Vec<ExceptionId> = (0..n).map(|i| ExceptionId::new(format!("e{i}"))).collect();
    let graph = conjunction_lattice(&prims, prims.len()).expect("lattice");
    let mut builder = ActionDef::builder("compare");
    for i in 0..n {
        builder = builder.role(format!("r{i}"), i);
    }
    builder = builder.graph(graph);
    for i in 0..n {
        builder = builder.fallback_handler(format!("r{i}"), |_| Ok(HandlerVerdict::Recovered));
    }
    let action = builder.build().expect("definition");

    let mut sys = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(1.0)))
        .seed(17)
        .resolution_delay(secs(0.3))
        .protocol(protocol)
        .build();
    for i in 0..n {
        let a = action.clone();
        sys.spawn(format!("T{i}"), move |ctx| {
            ctx.enter(&a, &format!("r{i}"), |rc| {
                rc.work(secs(2.0))?;
                rc.raise(Exception::new(format!("e{i}")))
            })
            .map(|_| ())
        });
    }
    let report = sys.run();
    report.expect_ok();
    let msgs = report.net_stats.sent("Exception")
        + report.net_stats.sent("Suspended")
        + report.net_stats.sent("Commit")
        + report.net_stats.sent("Resolve");
    println!(
        "  {name:<8} time {:>7.3}s   resolution messages {msgs:>3}   resolutions invoked {:>3}",
        report.elapsed_secs(),
        report.runtime_stats.resolutions_invoked
    );
}

fn main() {
    for n in [3u32, 5] {
        println!("N = {n} threads, all raising concurrently (Tmmax=1.0, Tres=0.3):");
        run(n, Arc::new(XrrResolution));
        run(n, Arc::new(Rom96Resolution));
        run(n, Arc::new(CrResolution));
        println!();
    }
    println!("expected counts: ours (N+1)(N-1); Rom96 3N(N-1); CR N^2(N-1).");
}
