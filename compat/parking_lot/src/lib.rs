//! Offline stand-in for the `parking_lot` crate (see `compat/README.md`).
//!
//! Provides the subset of the real API this workspace uses — [`Mutex`] and
//! [`Condvar`] with parking_lot's non-poisoning semantics — implemented on
//! `std::sync`. A thread that panics while holding a lock does not poison
//! it; the next locker simply proceeds, exactly as with the real crate.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual-exclusion primitive with parking_lot's infallible `lock`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Never fails:
    /// poison from a panicked holder is ignored (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can take the
/// guard by `&mut` reference (parking_lot's signature) while std's
/// condvar consumes and returns it by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut guard` signatures.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock with parking_lot's infallible, non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
