//! Offline stand-in for the `criterion` crate (see `compat/README.md`).
//!
//! Supports the interface the workspace benches use —
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups,
//! [`BenchmarkId`], `Bencher::iter` — and reports the mean wall-clock time
//! per iteration instead of criterion's full statistical analysis. When the
//! binary is invoked by `cargo test` (any `--test`-style argument present),
//! every benchmark runs exactly once so test runs stay fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// How long a benchmark samples in normal (non-test) mode.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(200);

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--list" || a.starts_with("--format"))
}

/// Identifier combining a function name and a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Measures one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `body`, repeating it enough to smooth noise (once under
    /// `cargo test`).
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        let start = Instant::now();
        std::hint::black_box(body());
        let first = start.elapsed();
        if self.iters <= 1 {
            self.mean = Some(first);
            return;
        }
        // Derive an iteration count from the first observation, bounded by
        // the configured sample size.
        let per_iter = first.max(Duration::from_nanos(1));
        let wanted = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).max(1);
        let n = wanted.min(u128::from(self.iters)) as u32;
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(body());
        }
        let total = start.elapsed() + first;
        self.mean = Some(total / (n + 1));
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (upper bound on iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n as u64;
        self
    }

    fn run_one(&mut self, label: &str, mut body: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: if test_mode() {
                1
            } else {
                self.criterion.sample_size
            },
            mean: None,
        };
        body(&mut b);
        match b.mean {
            Some(mean) => println!("bench: {}/{label}: {mean:?}/iter", self.name),
            None => println!("bench: {}/{label}: no measurement", self.name),
        }
    }

    /// Benchmarks `body` under `id`.
    pub fn bench_function(&mut self, id: impl fmt::Display, body: impl FnMut(&mut Bencher)) {
        self.run_one(&id.to_string(), body);
    }

    /// Benchmarks `body` with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) {
        self.run_one(&id.to_string(), |b| body(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks `body` outside any group.
    pub fn bench_function(&mut self, name: &str, body: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(name, body);
        group.finish();
    }
}

/// Re-export matching criterion's (deprecated) helper; prefer
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
