//! Offline stand-in for the `proptest` crate (see `compat/README.md`).
//!
//! Implements the subset of the real API this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`any`], `prop::collection::{vec, btree_map}`,
//! `prop::sample::{select, Index}`, the [`proptest!`] macro and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! SplitMix64 stream seeded by the test name, so failures reproduce across
//! runs. **No shrinking** is performed: a failing case panics with the
//! ordinary assertion message.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic random-number generation for strategy sampling.

    /// SplitMix64 generator: tiny, fast, and plenty for test-case
    /// diversity.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `seed`.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Deterministic per-(test, case) generator.
        #[must_use]
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` 0 yields 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Run-time configuration consumed by the [`proptest!`] macro.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
    /// Accepted for source compatibility with the real crate; this shim
    /// performs no shrinking.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from this strategy.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples the strategy `f` derives from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> sample::Index {
        sample::Index {
            raw: rng.next_u64(),
        }
    }
}

/// Strategy for an arbitrary value of `T` (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy producing any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection-size specifications accepted by `prop::collection`.
pub trait SizeRange {
    /// Draws a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::new_value(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::new_value(self, rng)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeMap;

    /// Strategy for vectors of `size` elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with the given element strategy and size.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeMap`s (see [`btree_map`]).
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V, R> {
        keys: K,
        values: V,
        size: R,
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Key collisions shrink the map below target; bound the retries
            // so tiny key spaces cannot loop forever.
            for _ in 0..target.saturating_mul(8).max(8) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.keys.new_value(rng), self.values.new_value(rng));
            }
            map
        }
    }

    /// A strategy for `BTreeMap`s with roughly `size` entries.
    pub fn btree_map<K, V, R>(keys: K, values: V, size: R) -> BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        BTreeMapStrategy { keys, values, size }
    }
}

pub mod sample {
    //! Strategies for sampling from known sets.

    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set of options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select from an empty set");
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// A strategy drawing one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }

    /// An arbitrary index usable with collections of any length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        pub(crate) raw: u64,
    }

    impl Index {
        /// This index reduced into `[0, len)`.
        ///
        /// # Panics
        ///
        /// When `len` is zero.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.raw % len as u64) as usize
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring proptest's module layout.
    pub use super::{Just, Map, Strategy};
}

/// Umbrella module mirroring `proptest::prop`.
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

pub mod prelude {
    //! The customary glob import.
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a [`proptest!`] property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn` runs `cases` times with values drawn
/// from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::new_value(&(2u32..=5), &mut rng);
            assert!((2..=5).contains(&v));
            let f = Strategy::new_value(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::new(2);
        let s = (1u32..10)
            .prop_flat_map(|n| (Just(n), 0u32..n))
            .prop_map(|(n, k)| (n, k));
        for _ in 0..100 {
            let (n, k) = s.new_value(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn collections_honor_size() {
        let mut rng = TestRng::new(3);
        for _ in 0..50 {
            let v = prop::collection::vec(0u32..10, 2..=4).new_value(&mut rng);
            assert!((2..=4).contains(&v.len()));
            let m = prop::collection::btree_map(0u32..100, 0.0f64..1.0, 1..=3).new_value(&mut rng);
            assert!((1..=3).contains(&m.len()));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let a = prop::collection::vec(0u64..1000, 10).new_value(&mut TestRng::for_case("t", 7));
        let b = prop::collection::vec(0u64..1000, 10).new_value(&mut TestRng::for_case("t", 7));
        let c = prop::collection::vec(0u64..1000, 10).new_value(&mut TestRng::for_case("t", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_multiple_strategies(x in 0u32..10, y in 10u32..20) {
            prop_assert!(x < 10);
            prop_assert!(y >= 10, "y was {y}");
            prop_assert_ne!(x, y);
        }

        #[test]
        fn select_and_index_work(pick in any::<prop::sample::Index>(), v in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!(pick.index(3) < 3);
            prop_assert!((1..=3).contains(&v));
        }
    }
}
