//! **caa** — Coordinated exception handling in distributed object systems.
//!
//! A production-quality Rust reproduction of *“Coordinated Exception
//! Handling in Distributed Object Systems: from Model to System
//! Implementation”* (J. Xu, A. Romanovsky, B. Randell, ICDCS 1998): the CA
//! (Coordinated Atomic) action model, exception graphs with
//! smallest-covering-subtree resolution, the paper's distributed resolution
//! and signalling algorithms, the baseline algorithms it is compared
//! against, and the FZI production-cell case study — all on a deterministic
//! virtual-time network substrate.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `caa-core` | exceptions, ids, states, messages, outcomes, time |
//! | [`exgraph`] | `caa-exgraph` | exception graphs and resolution (§3.2) |
//! | [`simnet`] | `caa-simnet` | virtual-time scheduler + simulated FIFO network (§5.1) |
//! | [`runtime`] | `caa-runtime` | the CA-action runtime: resolution, signalling, abortion (§3.3–3.4) |
//! | [`baselines`] | `caa-baselines` | Campbell–Randell 1986 and Romanovsky 1996 (§5.3) |
//! | [`prodcell`] | `caa-prodcell` | the production-cell case study (§4) |
//! | [`harness`] | `caa-harness` | deterministic scenario/chaos harness: seed sweeps, traces, oracles |
//!
//! # Quick start
//!
//! ```
//! use caa::runtime::{ActionDef, System};
//! use caa::core::exception::Exception;
//! use caa::core::outcome::{ActionOutcome, HandlerVerdict};
//! use caa::core::time::secs;
//! use caa::exgraph::ExceptionGraphBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Declare an action whose two roles cooperate; if both sensors fail at
//! // once, the concurrently raised exceptions resolve to a covering one.
//! let graph = ExceptionGraphBuilder::new()
//!     .resolves("both_sensors", ["sensor_a", "sensor_b"])
//!     .build()?;
//! let action = ActionDef::builder("calibrate")
//!     .role("left", 0u32)
//!     .role("right", 1u32)
//!     .graph(graph)
//!     .handler("left", "both_sensors", |_| Ok(HandlerVerdict::Recovered))
//!     .handler("right", "both_sensors", |_| Ok(HandlerVerdict::Recovered))
//!     .build()?;
//!
//! let mut sys = System::builder().build();
//! let a = action.clone();
//! sys.spawn("T0", move |ctx| {
//!     let outcome = ctx.enter(&a, "left", |rc| {
//!         rc.work(secs(0.1))?;
//!         rc.raise(Exception::new("sensor_a"))
//!     })?;
//!     assert_eq!(outcome, ActionOutcome::Success);
//!     Ok(())
//! });
//! sys.spawn("T1", move |ctx| {
//!     let outcome = ctx.enter(&action, "right", |rc| {
//!         rc.work(secs(0.1))?;
//!         rc.raise(Exception::new("sensor_b"))
//!     })?;
//!     assert_eq!(outcome, ActionOutcome::Success);
//!     Ok(())
//! });
//! sys.run().expect_ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use caa_baselines as baselines;
pub use caa_core as core;
pub use caa_exgraph as exgraph;
pub use caa_harness as harness;
pub use caa_prodcell as prodcell;
pub use caa_runtime as runtime;
pub use caa_simnet as simnet;
