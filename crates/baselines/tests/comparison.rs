//! End-to-end comparison of the three resolution protocols over the
//! identical CA-action substrate (§5.3's methodology): all must reach the
//! same resolving exception, with the message/invocation profiles the
//! paper states.

use std::sync::Arc;
use std::sync::Mutex;

use caa_baselines::{CrResolution, Rom96Resolution};
use caa_core::exception::{Exception, ExceptionId};
use caa_core::outcome::HandlerVerdict;
use caa_core::time::secs;
use caa_exgraph::generate::conjunction_lattice;
use caa_runtime::protocol::ResolutionProtocol;
use caa_runtime::{ActionDef, System, SystemReport, XrrResolution};
use caa_simnet::LatencyModel;

/// §5.3's scenario: N threads enter a CA action; after some computation
/// all raise different exceptions nearly at the same time.
fn all_raise(
    n: u32,
    protocol: Arc<dyn ResolutionProtocol>,
    resolved_log: Arc<Mutex<Vec<ExceptionId>>>,
) -> SystemReport {
    let prims: Vec<ExceptionId> = (0..n).map(|i| ExceptionId::new(format!("e{i}"))).collect();
    let graph = conjunction_lattice(&prims, prims.len()).unwrap();
    let mut builder = ActionDef::builder("compare");
    for i in 0..n {
        builder = builder.role(format!("r{i}"), i);
    }
    builder = builder.graph(graph);
    for i in 0..n {
        let log = Arc::clone(&resolved_log);
        builder = builder.fallback_handler(format!("r{i}"), move |hc| {
            log.lock()
                .unwrap()
                .push(hc.handling().expect("inside handler").clone());
            Ok(HandlerVerdict::Recovered)
        });
    }
    let action = builder.build().unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(1.0)))
        .seed(17)
        .resolution_delay(secs(0.3))
        .protocol(protocol)
        .build();
    for i in 0..n {
        let a = action.clone();
        sys.spawn(format!("T{i}"), move |ctx| {
            ctx.enter(&a, &format!("r{i}"), |rc| {
                rc.work(secs(0.5))?;
                rc.raise(Exception::new(format!("e{i}")))
            })
            .map(|_| ())
        });
    }
    let report = sys.run();
    report.expect_ok();
    report
}

fn resolution_msgs(r: &SystemReport) -> u64 {
    r.net_stats.sent("Exception")
        + r.net_stats.sent("Suspended")
        + r.net_stats.sent("Commit")
        + r.net_stats.sent("Resolve")
}

#[test]
fn all_protocols_agree_on_the_resolving_exception() {
    let n = 3;
    let expected = ExceptionId::new("e0∩e1∩e2");
    for protocol in [
        Arc::new(XrrResolution) as Arc<dyn ResolutionProtocol>,
        Arc::new(CrResolution),
        Arc::new(Rom96Resolution),
    ] {
        let name = protocol.name();
        let log = Arc::new(Mutex::new(Vec::new()));
        all_raise(n, protocol, Arc::clone(&log));
        let resolved = log.lock().unwrap().clone();
        assert_eq!(resolved.len(), n as usize, "{name}: all threads handle");
        assert!(
            resolved.iter().all(|r| r == &expected),
            "{name}: resolved {resolved:?}, expected {expected}"
        );
    }
}

#[test]
fn xrr_uses_n_plus_1_n_minus_1_messages() {
    let n = 3u64;
    let log = Arc::new(Mutex::new(Vec::new()));
    let report = all_raise(n as u32, Arc::new(XrrResolution), log);
    assert_eq!(resolution_msgs(&report), (n + 1) * (n - 1));
    assert_eq!(report.runtime_stats.resolutions_invoked, 1);
}

#[test]
fn rom96_uses_3n_n_minus_1_messages_and_n_invocations() {
    let n = 3u64;
    let log = Arc::new(Mutex::new(Vec::new()));
    let report = all_raise(n as u32, Arc::new(Rom96Resolution), log);
    assert_eq!(
        resolution_msgs(&report),
        3 * n * (n - 1),
        "three exchanges of N(N-1)"
    );
    assert_eq!(
        report.runtime_stats.resolutions_invoked, n,
        "every thread resolves once"
    );
}

#[test]
fn cr86_floods_n_cubed_messages_and_resolves_n_n1_n2_times() {
    for n in [3u64, 4, 5] {
        let log = Arc::new(Mutex::new(Vec::new()));
        let report = all_raise(n as u32, Arc::new(CrResolution), log);
        // Direct N(N-1) + forwarded N(N-1)(N-2) + agreement N(N-1)
        // = N²(N-1).
        assert_eq!(
            resolution_msgs(&report),
            n * n * (n - 1),
            "N={n}: CR flooding + agreement message count"
        );
        // Re-resolutions: the paper counts N(N-1)(N-2) (one per forwarded
        // copy); our model additionally re-resolves when a *direct* receipt
        // grows the exception set (N(N-1) times), keeping every thread's
        // view current. Both terms vanish into O(N^3) asymptotically.
        assert_eq!(
            report.runtime_stats.resolutions_invoked,
            n * (n - 1) * (n - 2) + n * (n - 1),
            "N={n}: CR resolution invocations"
        );
    }
}

#[test]
fn cr86_is_slower_than_xrr_at_equal_parameters() {
    // Figure 13's qualitative claim: with the same Tmmax and Tres, the CR
    // algorithm takes visibly longer because resolution is invoked many
    // times and flooding adds message rounds.
    let log_a = Arc::new(Mutex::new(Vec::new()));
    let log_b = Arc::new(Mutex::new(Vec::new()));
    let ours = all_raise(3, Arc::new(XrrResolution), log_a);
    let cr = all_raise(3, Arc::new(CrResolution), log_b);
    assert!(
        cr.elapsed_secs() > ours.elapsed_secs(),
        "CR {:.3}s must exceed ours {:.3}s",
        cr.elapsed_secs(),
        ours.elapsed_secs()
    );
}

#[test]
fn baselines_handle_single_exception_with_bystanders() {
    // Only T0 raises; T1, T2 suspend. Every protocol must still converge.
    for protocol in [
        Arc::new(XrrResolution) as Arc<dyn ResolutionProtocol>,
        Arc::new(CrResolution),
        Arc::new(Rom96Resolution),
    ] {
        let name = protocol.name();
        let graph = conjunction_lattice(&[ExceptionId::new("only")], 1).unwrap();
        let mut builder = ActionDef::builder("single");
        for i in 0..3u32 {
            builder = builder.role(format!("r{i}"), i);
        }
        builder = builder.graph(graph);
        for i in 0..3u32 {
            builder = builder.fallback_handler(format!("r{i}"), |_| Ok(HandlerVerdict::Recovered));
        }
        let action = builder.build().unwrap();
        let mut sys = System::builder()
            .latency(LatencyModel::UniformUpTo(secs(0.5)))
            .seed(7)
            .protocol(protocol)
            .build();
        for i in 0..3u32 {
            let a = action.clone();
            sys.spawn(format!("T{i}"), move |ctx| {
                ctx.enter(&a, &format!("r{i}"), |rc| {
                    rc.work(secs(0.2))?;
                    if i == 0 {
                        rc.raise(Exception::new("only"))?;
                    }
                    rc.work(secs(30.0))
                })
                .map(|_| ())
            });
        }
        let report = sys.run();
        assert!(report.is_ok(), "{name}: {:?}", report.results);
    }
}
