//! The Campbell & Randell (1986) exception-resolution scheme, modelled over
//! the CA-action substrate.
//!
//! §5.3 compares the paper's algorithm against "the CR algorithm in
//! [Campbell & Randell 1986]": the authors "modelled the CR algorithm by
//! updating our algorithm and kept the rest of the CA action support
//! unchanged". This module does the same. The CR scheme has no single
//! resolver and no commit message:
//!
//! * a raiser broadcasts its exception to every peer (N−1 messages);
//! * every receiver *re-broadcasts* each exception it learns first-hand to
//!   all third parties, so that information spreads even when the original
//!   sender fails mid-broadcast — `N(N−1)(N−2)` forwarded copies when all N
//!   raise, giving the O(N³) total message complexity the paper cites;
//! * every thread re-runs the resolution procedure as the exception set
//!   grows — "the resolution procedure is called N × (N − 1) × (N − 2)
//!   times in CR algorithms and only once in our approach" — and decides
//!   locally once it holds everyone's state and all forwarded copies;
//! * with no designated resolver, the group synchronises on the recovery
//!   line by exchanging local decisions (one more `N(N−1)` round) instead
//!   of receiving a single `Commit`.
//!
//! Total: `N(N−1)² + N(N−1) = N²(N−1)` messages — O(N³), against the 1998
//! algorithm's `(N+1)(N−1)`.

use std::collections::{BTreeMap, BTreeSet};

use caa_core::exception::ExceptionId;
use caa_core::ids::ThreadId;
use caa_core::message::Message;
use caa_core::state::ParticipantState;
use caa_runtime::protocol::{
    ProtoActions, ProtoCtx, ProtoEvent, ResolutionProtocol, ResolverState,
};

/// Factory for the CR-1986 baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct CrResolution;

impl ResolutionProtocol for CrResolution {
    fn name(&self) -> &'static str {
        "cr86"
    }

    fn new_state(&self) -> Box<dyn ResolverState> {
        Box::new(CrState::default())
    }
}

#[derive(Debug, Clone)]
enum Entry {
    /// The id travels in `exceptions`; the entry records *that* this thread
    /// raised (completion needs forwarded copies for it).
    Exception(#[allow(dead_code)] ExceptionId),
    Suspended,
}

#[derive(Debug, Default)]
struct CrState {
    state: ParticipantState,
    /// Direct announcement from each thread (exception or suspension).
    direct: BTreeMap<ThreadId, Entry>,
    /// Forwarded copies seen: `(origin, forwarder)` pairs.
    forwarded: BTreeSet<(ThreadId, ThreadId)>,
    resolved: Option<ExceptionId>,
    /// Exceptions accumulated so far (by origin).
    exceptions: BTreeMap<ThreadId, ExceptionId>,
    /// This thread finished collecting and announced its local decision.
    decided: bool,
    /// Threads whose local decisions have been seen. Without a designated
    /// resolver, every thread must check that everyone decided before any
    /// handler starts (the conversation's recovery line).
    agreed: BTreeSet<ThreadId>,
}

/// Stage label of the CR agreement broadcast.
const CR_AGREE: &str = "cr-agree";

impl CrState {
    /// Every thread decides locally once it has a direct entry from every
    /// participant and, for each known exception, forwarded copies from
    /// every third party.
    fn is_complete(&self, ctx: &ProtoCtx<'_>) -> bool {
        if self.direct.len() < ctx.group.len() {
            return false;
        }
        for (&origin, entry) in &self.direct {
            if !matches!(entry, Entry::Exception(_)) {
                continue;
            }
            if origin == ctx.me {
                continue; // nobody forwards my exception back to me
            }
            for &third in ctx.group {
                if third == ctx.me || third == origin {
                    continue;
                }
                if !self.forwarded.contains(&(origin, third)) {
                    return false;
                }
            }
        }
        true
    }

    fn resolve_now(&mut self, ctx: &ProtoCtx<'_>, actions: &mut ProtoActions) {
        let raised: Vec<ExceptionId> = self.exceptions.values().cloned().collect();
        let resolved = ctx.graph.resolve(&raised);
        actions.resolve_invocations += 1;
        self.resolved = Some(resolved);
    }

    fn finish_if_complete(&mut self, ctx: &ProtoCtx<'_>, actions: &mut ProtoActions) {
        if !self.decided && self.is_complete(ctx) {
            self.decided = true;
            if self.resolved.is_none() {
                self.resolve_now(ctx, actions);
            }
            // Announce the local decision: with every thread resolving for
            // itself, the group synchronises on the recovery line by
            // exchanging decisions rather than by a single Commit.
            let decision = self.resolved.clone().expect("resolved above");
            self.agreed.insert(ctx.me);
            for peer in ctx.peers() {
                actions.outbound.push((
                    peer,
                    Message::Resolve {
                        action: ctx.action,
                        from: ctx.me,
                        stage: CR_AGREE,
                        exception: decision.clone(),
                    },
                ));
            }
        }
        if self.decided && self.agreed.len() == ctx.group.len() {
            actions.resolved = self.resolved.clone();
        }
    }
}

impl ResolverState for CrState {
    fn on_event(&mut self, ctx: &ProtoCtx<'_>, event: ProtoEvent<'_>) -> ProtoActions {
        let mut actions = ProtoActions::default();
        match event {
            ProtoEvent::LocalRaise(e) => {
                self.state = ParticipantState::Exceptional;
                self.direct.insert(ctx.me, Entry::Exception(e.id().clone()));
                self.exceptions.insert(ctx.me, e.id().clone());
                for peer in ctx.peers() {
                    actions.outbound.push((
                        peer,
                        Message::Exception {
                            action: ctx.action,
                            from: ctx.me,
                            exception: e.clone(),
                        },
                    ));
                }
            }
            ProtoEvent::LocalSuspend => {
                if self.state == ParticipantState::Normal {
                    self.state = ParticipantState::Suspended;
                    self.direct.insert(ctx.me, Entry::Suspended);
                    for peer in ctx.peers() {
                        actions.outbound.push((
                            peer,
                            Message::Suspended {
                                action: ctx.action,
                                from: ctx.me,
                            },
                        ));
                    }
                }
            }
            ProtoEvent::Control(msg) => match msg {
                Message::Exception {
                    from, exception, ..
                } => {
                    let origin = exception.origin().unwrap_or(*from);
                    self.exceptions.insert(origin, exception.id().clone());
                    if *from == origin {
                        // Direct copy: record, re-broadcast to all third
                        // parties (the CR flooding step), and re-resolve.
                        let new_direct =
                            !matches!(self.direct.get(&origin), Some(Entry::Exception(_)));
                        self.direct
                            .insert(origin, Entry::Exception(exception.id().clone()));
                        for peer in ctx.peers() {
                            if peer != origin {
                                actions.outbound.push((
                                    peer,
                                    Message::Exception {
                                        action: ctx.action,
                                        from: ctx.me,
                                        exception: exception.clone(),
                                    },
                                ));
                            }
                        }
                        if new_direct {
                            self.resolve_now(ctx, &mut actions);
                        }
                    } else {
                        // Forwarded copy: CR re-runs resolution on each.
                        if self.forwarded.insert((origin, *from)) {
                            self.resolve_now(ctx, &mut actions);
                        }
                    }
                }
                Message::Suspended { from, .. } => {
                    self.direct.entry(*from).or_insert(Entry::Suspended);
                }
                Message::Resolve { from, stage, .. } if *stage == CR_AGREE => {
                    self.agreed.insert(*from);
                }
                _ => {}
            },
        }
        self.finish_if_complete(ctx, &mut actions);
        actions
    }

    fn participant_state(&self) -> ParticipantState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caa_core::exception::Exception;
    use caa_core::ids::ActionId;
    use caa_exgraph::ExceptionGraphBuilder;

    #[test]
    fn two_threads_decide_after_agreement_round() {
        let graph = ExceptionGraphBuilder::new()
            .resolves("both", ["a", "b"])
            .build()
            .unwrap();
        let group = [ThreadId::new(0), ThreadId::new(1)];
        let action = ActionId::top_level(1);
        let ctx0 = ProtoCtx {
            me: ThreadId::new(0),
            action,
            group: &group,
            graph: &graph,
        };
        let mut s0 = CrState::default();
        let ea = Exception::new("a").with_origin(ThreadId::new(0));
        let eb = Exception::new("b").with_origin(ThreadId::new(1));
        let out = s0.on_event(&ctx0, ProtoEvent::LocalRaise(&ea));
        assert_eq!(out.outbound.len(), 1);
        assert!(out.resolved.is_none());
        let out = s0.on_event(
            &ctx0,
            ProtoEvent::Control(&Message::Exception {
                action,
                from: ThreadId::new(1),
                exception: eb,
            }),
        );
        // Local decision reached; the agreement broadcast goes out but the
        // peer's agreement is still missing.
        assert!(out.resolved.is_none());
        assert_eq!(out.outbound.len(), 1, "agreement broadcast");
        assert!(matches!(out.outbound[0].1, Message::Resolve { .. }));
        let out = s0.on_event(
            &ctx0,
            ProtoEvent::Control(&Message::Resolve {
                action,
                from: ThreadId::new(1),
                stage: CR_AGREE,
                exception: ExceptionId::new("both"),
            }),
        );
        assert_eq!(out.resolved, Some(ExceptionId::new("both")));
    }

    #[test]
    fn waits_for_forwarded_copies_with_three_threads() {
        let graph = ExceptionGraphBuilder::new()
            .resolves("all", ["a", "b", "c"])
            .build()
            .unwrap();
        let group = [ThreadId::new(0), ThreadId::new(1), ThreadId::new(2)];
        let action = ActionId::top_level(1);
        let ctx0 = ProtoCtx {
            me: ThreadId::new(0),
            action,
            group: &group,
            graph: &graph,
        };
        let mut s0 = CrState::default();
        let ea = Exception::new("a").with_origin(ThreadId::new(0));
        let eb = Exception::new("b").with_origin(ThreadId::new(1));
        s0.on_event(&ctx0, ProtoEvent::LocalRaise(&ea));
        // Direct exception from T1: T0 forwards it to T2.
        let out = s0.on_event(
            &ctx0,
            ProtoEvent::Control(&Message::Exception {
                action,
                from: ThreadId::new(1),
                exception: eb.clone(),
            }),
        );
        assert_eq!(out.outbound.len(), 1, "forward T1's exception to T2");
        assert!(out.resolved.is_none());
        // T2 suspends (direct).
        let out = s0.on_event(
            &ctx0,
            ProtoEvent::Control(&Message::Suspended {
                action,
                from: ThreadId::new(2),
            }),
        );
        assert!(
            out.resolved.is_none(),
            "must still wait for T2's forwarded copy of T1's exception"
        );
        // T2 forwards T1's exception: T0's collection completes and its
        // decision is announced to both peers.
        let out = s0.on_event(
            &ctx0,
            ProtoEvent::Control(&Message::Exception {
                action,
                from: ThreadId::new(2),
                exception: eb,
            }),
        );
        assert!(out.resolved.is_none(), "agreement round still pending");
        assert_eq!(
            out.outbound
                .iter()
                .filter(|(_, m)| matches!(m, Message::Resolve { .. }))
                .count(),
            2
        );
        // Both peers agree.
        for from in [1u32, 2] {
            let out = s0.on_event(
                &ctx0,
                ProtoEvent::Control(&Message::Resolve {
                    action,
                    from: ThreadId::new(from),
                    stage: CR_AGREE,
                    exception: ExceptionId::new("a∩b"),
                }),
            );
            if from == 2 {
                assert!(out.resolved.is_some(), "complete after all agreements");
            }
        }
    }

    #[test]
    fn reresolves_on_each_forwarded_copy() {
        // Count invocations for the all-raise N=3 case at one thread:
        // 1 (own raise is not an invocation) — invocations happen on the
        // two direct receipts (set growth) and the two forwarded copies.
        let graph = ExceptionGraphBuilder::new()
            .resolves("all", ["a", "b", "c"])
            .build()
            .unwrap();
        let group = [ThreadId::new(0), ThreadId::new(1), ThreadId::new(2)];
        let action = ActionId::top_level(1);
        let ctx0 = ProtoCtx {
            me: ThreadId::new(0),
            action,
            group: &group,
            graph: &graph,
        };
        let mut s0 = CrState::default();
        let mut invocations = 0;
        let ea = Exception::new("a").with_origin(ThreadId::new(0));
        invocations += s0
            .on_event(&ctx0, ProtoEvent::LocalRaise(&ea))
            .resolve_invocations;
        for (origin, forwarder) in [(1u32, 1u32), (2, 2), (1, 2), (2, 1)] {
            let e = Exception::new(if origin == 1 { "b" } else { "c" })
                .with_origin(ThreadId::new(origin));
            invocations += s0
                .on_event(
                    &ctx0,
                    ProtoEvent::Control(&Message::Exception {
                        action,
                        from: ThreadId::new(forwarder),
                        exception: e,
                    }),
                )
                .resolve_invocations;
        }
        // 2 direct growth re-resolutions + 2 forwarded re-resolutions.
        assert_eq!(invocations, 4);
        assert_eq!(s0.resolved, Some(ExceptionId::new("all")));
    }
}
