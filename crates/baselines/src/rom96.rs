//! The Romanovsky, Xu & Randell (1996) resolution algorithm, the paper's
//! own earlier scheme, modelled over the CA-action substrate.
//!
//! §3.3.3: "Our previous algorithm in [Romanovsky et al 1996] could use
//! `nmax × 3N × (N − 1)` messages" — three full exchanges per nesting
//! level, because *every* thread resolves and the group must confirm
//! agreement explicitly (no designated resolver):
//!
//! 1. **Announce**: each thread broadcasts its exception or suspension
//!    (`N(N−1)` messages);
//! 2. **Propose**: once a thread holds all announcements it resolves
//!    locally and broadcasts its proposed resolving exception (`N(N−1)`);
//! 3. **Confirm**: once a thread has seen identical proposals from
//!    everyone it broadcasts a confirmation and decides after collecting
//!    all confirmations (`N(N−1)`).
//!
//! The resolution procedure runs once per thread (N invocations per
//! recovery) — more than the single invocation of the 1998 algorithm but
//! far fewer than CR-1986.

use std::collections::{BTreeMap, BTreeSet};

use caa_core::exception::ExceptionId;
use caa_core::ids::ThreadId;
use caa_core::message::Message;
use caa_core::state::ParticipantState;
use caa_runtime::protocol::{
    ProtoActions, ProtoCtx, ProtoEvent, ResolutionProtocol, ResolverState,
};

const PROPOSE: &str = "propose";
const CONFIRM: &str = "confirm";

/// Factory for the Romanovsky-1996 baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct Rom96Resolution;

impl ResolutionProtocol for Rom96Resolution {
    fn name(&self) -> &'static str {
        "rom96"
    }

    fn new_state(&self) -> Box<dyn ResolverState> {
        Box::new(Rom96State::default())
    }
}

#[derive(Debug, Default)]
struct Rom96State {
    state: ParticipantState,
    announced: BTreeMap<ThreadId, Option<ExceptionId>>,
    proposals: BTreeMap<ThreadId, ExceptionId>,
    confirms: BTreeSet<ThreadId>,
    my_proposal: Option<ExceptionId>,
    confirmed: bool,
    resolved: Option<ExceptionId>,
}

impl Rom96State {
    fn step(&mut self, ctx: &ProtoCtx<'_>, actions: &mut ProtoActions) {
        // Phase 2: all announcements in → propose once.
        if self.my_proposal.is_none() && self.announced.len() == ctx.group.len() {
            let raised: Vec<ExceptionId> = self.announced.values().flatten().cloned().collect();
            let proposal = ctx.graph.resolve(&raised);
            actions.resolve_invocations += 1;
            self.my_proposal = Some(proposal.clone());
            self.proposals.insert(ctx.me, proposal.clone());
            for peer in ctx.peers() {
                actions.outbound.push((
                    peer,
                    Message::Resolve {
                        action: ctx.action,
                        from: ctx.me,
                        stage: PROPOSE,
                        exception: proposal.clone(),
                    },
                ));
            }
        }
        // Phase 3: all proposals in (and identical, by determinism) →
        // confirm once.
        if !self.confirmed && self.my_proposal.is_some() && self.proposals.len() == ctx.group.len()
        {
            self.confirmed = true;
            self.confirms.insert(ctx.me);
            let proposal = self.my_proposal.clone().expect("proposed above");
            for peer in ctx.peers() {
                actions.outbound.push((
                    peer,
                    Message::Resolve {
                        action: ctx.action,
                        from: ctx.me,
                        stage: CONFIRM,
                        exception: proposal.clone(),
                    },
                ));
            }
        }
        // Decision: all confirmations in.
        if self.resolved.is_none() && self.confirmed && self.confirms.len() == ctx.group.len() {
            self.resolved = self.my_proposal.clone();
            actions.resolved = self.resolved.clone();
        }
    }
}

impl ResolverState for Rom96State {
    fn on_event(&mut self, ctx: &ProtoCtx<'_>, event: ProtoEvent<'_>) -> ProtoActions {
        let mut actions = ProtoActions::default();
        match event {
            ProtoEvent::LocalRaise(e) => {
                self.state = ParticipantState::Exceptional;
                self.announced.insert(ctx.me, Some(e.id().clone()));
                for peer in ctx.peers() {
                    actions.outbound.push((
                        peer,
                        Message::Exception {
                            action: ctx.action,
                            from: ctx.me,
                            exception: e.clone(),
                        },
                    ));
                }
            }
            ProtoEvent::LocalSuspend => {
                if self.state == ParticipantState::Normal {
                    self.state = ParticipantState::Suspended;
                    self.announced.insert(ctx.me, None);
                    for peer in ctx.peers() {
                        actions.outbound.push((
                            peer,
                            Message::Suspended {
                                action: ctx.action,
                                from: ctx.me,
                            },
                        ));
                    }
                }
            }
            ProtoEvent::Control(msg) => match msg {
                Message::Exception {
                    from, exception, ..
                } => {
                    self.announced.insert(*from, Some(exception.id().clone()));
                }
                Message::Suspended { from, .. } => {
                    self.announced.entry(*from).or_insert(None);
                }
                Message::Resolve {
                    from,
                    stage,
                    exception,
                    ..
                } => match *stage {
                    PROPOSE => {
                        self.proposals.insert(*from, exception.clone());
                    }
                    CONFIRM => {
                        self.confirms.insert(*from);
                    }
                    _ => {}
                },
                _ => {}
            },
        }
        self.step(ctx, &mut actions);
        actions
    }

    fn participant_state(&self) -> ParticipantState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caa_core::exception::Exception;
    use caa_core::ids::ActionId;
    use caa_exgraph::ExceptionGraphBuilder;

    /// Drives two Rom96 states against each other synchronously.
    #[test]
    fn two_threads_run_three_phases() {
        let graph = ExceptionGraphBuilder::new()
            .resolves("both", ["a", "b"])
            .build()
            .unwrap();
        let group = [ThreadId::new(0), ThreadId::new(1)];
        let action = ActionId::top_level(1);
        let mk_ctx = |me: u32| ProtoCtx {
            me: ThreadId::new(me),
            action,
            group: &group,
            graph: &graph,
        };
        let mut s0 = Rom96State::default();
        let mut s1 = Rom96State::default();
        let ea = Exception::new("a").with_origin(ThreadId::new(0));
        let eb = Exception::new("b").with_origin(ThreadId::new(1));

        let mut queue: Vec<(u32, Message)> = Vec::new();
        let push_all = |q: &mut Vec<(u32, Message)>, a: ProtoActions| {
            for (to, m) in a.outbound {
                q.push((to.as_u32(), m));
            }
            a.resolved
        };
        let r0 = push_all(
            &mut queue,
            s0.on_event(&mk_ctx(0), ProtoEvent::LocalRaise(&ea)),
        );
        let r1 = push_all(
            &mut queue,
            s1.on_event(&mk_ctx(1), ProtoEvent::LocalRaise(&eb)),
        );
        assert!(r0.is_none() && r1.is_none());
        let (mut d0, mut d1) = (None, None);
        let mut messages = 0;
        while let Some((to, m)) = queue.pop() {
            messages += 1;
            let r = if to == 0 {
                push_all(&mut queue, s0.on_event(&mk_ctx(0), ProtoEvent::Control(&m)))
            } else {
                push_all(&mut queue, s1.on_event(&mk_ctx(1), ProtoEvent::Control(&m)))
            };
            if to == 0 {
                d0 = d0.or(r);
            } else {
                d1 = d1.or(r);
            }
        }
        assert_eq!(d0, Some(ExceptionId::new("both")));
        assert_eq!(d1, Some(ExceptionId::new("both")));
        // 3 phases × N(N−1) = 3 × 2 = 6 messages.
        assert_eq!(messages, 6);
    }

    #[test]
    fn each_thread_resolves_exactly_once() {
        let graph = ExceptionGraphBuilder::new()
            .resolves("both", ["a", "b"])
            .build()
            .unwrap();
        let group = [ThreadId::new(0), ThreadId::new(1)];
        let action = ActionId::top_level(1);
        let ctx0 = ProtoCtx {
            me: ThreadId::new(0),
            action,
            group: &group,
            graph: &graph,
        };
        let mut s0 = Rom96State::default();
        let ea = Exception::new("a").with_origin(ThreadId::new(0));
        let eb = Exception::new("b").with_origin(ThreadId::new(1));
        let mut inv = 0;
        inv += s0
            .on_event(&ctx0, ProtoEvent::LocalRaise(&ea))
            .resolve_invocations;
        inv += s0
            .on_event(
                &ctx0,
                ProtoEvent::Control(&Message::Exception {
                    action,
                    from: ThreadId::new(1),
                    exception: eb,
                }),
            )
            .resolve_invocations;
        inv += s0
            .on_event(
                &ctx0,
                ProtoEvent::Control(&Message::Resolve {
                    action,
                    from: ThreadId::new(1),
                    stage: PROPOSE,
                    exception: ExceptionId::new("both"),
                }),
            )
            .resolve_invocations;
        inv += s0
            .on_event(
                &ctx0,
                ProtoEvent::Control(&Message::Resolve {
                    action,
                    from: ThreadId::new(1),
                    stage: CONFIRM,
                    exception: ExceptionId::new("both"),
                }),
            )
            .resolve_invocations;
        assert_eq!(inv, 1, "Rom96 resolves once per thread");
        assert_eq!(s0.resolved, Some(ExceptionId::new("both")));
    }
}
