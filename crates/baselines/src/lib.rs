//! Baseline exception-resolution algorithms for the comparative experiments
//! of §5.3 and §3.3.3 (Xu, Romanovsky & Randell, ICDCS 1998).
//!
//! Both baselines implement the runtime's
//! [`ResolutionProtocol`](caa_runtime::protocol::ResolutionProtocol), so a
//! [`System`](caa_runtime::System) can swap algorithms while "the rest of
//! the CA action support \[is\] kept unchanged" — exactly how the paper built
//! its comparison:
//!
//! * [`CrResolution`] — Campbell & Randell 1986: flooding re-broadcast,
//!   every thread resolves repeatedly (`N(N−1)(N−2)` invocations), O(N³)
//!   messages, no commit round;
//! * [`Rom96Resolution`] — Romanovsky et al. 1996: three explicit
//!   exchanges (announce / propose / confirm), `3N(N−1)` messages per
//!   nesting level, one resolution invocation per thread.
//!
//! # Determinism
//!
//! Both baselines are pure state machines over delivered messages — no
//! clocks, no randomness — so comparative experiments replay exactly and
//! measured message counts are properties of the algorithm, not the run.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use caa_baselines::CrResolution;
//! use caa_runtime::System;
//!
//! let sys = System::builder().protocol(Arc::new(CrResolution)).build();
//! # drop(sys);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod cr86;
mod rom96;

pub use cr86::CrResolution;
pub use rom96::Rom96Resolution;
