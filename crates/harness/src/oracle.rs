//! Invariant oracles checked against every recorded trace.
//!
//! Each oracle encodes a property the paper proves or measures:
//!
//! * **Resolution agreement** (§3.3.2): every participant of a recovery
//!   commits to the *same* resolving exception.
//! * **Single resolution** (§3.3.3): the resolution procedure runs at most
//!   once per action-instance recovery under the paper's algorithm.
//! * **Lemma 1 time bound**: from the first raise of a recovery to the last
//!   handler completion takes at most
//!   `(2·nmax+3)·Tmmax + nmax·Tabort + (nmax+1)·(Treso+∆max)` (plus one
//!   `Tmmax` of entry skew the scenario shape permits).
//! * **Message complexity** (§3.3.3): an action instance's recovery costs
//!   at most `(N+1)·(N−1)` resolution messages, plus one participant
//!   broadcast (`N−1`) per thread readmitted mid-recovery — a rejoiner
//!   re-announces its state into the ongoing resolution after catch-up.
//! * **Nesting/abortion consistency** (§3.3.1): every action entry is
//!   closed by exactly one exit, abort or crash-stop on the entering
//!   thread — with one sanctioned exception: a crashed participant that
//!   rejoined enters the instance twice (one entry closed by the crash,
//!   the re-entry closed by its exit).
//! * **Exit-timeout bound** (the §3.4 timeout generalised to the exit
//!   protocol): every exit phase — including one abandoned because a peer
//!   crash-stopped — terminates within the plan's exit timeout.
//! * **Membership agreement** (the crash-aware resolution extension):
//!   membership is **set-based** — each thread's view evolves by adopting
//!   removal sets and readmissions, with epoch numbers as per-thread step
//!   counters. The agreement form is therefore a *chain*: the final
//!   removed sets that the instance's threads reached must be pairwise
//!   comparable under inclusion (a thread that exited early — e.g.
//!   evicted — holds a prefix of the survivors' set; genuinely divergent
//!   views are incomparable and flagged). The one sanctioned divergence
//!   is a pair of threads that both finalised with the failure exception
//!   ƒ — each declared coordination broken, so their last views may
//!   legally disagree. And no thread removed as presumed-crashed
//!   went on to complete the action without being readmitted first (no
//!   false suspicion).
//! * **Bounded resolution** (same extension): every started recovery
//!   concludes in a resolution, an enclosing abort or the thread's own
//!   crash — the collection loop never hangs on a dead peer.
//! * **Deterministic replay** (§5.1's repeatability requirement): the same
//!   seed renders the byte-identical trace, object acquisitions included.
//!
//! Plans with shared-object traffic skip the Lemma 1 bound: acquisition
//! waits stretch compute phases, so the aligned-entry premise the bound
//! relies on no longer holds (see [`ScenarioPlan::has_objects`]). Plans
//! with a crash-stop skip it too: the bounded resolution and exit waits
//! stretch recoveries far past the crash-free bound by design.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use caa_runtime::observe::EventKind;

use caa_runtime::SystemReport;

use crate::exec::RunArtifacts;
use crate::plan::ScenarioPlan;
use crate::trace::Trace;

/// One oracle violation, carrying enough context to debug the seed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// A participating thread ended with a fatal error (deadlock or
    /// protocol invariant breach).
    ThreadFailure {
        /// The failed thread's name.
        thread: String,
        /// Its error.
        error: String,
    },
    /// Participants of one recovery committed to different resolving
    /// exceptions.
    ResolutionDisagreement {
        /// Canonical action label.
        action: u64,
        /// `(thread, resolved exception)` as observed.
        resolved: Vec<(u32, String)>,
    },
    /// The resolution procedure ran more than once for one instance.
    MultipleResolutions {
        /// Canonical action label.
        action: u64,
        /// Total graph-search invocations observed.
        invocations: u64,
    },
    /// Recovery exceeded the Lemma 1 completion bound.
    Lemma1Exceeded {
        /// Canonical action label.
        action: u64,
        /// Observed first-raise → last-handler-completion time (seconds).
        measured: f64,
        /// The bound (seconds).
        bound: f64,
    },
    /// An instance used more resolution messages than §3.3.3 permits.
    MessageBoundExceeded {
        /// Canonical action label.
        action: u64,
        /// Observed Exception+Suspended+Commit sends.
        messages: u64,
        /// The `(N+1)(N−1)` bound.
        bound: u64,
    },
    /// An action entry was not closed by exactly one exit/abort/crash.
    NestingInconsistent {
        /// Canonical action label.
        action: u64,
        /// The offending thread.
        thread: u32,
        /// Enter events observed.
        enters: usize,
        /// Exit events observed.
        exits: usize,
        /// Abort events observed.
        aborts: usize,
        /// Crash-stop events observed.
        crashes: usize,
    },
    /// An exit phase outlived the bounded wait: the time from an
    /// `ExitStart` to the next protocol step on that thread exceeded the
    /// plan's exit timeout.
    ExitTimeoutExceeded {
        /// Canonical action label.
        action: u64,
        /// The offending thread.
        thread: u32,
        /// Observed exit-phase duration (seconds).
        measured: f64,
        /// The bound (seconds).
        bound: f64,
    },
    /// Two executions of the same seed rendered different traces.
    ReplayDiverged {
        /// First line (0-based) at which the renderings differ.
        first_diff_line: usize,
    },
    /// Participants of one instance reached irreconcilable membership
    /// views: under set-based agreement the final removed sets must form
    /// a chain under inclusion (early exits hold prefixes of the
    /// survivors' set), and these do not.
    ViewDisagreement {
        /// Canonical action label.
        action: u64,
        /// The incomparable final removed sets observed across threads.
        removed_sets: Vec<Vec<u32>>,
    },
    /// A thread removed from an instance's membership view as presumed
    /// crashed nevertheless completed the action: the failure detector
    /// suspected a live participant.
    FalseSuspicion {
        /// Canonical action label.
        action: u64,
        /// The falsely suspected thread.
        thread: u32,
    },
    /// A recovery started on some thread but never reached resolution,
    /// abortion or a crash-stop: the collection loop hung instead of
    /// being bounded.
    ResolutionUnterminated {
        /// Canonical action label.
        action: u64,
        /// The thread whose recovery never concluded.
        thread: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ThreadFailure { thread, error } => {
                write!(f, "thread {thread} failed: {error}")
            }
            Violation::ResolutionDisagreement { action, resolved } => {
                write!(f, "action {action}: participants disagree on the resolved exception: {resolved:?}")
            }
            Violation::MultipleResolutions {
                action,
                invocations,
            } => {
                write!(
                    f,
                    "action {action}: resolution procedure ran {invocations} times (max 1)"
                )
            }
            Violation::Lemma1Exceeded {
                action,
                measured,
                bound,
            } => {
                write!(
                    f,
                    "action {action}: recovery took {measured:.6}s, Lemma 1 bound {bound:.6}s"
                )
            }
            Violation::MessageBoundExceeded {
                action,
                messages,
                bound,
            } => {
                write!(
                    f,
                    "action {action}: {messages} resolution messages exceed the rejoin-adjusted (N+1)(N-1) bound {bound}"
                )
            }
            Violation::NestingInconsistent {
                action,
                thread,
                enters,
                exits,
                aborts,
                crashes,
            } => {
                write!(
                    f,
                    "action {action}: thread {thread} entered {enters}x but exited {exits}x / aborted {aborts}x / crashed {crashes}x"
                )
            }
            Violation::ExitTimeoutExceeded {
                action,
                thread,
                measured,
                bound,
            } => {
                write!(
                    f,
                    "action {action}: thread {thread}'s exit phase took {measured:.6}s, timeout bound {bound:.6}s"
                )
            }
            Violation::ReplayDiverged { first_diff_line } => {
                write!(
                    f,
                    "replay diverged from the original trace at line {first_diff_line}"
                )
            }
            Violation::ViewDisagreement {
                action,
                removed_sets,
            } => {
                write!(
                    f,
                    "action {action}: final removed sets are not inclusion-ordered across threads: {removed_sets:?}"
                )
            }
            Violation::FalseSuspicion { action, thread } => {
                write!(
                    f,
                    "action {action}: thread {thread} was presumed crashed but completed the action without rejoining"
                )
            }
            Violation::ResolutionUnterminated { action, thread } => {
                write!(
                    f,
                    "action {action}: thread {thread} started recovery but never resolved, aborted or crashed"
                )
            }
        }
    }
}

/// The Lemma 1 completion bound for this plan's parameters (seconds).
///
/// One extra `Tmmax` covers the entry skew the aligned scenario shape can
/// accumulate across a completed protocol barrier (exit votes arrive within
/// one message latency of each other), and a microsecond absorbs
/// virtual-time rounding.
#[must_use]
pub fn lemma1_bound(plan: &ScenarioPlan) -> f64 {
    let nmax = plan.max_depth() as f64;
    (2.0 * nmax + 3.0) * plan.t_mmax
        + nmax * plan.t_abort
        + (nmax + 1.0) * (plan.t_reso + plan.delta)
        + plan.t_mmax
        + 1e-6
}

#[derive(Default)]
struct PerThread {
    enters: usize,
    exits: usize,
    /// Exits whose outcome was `Failed` — an evicted thread finalises so,
    /// which legitimately closes a recovery without a resolution.
    failed_exits: usize,
    aborts: usize,
    crashes: usize,
    recovery_starts: usize,
    resolved: usize,
}

/// One membership step a thread observed, in trace order.
enum ViewDelta {
    /// A view change removed these members.
    Remove(Vec<u32>),
    /// A rejoin grant readmitted this member.
    Readmit(u32),
}

#[derive(Default)]
struct InstanceView {
    name: Option<std::sync::Arc<str>>,
    /// The instance's nesting depth (0 = top level), from its action id.
    depth: u32,
    resolved: Vec<(u32, String)>,
    invocations: u64,
    first_raise_ns: Option<u64>,
    last_handler_end_ns: Option<u64>,
    resolution_msgs: u64,
    per_thread: BTreeMap<u32, PerThread>,
    /// Membership steps per observing thread, in trace order.
    view_deltas: Vec<(u32, ViewDelta)>,
    /// Completed exit phases: `(thread, duration_ns)` from an `ExitStart`
    /// to the thread's next protocol step for the instance (exit, abort,
    /// timeout or recovery trigger) — the window the exit-timeout oracle
    /// bounds.
    exit_phases: Vec<(u32, u64)>,
}

/// One per-instance pass over the trace's runtime and network events.
fn collect_views(trace: &Trace) -> BTreeMap<u64, InstanceView> {
    let mut instances: BTreeMap<u64, InstanceView> = BTreeMap::new();
    // Open exit phases per (instance serial, thread): start instant.
    let mut open_exits: BTreeMap<(u64, u32), u64> = BTreeMap::new();
    for event in trace.runtime_events() {
        let serial = event.action.serial();
        let view = instances.entry(serial).or_default();
        view.depth = event.action.depth();
        let thread = event.thread.as_u32();
        // Any later step of the same thread on the same instance closes an
        // open exit phase (exits wait on votes only; nothing else is
        // observed in between).
        if let Some(start) = open_exits.remove(&(serial, thread)) {
            view.exit_phases
                .push((thread, event.at.as_nanos().saturating_sub(start)));
        }
        match &event.kind {
            EventKind::Enter { name, .. } => {
                view.name = Some(name.clone());
                view.per_thread.entry(thread).or_default().enters += 1;
            }
            EventKind::Exit { outcome } => {
                let counts = view.per_thread.entry(thread).or_default();
                counts.exits += 1;
                if matches!(outcome, caa_core::outcome::ActionOutcome::Failed) {
                    counts.failed_exits += 1;
                }
            }
            EventKind::Abort { .. } => {
                view.per_thread.entry(thread).or_default().aborts += 1;
            }
            EventKind::Crash => {
                view.per_thread.entry(thread).or_default().crashes += 1;
            }
            EventKind::ExitStart { .. } => {
                open_exits.insert((serial, thread), event.at.as_nanos());
            }
            EventKind::Raise { .. } => {
                let at = event.at.as_nanos();
                view.first_raise_ns = Some(view.first_raise_ns.map_or(at, |v| v.min(at)));
            }
            EventKind::RecoveryStart { .. } => {
                view.per_thread.entry(thread).or_default().recovery_starts += 1;
            }
            EventKind::Resolved { exception } => {
                view.resolved.push((thread, exception.name().to_owned()));
                view.per_thread.entry(thread).or_default().resolved += 1;
            }
            EventKind::ViewChange { removed, .. } => {
                view.view_deltas.push((
                    thread,
                    ViewDelta::Remove(removed.iter().map(|t| t.as_u32()).collect()),
                ));
            }
            EventKind::Rejoin { thread: joiner, .. } => {
                view.view_deltas
                    .push((thread, ViewDelta::Readmit(joiner.as_u32())));
            }
            EventKind::ResolutionInvoked { invocations } => {
                view.invocations += u64::from(*invocations);
            }
            EventKind::HandlerEnd { .. } => {
                let at = event.at.as_nanos();
                view.last_handler_end_ns = Some(view.last_handler_end_ns.map_or(at, |v| v.max(at)));
            }
            _ => {}
        }
    }
    for send in trace.net_sends() {
        if matches!(send.class, "Exception" | "Suspended" | "Commit") {
            instances
                .entry(send.correlation)
                .or_default()
                .resolution_msgs += 1;
        }
    }
    instances
}

/// Checks the plan-independent protocol invariants — thread success,
/// resolution agreement, single resolution per instance and
/// nesting/abortion consistency — on any recorded run. Violation `action`
/// fields carry the same dense `A<n>` labels the rendered trace uses.
///
/// Systems driven from a [`ScenarioPlan`] get the plan-dependent Lemma 1
/// and message-complexity checks on top via [`check_run`]; externally
/// built systems (e.g. the production cell) use this directly.
#[must_use]
pub fn check_invariants(report: &SystemReport, trace: &Trace) -> Vec<Violation> {
    let labels = trace.canonical_labels();
    let views = collect_views(trace);
    invariant_violations(report, &views, &labels)
}

fn invariant_violations(
    report: &SystemReport,
    views: &BTreeMap<u64, InstanceView>,
    labels: &std::collections::HashMap<u64, usize>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (name, result) in &report.results {
        if let Err(e) = result {
            // A crash-stop is an *injected* fault, not a failure: the
            // oracles instead check that the survivors coped with it.
            if matches!(e, caa_runtime::RuntimeError::Crashed) {
                continue;
            }
            violations.push(Violation::ThreadFailure {
                thread: name.clone(),
                error: e.to_string(),
            });
        }
    }
    for (&serial, view) in views {
        let action = labels.get(&serial).copied().unwrap_or(usize::MAX) as u64;

        // Resolution agreement (§3.3.2).
        if view.resolved.windows(2).any(|w| w[0].1 != w[1].1) {
            violations.push(Violation::ResolutionDisagreement {
                action,
                resolved: view.resolved.clone(),
            });
        }

        // One resolution per recovery, and at most one recovery per
        // instance under the termination model (§3.3.3).
        if view.invocations > 1 {
            violations.push(Violation::MultipleResolutions {
                action,
                invocations: view.invocations,
            });
        }

        // Nesting/abortion consistency (§3.3.1), crash-stops included:
        // every entry is closed by exactly one exit, abort or crash —
        // except that a crashed-then-readmitted participant enters twice
        // (the crash closes the first entry, its exit closes the
        // re-entry), never more.
        for (&thread, counts) in &view.per_thread {
            let closed = counts.exits + counts.aborts + counts.crashes;
            if counts.enters == 0 || counts.enters != closed || counts.enters > 1 + counts.crashes {
                violations.push(Violation::NestingInconsistent {
                    action,
                    thread,
                    enters: counts.enters,
                    exits: counts.exits,
                    aborts: counts.aborts,
                    crashes: counts.crashes,
                });
            }

            // Bounded-resolution liveness: a started recovery concludes in
            // resolution, an enclosing abort, the thread's own crash, or
            // the ƒ exit of a thread evicted mid-recovery (it finalises
            // Failed without a resolution of its own).
            if counts.recovery_starts > 0
                && counts.resolved + counts.aborts + counts.crashes + counts.failed_exits == 0
            {
                violations.push(Violation::ResolutionUnterminated { action, thread });
            }
        }

        // Membership agreement, set-based: each thread's view evolves by
        // adopting removal sets (∪) and readmissions (−); epoch numbers
        // are per-thread step counters, so agreement is on the *sets* —
        // final removed sets must be pairwise comparable under inclusion
        // (a thread that concluded early holds a prefix of the survivors'
        // view). One sanctioned divergence: a pair of threads that BOTH
        // finalised with the failure exception ƒ. Each declared
        // coordination broken — in a symmetric suspicion race (messages
        // dropped both ways) the two evict each other and step aside
        // before the peer's announcement lands, so their views legally
        // disagree. A ƒ-failed thread must still be comparable with every
        // thread that kept coordinating.
        let mut finals: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for (observer, delta) in &view.view_deltas {
            let set = finals.entry(*observer).or_default();
            match delta {
                ViewDelta::Remove(removed) => set.extend(removed.iter().copied()),
                ViewDelta::Readmit(t) => {
                    set.remove(t);
                }
            }
        }
        let failed = |t: u32| {
            view.per_thread
                .get(&t)
                .is_some_and(|counts| counts.failed_exits > 0)
        };
        let observers: Vec<(u32, &BTreeSet<u32>)> = finals.iter().map(|(t, s)| (*t, s)).collect();
        let mut divergent: Vec<&BTreeSet<u32>> = Vec::new();
        for (i, &(a, set_a)) in observers.iter().enumerate() {
            for &(b, set_b) in &observers[i + 1..] {
                if set_a.is_subset(set_b) || set_b.is_subset(set_a) {
                    continue;
                }
                if failed(a) && failed(b) {
                    continue;
                }
                for set in [set_a, set_b] {
                    if !divergent.contains(&set) {
                        divergent.push(set);
                    }
                }
            }
        }
        if !divergent.is_empty() {
            divergent.sort_by_key(|s| s.len());
            violations.push(Violation::ViewDisagreement {
                action,
                removed_sets: divergent
                    .iter()
                    .map(|s| s.iter().copied().collect())
                    .collect(),
            });
        }

        // No false suspicion: a thread that was removed and never
        // readmitted must not have *completed* the action. A genuinely
        // crashed thread closes its entry (if any) with a Crash event; a
        // successful exit proves the thread was alive past the point it
        // was presumed dead and still acted as a member. Sanctioned
        // survivals: the readmitted rejoiner; the self-finalising ƒ exit
        // of an evicted thread (it observed its own eviction and stepped
        // aside); and an evicted thread that *aborts* — its exit votes
        // never come once the peers have moved on, so the abortion
        // handler undoes its work and raises the abortion exception in
        // the enclosing context instead of completing as a member.
        let mut removed_union: BTreeSet<u32> = BTreeSet::new();
        let mut readmitted: BTreeSet<u32> = BTreeSet::new();
        for (_, delta) in &view.view_deltas {
            match delta {
                ViewDelta::Remove(removed) => removed_union.extend(removed.iter().copied()),
                ViewDelta::Readmit(t) => {
                    readmitted.insert(*t);
                }
            }
        }
        for &thread in &removed_union {
            if readmitted.contains(&thread) {
                continue;
            }
            if view
                .per_thread
                .get(&thread)
                .is_some_and(|counts| counts.exits.saturating_sub(counts.failed_exits) > 0)
            {
                violations.push(Violation::FalseSuspicion { action, thread });
            }
        }
    }
    violations
}

/// Checks every per-trace oracle against one plan-driven run: the
/// invariants of [`check_invariants`] plus the plan-dependent Lemma 1
/// completion bound and §3.3.3 message-complexity bound.
#[must_use]
pub fn check_run(artifacts: &RunArtifacts) -> Vec<Violation> {
    let plan = &artifacts.plan;
    let labels = artifacts.trace.canonical_labels();
    let views = collect_views(&artifacts.trace);
    let mut violations = invariant_violations(&artifacts.report, &views, &labels);

    // Group-size lookup by action name (instances report their definition
    // name in their Enter events).
    let group_by_name: BTreeMap<&str, usize> = plan
        .actions()
        .iter()
        .map(|a| (a.name.as_str(), a.group.len()))
        .collect();

    let bound_secs = lemma1_bound(plan);
    // Object waits stretch compute phases by contention, and a crash-stop
    // stretches recoveries by the bounded resolution wait — either breaks
    // the premises of the Lemma 1 bound, so skip it for such plans (every
    // other oracle still applies).
    let check_lemma1 = !plan.has_objects() && plan.crashes.is_empty();
    let plan_depth = plan.max_depth() as u32;
    for (&serial, view) in &views {
        let action = labels.get(&serial).copied().unwrap_or(usize::MAX) as u64;

        // Lemma 1 completion bound.
        if check_lemma1 {
            if let (Some(raise), Some(done)) = (view.first_raise_ns, view.last_handler_end_ns) {
                let measured = (done.saturating_sub(raise)) as f64 / 1e9;
                if measured > bound_secs {
                    violations.push(Violation::Lemma1Exceeded {
                        action,
                        measured,
                        bound: bound_secs,
                    });
                }
            }
        }

        // Exit-timeout bound: no exit phase outlives the bounded wait —
        // crashed peers are resolved to abortion, not waited on forever.
        // The executor separates the bounds hierarchically (each level's
        // wait exceeds its sublevels' total bounded-wait budget, see
        // [`crate::exec::TIMEOUT_SEPARATION`]), so the bound grows with
        // the levels below this instance. One `Tabort` of slack: an exit
        // interrupted by an enclosing-level trigger closes on the `Abort`
        // event, which is only emitted after the abortion handler's work.
        let levels_below = plan_depth.saturating_sub(view.depth) as i32;
        let exit_bound = plan.exit_timeout * crate::exec::TIMEOUT_SEPARATION.powi(levels_below)
            + plan.t_abort
            + 1e-6;
        for &(thread, dur_ns) in &view.exit_phases {
            let measured = dur_ns as f64 / 1e9;
            if measured > exit_bound {
                violations.push(Violation::ExitTimeoutExceeded {
                    action,
                    thread,
                    measured,
                    bound: exit_bound,
                });
            }
        }

        // §3.3.3 message complexity. The paper's (N+1)(N−1) accounting
        // gives each of the N participants one broadcast (its Exception
        // or Suspended announcement, N−1 messages) plus the resolver's
        // Commit broadcast. A participant readmitted *mid-recovery* spent
        // that budget before its crash and must re-announce its state
        // into the ongoing resolution after catching up, so each distinct
        // readmitted thread earns one extra participant broadcast. Plans
        // without rejoins (all crash-free plans included) keep the exact
        // paper bound.
        let group_size = view
            .name
            .as_deref()
            .and_then(|name| group_by_name.get(name).copied());
        if let Some(n) = group_size {
            let n = n as u64;
            let readmissions = view
                .view_deltas
                .iter()
                .filter_map(|(_, delta)| match delta {
                    ViewDelta::Readmit(t) => Some(*t),
                    ViewDelta::Remove(_) => None,
                })
                .collect::<BTreeSet<u32>>()
                .len() as u64;
            let bound = (n + 1).saturating_mul(n.saturating_sub(1))
                + readmissions.saturating_mul(n.saturating_sub(1));
            if view.resolution_msgs > bound {
                violations.push(Violation::MessageBoundExceeded {
                    action,
                    messages: view.resolution_msgs,
                    bound,
                });
            }
        }
    }

    violations
}

/// Compares two renderings of the same seed's trace (deterministic-replay
/// oracle). The comparison streams line by line
/// ([`Trace::first_divergence`]) — byte-for-byte equivalent to comparing
/// [`Trace::render`] outputs, without materialising either string.
#[must_use]
pub fn check_replay(original: &Trace, replay: &Trace) -> Option<Violation> {
    original
        .first_divergence(replay)
        .map(|first_diff_line| Violation::ReplayDiverged { first_diff_line })
}

/// Compares the timestamp-free protocol projections of two traces (see
/// [`Trace::protocol_projection`]).
///
/// Historical/diagnostic: before shared-object acquisition was arbitrated
/// through the simulation, systems synchronising through objects (the
/// production cell) could only be replay-checked on this weaker
/// projection. Everything now replays byte-exactly under [`check_replay`];
/// the projection remains useful for triaging *which* side of a divergence
/// (timing vs protocol steps) a future regression sits on.
#[must_use]
pub fn check_replay_protocol(original: &Trace, replay: &Trace) -> Option<Violation> {
    diff_renderings(
        &original.protocol_projection(),
        &replay.protocol_projection(),
    )
}

fn diff_renderings(a: &str, b: &str) -> Option<Violation> {
    if a == b {
        return None;
    }
    let first_diff_line = a
        .lines()
        .zip(b.lines())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.lines().count().min(b.lines().count()));
    Some(Violation::ReplayDiverged { first_diff_line })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::plan::ScenarioConfig;

    #[test]
    fn clean_seeds_pass_every_oracle() {
        let cfg = ScenarioConfig::default();
        for seed in [0, 1, 2, 3] {
            let plan = ScenarioPlan::generate(seed, &cfg);
            let artifacts = execute(&plan);
            let violations = check_run(&artifacts);
            assert!(
                violations.is_empty(),
                "seed {seed} ({}):\n{}\ntrace:\n{}",
                plan.describe(),
                violations
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n"),
                artifacts.trace.render(),
            );
        }
    }

    #[test]
    fn replay_check_accepts_identical_and_flags_divergent() {
        let cfg = ScenarioConfig::default();
        let plan = ScenarioPlan::generate(5, &cfg);
        let a = execute(&plan);
        let b = execute(&plan);
        assert_eq!(check_replay(&a.trace, &b.trace), None);
        let other = execute(&ScenarioPlan::generate(6, &cfg));
        assert!(check_replay(&a.trace, &other.trace).is_some());
    }
}
