//! **caa-fuzz** — coverage-guided scenario exploration: mutate corpus
//! plans toward protocol paths fresh-seed sampling starves.
//!
//! Fresh-seed sweeps saturate the common protocol paths quickly and then
//! spend the rest of their budget re-hitting them; the rare combinations
//! (exit races × view changes × object contention, deep ƒ cascades, crash
//! instants straddling round boundaries) stay under-covered because every
//! knob re-rolls independently per seed. This module closes the loop the
//! ROADMAP asks for: it keys **novelty** on the
//! [`PathCoverage::signature`] of each run, keeps a **frontier** of plans
//! whose traces minted novel signatures, and schedules structured
//! **mutations** of frontier plans — small, validity-preserving edits that
//! hold everything else fixed, so one knob moves at a time and the
//! neighbourhood of an interesting scenario actually gets explored.
//!
//! ## Mutation reproducibility contract
//!
//! [`mutate_plan`] is a **pure function** of `(parent plan, mutation
//! seed)`: the mutation seed feeds a private [`Rng`] stream that picks the
//! mutator and all of its choices. A fuzz find is therefore fully
//! described by its [`Lineage`] — the base scenario seed plus the ordered
//! list of mutation seeds — and [`Lineage::materialize`] rebuilds the
//! exact plan from scratch. Corpus entries persist the lineage
//! (`lineage.txt`), so `replay --corpus <entry>` re-derives the mutated
//! plan and rechecks the recorded trace byte-exactly. Worker count never
//! affects outcomes: mutation seeds derive from a global child counter,
//! parents are selected *between* generations on insertion-ordered state,
//! and batch results are committed in child-index order.
//!
//! ## Validity
//!
//! Every mutator preserves the generator's invariants
//! ([`validate_plan`]): the single-object-depth discipline, the timeout
//! hierarchy separation, full-group top actions, disjoint nested groups,
//! raiser-delay bounds. Mutated plans are thus judged by the *same*
//! oracles as fresh ones — a fuzz "finding" is a protocol bug, never a
//! malformed scenario.
//!
//! ## Adding a mutator
//!
//! Write a `fn(&mut ScenarioPlan, &mut Rng) -> bool` that either commits
//! a complete edit (returning `true`) or leaves the plan untouched
//! (returning `false` when inapplicable), append it to [`MUTATORS`], and
//! extend the property test in `tests/fuzz_mutators.rs` if the edit
//! explores a new structural dimension. Mutators run against a clone, so
//! a `false` return after partial work is a correctness bug only for the
//! mutator's own determinism, not for the plan — but keep edits atomic
//! anyway: the retry loop assumes `false` consumed only rng draws.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use caa_telemetry::json::{self, Value};

use crate::arena::ExecutionArena;
use crate::metrics::SweepMetrics;
use crate::plan::{
    gen_subtree, plan_object_depth, rename_subtree, validate_plan, with_action_mut, ActionPlan,
    CrashChoice, FaultChoice, ObjectOp, Phase, RaisePhase, ScenarioConfig, ScenarioPlan,
    VerdictChoice,
};
use crate::rng::Rng;
use crate::sweep::{
    merge_signatures, run_plan_checked, sweep, write_corpus_files, PathCoverage, SeedResult,
    SignatureMap, SweepConfig, SweepReport,
};

/// Schema tag of `coverage.json` documents ([`CoverageDoc`]).
pub const COVERAGE_SCHEMA: &str = "caa-coverage/v1";

// ---------------------------------------------------------------------------
// Lineage: the reproducibility unit of a fuzz find.
// ---------------------------------------------------------------------------

/// How a plan came to be: the base scenario seed plus the ordered mutation
/// seeds applied to it. Together with the [`ScenarioConfig`] this is a
/// complete, byte-exact recipe for the plan ([`Lineage::materialize`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lineage {
    /// The base scenario seed ([`ScenarioPlan::generate`]).
    pub seed: u64,
    /// Mutation seeds, applied in order via [`mutate_plan`].
    pub mutations: Vec<u64>,
}

impl Lineage {
    /// An unmutated base seed.
    #[must_use]
    pub fn base(seed: u64) -> Lineage {
        Lineage {
            seed,
            mutations: Vec::new(),
        }
    }

    /// This lineage extended by one more mutation.
    #[must_use]
    pub fn child(&self, mutation_seed: u64) -> Lineage {
        let mut mutations = self.mutations.clone();
        mutations.push(mutation_seed);
        Lineage {
            seed: self.seed,
            mutations,
        }
    }

    /// Rebuilds the exact plan this lineage describes: generate the base
    /// seed under `config`, then replay every mutation seed through the
    /// pure [`mutate_plan`].
    #[must_use]
    pub fn materialize(&self, config: &ScenarioConfig) -> ScenarioPlan {
        let mut plan = ScenarioPlan::generate(self.seed, config);
        for &mutation_seed in &self.mutations {
            plan = mutate_plan(&plan, mutation_seed).plan;
        }
        plan
    }

    /// The persisted line-oriented form (`seed <n>`, then one
    /// `mutate 0x<hex>` line per mutation, in order).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("seed {}\n", self.seed);
        for m in &self.mutations {
            let _ = writeln!(out, "mutate {m:#018x}");
        }
        out
    }

    /// Parses the form written by [`Lineage::render`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending line.
    pub fn parse(text: &str) -> Result<Lineage, String> {
        let mut seed: Option<u64> = None;
        let mut mutations = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(s) = line.strip_prefix("seed ") {
                seed = Some(s.trim().parse().map_err(|e| format!("bad seed: {e}"))?);
            } else if let Some(m) = line.strip_prefix("mutate ") {
                let m = m.trim();
                let m = m.strip_prefix("0x").unwrap_or(m);
                mutations
                    .push(u64::from_str_radix(m, 16).map_err(|e| format!("bad mutation: {e}"))?);
            } else {
                return Err(format!("unrecognised lineage line: {line:?}"));
            }
        }
        Ok(Lineage {
            seed: seed.ok_or("lineage has no seed line")?,
            mutations,
        })
    }

    /// The corpus-entry directory name for this lineage: the bare seed
    /// for unmutated plans (the sweep's existing convention), or
    /// `<seed>-m<hash>` for mutated ones — the seed stays in the leading
    /// digits, so every existing seed-parsing consumer keeps working.
    #[must_use]
    pub fn entry_name(&self) -> String {
        if self.mutations.is_empty() {
            return self.seed.to_string();
        }
        format!("{}-m{:08x}", self.seed, fnv32(&self.render()))
    }
}

fn fnv32(text: &str) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash as u32
}

/// Loads a corpus entry's plan: the persisted [`ScenarioConfig`]
/// (`config.txt`), plus either the [`Lineage`] (`lineage.txt`, fuzz
/// entries) or the seed parsed from the directory name's leading digits
/// (sweep entries). When the entry also records a workload-bisection
/// step sequence (`workload.txt`), the steps replay on top — so a
/// 1-minimal shrunk violation rechecks byte-exactly through the same
/// `replay --corpus` path as any other entry. Returns the materialized
/// plan and the config.
///
/// # Errors
///
/// A human-readable message when the entry is unreadable or malformed.
pub fn load_corpus_plan(entry: &Path) -> Result<(ScenarioPlan, ScenarioConfig), String> {
    let config = match std::fs::read_to_string(entry.join("config.txt")) {
        Ok(text) => ScenarioConfig::from_kv(&text)?,
        Err(e) => return Err(format!("cannot read {:?}: {e}", entry.join("config.txt"))),
    };
    let lineage = match std::fs::read_to_string(entry.join("lineage.txt")) {
        Ok(text) => Lineage::parse(&text)?,
        Err(_) => {
            let name = entry
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| format!("corpus entry has no usable name: {entry:?}"))?;
            let digits: String = name.chars().take_while(char::is_ascii_digit).collect();
            let seed = digits
                .parse()
                .map_err(|_| format!("corpus entry name {name:?} does not start with a seed"))?;
            Lineage::base(seed)
        }
    };
    let mut plan = lineage.materialize(&config);
    if let Ok(text) = std::fs::read_to_string(entry.join("workload.txt")) {
        let steps = crate::bisect::parse_steps(&text)?;
        plan = crate::bisect::apply_steps(&plan, &steps).ok_or_else(|| {
            format!("recorded workload steps no longer apply to the entry's plan: {entry:?}")
        })?;
    }
    Ok((plan, config))
}

// ---------------------------------------------------------------------------
// Mutators.
// ---------------------------------------------------------------------------

/// The result of one [`mutate_plan`] application.
#[derive(Debug, Clone)]
pub struct Mutated {
    /// The mutated plan (always [`validate_plan`]-clean).
    pub plan: ScenarioPlan,
    /// Which mutator applied (for triage and tests).
    pub mutator: &'static str,
}

type Mutator = fn(&mut ScenarioPlan, &mut Rng) -> bool;

/// The mutator table, each entry a named validity-preserving plan edit.
/// Order matters only for reproducibility: the mutation seed indexes into
/// this table **modulo its length**, so *any* size change remaps what a
/// recorded mutation seed picks. A persisted lineage therefore replays
/// byte-exactly only under the table that recorded it; regression
/// lineages checked into tests must be re-derived when the table grows
/// (reordering or removing entries is never OK — append and re-pin).
pub const MUTATORS: &[(&str, Mutator)] = &[
    ("shift_raise", shift_raise),
    ("widen_raise", widen_raise),
    ("retarget_raise", retarget_raise),
    ("drop_raise", drop_raise),
    ("add_raise", add_raise),
    ("move_crash", move_crash),
    ("retarget_crash", retarget_crash),
    ("add_crash", add_crash),
    ("drop_crash", drop_crash),
    ("perturb_fault", perturb_fault),
    ("add_fault", add_fault),
    ("drop_fault", drop_fault),
    ("perturb_timing", perturb_timing),
    ("perturb_timeouts", perturb_timeouts),
    ("redepth_top", redepth_top),
    ("regen_child", regen_child),
    ("dup_top_action", dup_top_action),
    ("perturb_compute", perturb_compute),
    ("perturb_object_op", perturb_object_op),
    ("perturb_verdict", perturb_verdict),
    ("toggle_eab", toggle_eab),
    // Appended after the multi-crash/rejoin rework — new entries go below
    // these (append-only keeps old lineages replayable).
    ("add_second_crash", add_second_crash),
    ("add_rejoin", add_rejoin),
    ("drop_rejoin", drop_rejoin),
    ("perturb_rejoin", perturb_rejoin),
];

/// Applies one structured mutation to `plan`, chosen and parameterised by
/// `mutation_seed` alone — a **pure function**, the reproducibility
/// anchor of every fuzz find (see the module docs). Inapplicable picks
/// (e.g. `drop_crash` on a crash-free plan) retry deterministically;
/// always-applicable mutators (`perturb_timing`) guarantee termination.
#[must_use]
pub fn mutate_plan(plan: &ScenarioPlan, mutation_seed: u64) -> Mutated {
    let mut rng = Rng::new(mutation_seed);
    for _ in 0..256 {
        let (name, mutator) = MUTATORS[rng.below(MUTATORS.len() as u64) as usize];
        let mut candidate = plan.clone();
        if mutator(&mut candidate, &mut rng) {
            if let Err(e) = validate_plan(&candidate) {
                // A mutator that emits an invalid plan is a harness bug;
                // fall through to the always-valid fallback in release
                // builds rather than feeding the oracles garbage.
                debug_assert!(false, "mutator {name} broke plan validity: {e}");
                break;
            }
            return Mutated {
                plan: candidate,
                mutator: name,
            };
        }
    }
    let mut candidate = plan.clone();
    let applied = perturb_timing(&mut candidate, &mut rng);
    debug_assert!(applied, "perturb_timing applies to every plan");
    Mutated {
        plan: candidate,
        mutator: "perturb_timing",
    }
}

/// Uniformly picks the preorder index of an action satisfying `pred`.
fn pick_action(
    plan: &ScenarioPlan,
    rng: &mut Rng,
    pred: impl Fn(&ActionPlan) -> bool,
) -> Option<usize> {
    let candidates: Vec<usize> = plan
        .actions()
        .iter()
        .enumerate()
        .filter(|(_, a)| pred(a))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.below(candidates.len() as u64) as usize])
}

/// Raiser delays stay inside the generator's concurrency window: far
/// below the exit-timeout scale, so a delayed raise never reads as a
/// crash.
const RAISE_WINDOW_NS: u64 = 200_000_000;

fn shift_raise(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(i) = pick_action(plan, rng, |a| a.raise.is_some()) else {
        return false;
    };
    with_action_mut(plan, i, |a| {
        let raise = a.raise.as_mut().expect("picked for its raise phase");
        let k = rng.below(raise.raisers.len() as u64) as usize;
        raise.raisers[k].1 = rng.below(RAISE_WINDOW_NS);
    })
    .is_some()
}

fn widen_raise(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(i) = pick_action(plan, rng, |a| {
        a.raise
            .as_ref()
            .is_some_and(|r| r.raisers.len() < a.group.len())
    }) else {
        return false;
    };
    with_action_mut(plan, i, |a| {
        let raisers: Vec<u32> = a
            .raise
            .as_ref()
            .expect("picked for its raise phase")
            .raisers
            .iter()
            .map(|&(t, _)| t)
            .collect();
        let free: Vec<u32> = a
            .group
            .iter()
            .copied()
            .filter(|t| !raisers.contains(t))
            .collect();
        let t = free[rng.below(free.len() as u64) as usize];
        a.raise
            .as_mut()
            .expect("picked for its raise phase")
            .raisers
            .push((t, rng.below(RAISE_WINDOW_NS)));
    })
    .is_some()
}

fn retarget_raise(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(i) = pick_action(plan, rng, |a| {
        a.raise
            .as_ref()
            .is_some_and(|r| r.raisers.len() < a.group.len())
    }) else {
        return false;
    };
    with_action_mut(plan, i, |a| {
        let raisers: Vec<u32> = a
            .raise
            .as_ref()
            .expect("picked for its raise phase")
            .raisers
            .iter()
            .map(|&(t, _)| t)
            .collect();
        let free: Vec<u32> = a
            .group
            .iter()
            .copied()
            .filter(|t| !raisers.contains(t))
            .collect();
        let to = free[rng.below(free.len() as u64) as usize];
        let raise = a.raise.as_mut().expect("picked for its raise phase");
        let k = rng.below(raise.raisers.len() as u64) as usize;
        raise.raisers[k].0 = to;
    })
    .is_some()
}

fn drop_raise(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(i) = pick_action(plan, rng, |a| a.raise.is_some()) else {
        return false;
    };
    with_action_mut(plan, i, |a| {
        let raise = a.raise.as_mut().expect("picked for its raise phase");
        if raise.raisers.len() > 1 {
            let k = rng.below(raise.raisers.len() as u64) as usize;
            raise.raisers.remove(k);
        } else {
            a.raise = None;
        }
    })
    .is_some()
}

fn add_raise(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(i) = pick_action(plan, rng, |a| a.raise.is_none()) else {
        return false;
    };
    with_action_mut(plan, i, |a| {
        let mut pool = a.group.clone();
        let first = pool.remove(rng.below(pool.len() as u64) as usize);
        let mut raisers = vec![(first, rng.below(RAISE_WINDOW_NS))];
        if !pool.is_empty() && rng.chance(0.4) {
            let second = pool[rng.below(pool.len() as u64) as usize];
            raisers.push((second, rng.below(RAISE_WINDOW_NS)));
        }
        a.raise = Some(RaisePhase { raisers });
    })
    .is_some()
}

/// Uniformly picks a crash index. Single-crash plans (everything an old
/// lineage can reach) consume **no** rng draw, so pre-multi-crash
/// lineages keep materializing byte-identically.
fn pick_crash(plan: &ScenarioPlan, rng: &mut Rng) -> Option<usize> {
    match plan.crashes.len() {
        0 => None,
        1 => Some(0),
        n => Some(rng.below(n as u64) as usize),
    }
}

fn move_crash(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(k) = pick_crash(plan, rng) else {
        return false;
    };
    let mut crash = plan.crashes[k];
    if rng.chance(0.5) {
        crash.delay_ns = rng.below(2_000_000_000);
    } else {
        // Snap the crash instant onto a cumulative compute-phase boundary
        // of the crash action (± a small jitter): the instants where the
        // protocol transitions between rounds, which uniform sampling
        // essentially never lands on.
        let action = &plan.top[crash.top_action as usize];
        let mut boundaries = vec![0u64];
        let mut acc = 0u64;
        for phase in &action.phases {
            if let Phase::Compute { dur_ns, .. } = phase {
                acc += dur_ns;
                boundaries.push(acc);
            }
        }
        let boundary = boundaries[rng.below(boundaries.len() as u64) as usize];
        let jitter = rng.below(2_000_000);
        crash.delay_ns = if rng.chance(0.5) {
            boundary.saturating_sub(jitter)
        } else {
            boundary + jitter
        };
    }
    plan.crashes[k] = crash;
    true
}

fn retarget_crash(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(k) = pick_crash(plan, rng) else {
        return false;
    };
    let mut crash = plan.crashes[k];
    if rng.chance(0.5) {
        // Threads already claimed by *other* crashes are off limits (the
        // validator forbids double-crashing a thread). For single-crash
        // plans the free list is every thread in ascending order, so the
        // draw maps to the same thread the pre-multi-crash mutator chose.
        let free: Vec<u32> = (0..plan.threads)
            .filter(|&t| {
                plan.crashes
                    .iter()
                    .enumerate()
                    .all(|(i, c)| i == k || c.thread != t)
            })
            .collect();
        crash.thread = free[rng.below(free.len() as u64) as usize];
    } else {
        crash.top_action = rng.below(plan.top.len() as u64) as u32;
    }
    plan.crashes[k] = crash;
    true
}

fn add_crash(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    if !plan.crashes.is_empty() {
        return false;
    }
    plan.crashes.push(CrashChoice {
        thread: rng.below(u64::from(plan.threads)) as u32,
        top_action: rng.below(plan.top.len() as u64) as u32,
        delay_ns: rng.below(1_500_000_000),
        rejoin_delay_ns: None,
    });
    true
}

fn drop_crash(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(k) = pick_crash(plan, rng) else {
        return false;
    };
    plan.crashes.remove(k);
    true
}

fn add_second_crash(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    // Needs an existing crash, and leaves at least one survivor.
    if plan.crashes.is_empty() || plan.crashes.len() + 1 >= plan.threads as usize {
        return false;
    }
    let free: Vec<u32> = (0..plan.threads)
        .filter(|&t| plan.crashes.iter().all(|c| c.thread != t))
        .collect();
    if free.is_empty() {
        return false;
    }
    plan.crashes.push(CrashChoice {
        thread: free[rng.below(free.len() as u64) as usize],
        top_action: rng.below(plan.top.len() as u64) as u32,
        delay_ns: rng.below(1_500_000_000),
        rejoin_delay_ns: rng.chance(0.5).then(|| rng.below(30_000_000_000)),
    });
    true
}

fn add_rejoin(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let candidates: Vec<usize> = plan
        .crashes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.rejoin_delay_ns.is_none())
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return false;
    }
    let k = candidates[rng.below(candidates.len() as u64) as usize];
    plan.crashes[k].rejoin_delay_ns = Some(rng.below(30_000_000_000));
    true
}

fn drop_rejoin(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let candidates: Vec<usize> = plan
        .crashes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.rejoin_delay_ns.is_some())
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return false;
    }
    let k = candidates[rng.below(candidates.len() as u64) as usize];
    plan.crashes[k].rejoin_delay_ns = None;
    true
}

fn perturb_rejoin(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let candidates: Vec<usize> = plan
        .crashes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.rejoin_delay_ns.is_some())
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return false;
    }
    let k = candidates[rng.below(candidates.len() as u64) as usize];
    // Half the rolls race the restart against detection (inside the
    // signalling-timeout window), half land anywhere in the patience band.
    plan.crashes[k].rejoin_delay_ns = Some(if rng.chance(0.5) {
        rng.below(2_000_000_000)
    } else {
        rng.below(60_000_000_000)
    });
    true
}

fn perturb_fault(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    if plan.faults.is_empty() {
        return false;
    }
    let threads = plan.threads;
    let i = rng.below(plan.faults.len() as u64) as usize;
    let fault = &mut plan.faults[i];
    // Unbounded (signalling-crash) rules stay loss rules with bounded
    // perturbation surface: skip and source only.
    let choices = if fault.count == u64::MAX { 2 } else { 4 };
    match rng.below(choices) {
        0 => fault.skip = rng.below(30),
        1 => {
            fault.src = if rng.chance(0.7) {
                Some(rng.below(u64::from(threads)) as u32)
            } else {
                None
            };
            if fault.count == u64::MAX && fault.src.is_none() {
                // An unbounded rule losing *everyone's* announcements
                // starves the whole signalling plane; keep it pinned.
                fault.src = Some(rng.below(u64::from(threads)) as u32);
            }
        }
        2 => fault.count = rng.range(1, 3),
        _ => fault.lose = !fault.lose,
    }
    true
}

fn add_fault(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    if plan.faults.len() >= 6 {
        return false;
    }
    let unbounded = plan.faults.iter().filter(|f| f.count == u64::MAX).count();
    let make_unbounded = unbounded == 0 && rng.chance(0.2);
    plan.faults.push(FaultChoice {
        class: if make_unbounded || rng.chance(0.5) {
            "toBeSignalled"
        } else {
            "App"
        },
        lose: make_unbounded || rng.chance(0.5),
        src: if make_unbounded || rng.chance(0.7) {
            Some(rng.below(u64::from(plan.threads)) as u32)
        } else {
            None
        },
        skip: rng.below(30),
        count: if make_unbounded {
            u64::MAX
        } else {
            rng.range(1, 3)
        },
    });
    true
}

fn drop_fault(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    if plan.faults.is_empty() {
        return false;
    }
    let i = rng.below(plan.faults.len() as u64) as usize;
    plan.faults.remove(i);
    true
}

fn perturb_timing(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    match rng.below(4) {
        0 => plan.t_mmax = rng.f64_range(0.05, 1.0),
        1 => plan.t_reso = rng.f64_range(0.0, 0.3),
        2 => plan.delta = rng.f64_range(0.0, 0.3),
        _ => plan.t_abort = rng.f64_range(0.0, 0.3),
    }
    true
}

fn perturb_timeouts(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    // Scale the whole hierarchy together: the signalling timeout moves
    // within a safe band (well above any live peer's announcement delay),
    // and the bounded exit/resolution waits keep at least the generator's
    // 10x separation above it — so mutated timeouts stretch or squeeze
    // the protocol's patience without ever suspecting a live peer.
    plan.signal_timeout = rng.f64_range(30.0, 90.0);
    plan.exit_timeout = plan.signal_timeout * rng.f64_range(10.0, 40.0);
    plan.resolution_timeout = plan.signal_timeout * rng.f64_range(10.0, 40.0);
    true
}

/// The single object depth new subtrees may place operations at: the
/// plan's existing depth when any operations exist, an rng-chosen one
/// when the plan has an (unused) object pool, `None` when it has no pool.
fn subtree_object_depth(plan: &ScenarioPlan, rng: &mut Rng, max_depth: usize) -> Option<usize> {
    if plan.objects.is_empty() {
        return None;
    }
    plan_object_depth(plan).or_else(|| Some(rng.below(max_depth as u64 + 1) as usize))
}

fn redepth_top(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let i = rng.below(plan.top.len() as u64) as usize;
    let max_depth = (plan.max_depth() + 1).min(3);
    let object_depth = subtree_object_depth(plan, rng, max_depth);
    let name = plan.top[i].name.clone();
    let group = plan.top[i].group.clone();
    plan.top[i] = gen_subtree(rng, name, group, 0, max_depth, object_depth);
    true
}

fn regen_child(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(i) = pick_action(plan, rng, |a| {
        a.phases.iter().any(|p| matches!(p, Phase::Nested { .. }))
    }) else {
        return false;
    };
    let max_depth = (plan.max_depth() + 1).min(3);
    let object_depth = subtree_object_depth(plan, rng, max_depth);
    with_action_mut(plan, i, |a| {
        let nested: Vec<usize> = a
            .phases
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Phase::Nested { .. }))
            .map(|(p, _)| p)
            .collect();
        let p = nested[rng.below(nested.len() as u64) as usize];
        let Phase::Nested { children } = &mut a.phases[p] else {
            unreachable!("filtered to nested phases");
        };
        let c = rng.below(children.len() as u64) as usize;
        let child = &children[c];
        children[c] = gen_subtree(
            rng,
            child.name.clone(),
            child.group.clone(),
            child.depth,
            max_depth.max(child.depth),
            object_depth,
        );
    })
    .is_some()
}

fn dup_top_action(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    if plan.top.len() >= 4 {
        return false;
    }
    let i = rng.below(plan.top.len() as u64) as usize;
    let mut clone = plan.top[i].clone();
    // Find a fresh root name: duplicated subtrees must keep globally
    // unique action names for handler/exception identities to stay
    // distinct.
    let mut k = plan.top.len();
    while plan.top.iter().any(|a| a.name == format!("a{k}")) {
        k += 1;
    }
    rename_subtree(&mut clone, &format!("a{k}"));
    plan.top.push(clone);
    true
}

fn perturb_compute(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(i) = pick_action(plan, rng, |a| {
        a.phases.iter().any(|p| matches!(p, Phase::Compute { .. }))
    }) else {
        return false;
    };
    with_action_mut(plan, i, |a| {
        let group = a.group.clone();
        let computes: Vec<usize> = a
            .phases
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Phase::Compute { .. }))
            .map(|(p, _)| p)
            .collect();
        let p = computes[rng.below(computes.len() as u64) as usize];
        let Phase::Compute {
            dur_ns,
            sends,
            listeners,
            object_ops,
        } = &mut a.phases[p]
        else {
            unreachable!("filtered to compute phases");
        };
        match rng.below(3) {
            0 => {
                // Re-roll the duration within the generator's band; never
                // below any scheduled object operation's offset.
                let floor = object_ops
                    .iter()
                    .map(|op| op.delay_ns + 1)
                    .max()
                    .unwrap_or(0);
                *dur_ns = ((rng.f64_range(0.02, 0.4) * 1e9) as u64).max(floor);
            }
            1 if group.len() >= 2 => {
                if sends.is_empty() || rng.chance(0.5) {
                    let from = group[rng.below(group.len() as u64) as usize];
                    let peers: Vec<u32> = group.iter().copied().filter(|&t| t != from).collect();
                    let to = peers[rng.below(peers.len() as u64) as usize];
                    sends.push((from, to));
                } else {
                    let k = rng.below(sends.len() as u64) as usize;
                    sends.remove(k);
                }
            }
            _ => {
                let t = group[rng.below(group.len() as u64) as usize];
                if let Some(pos) = listeners.iter().position(|&l| l == t) {
                    listeners.remove(pos);
                } else {
                    listeners.push(t);
                    // Listeners drain the inbox instead of computing:
                    // their scheduled object operations go with them.
                    object_ops.retain(|op| op.thread != t);
                }
            }
        }
    })
    .is_some()
}

fn perturb_object_op(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(i) = pick_action(plan, rng, |a| {
        a.phases.iter().any(|p| match p {
            Phase::Compute { object_ops, .. } => !object_ops.is_empty(),
            Phase::Nested { .. } => false,
        })
    }) else {
        return false;
    };
    with_action_mut(plan, i, |a| {
        let group = a.group.clone();
        let with_ops: Vec<usize> = a
            .phases
            .iter()
            .enumerate()
            .filter(|(_, p)| match p {
                Phase::Compute { object_ops, .. } => !object_ops.is_empty(),
                Phase::Nested { .. } => false,
            })
            .map(|(p, _)| p)
            .collect();
        let p = with_ops[rng.below(with_ops.len() as u64) as usize];
        let Phase::Compute {
            dur_ns,
            listeners,
            object_ops,
            ..
        } = &mut a.phases[p]
        else {
            unreachable!("filtered to compute phases with ops");
        };
        let k = rng.below(object_ops.len() as u64) as usize;
        match rng.below(4) {
            0 => object_ops[k].delay_ns = rng.below(*dur_ns),
            1 => object_ops[k].update = !object_ops[k].update,
            2 => {
                // Contend harder: copy the operation onto another
                // non-listener member (same object — the single-object-
                // per-action rule — same depth by construction).
                let eligible: Vec<u32> = group
                    .iter()
                    .copied()
                    .filter(|t| !listeners.contains(t))
                    .collect();
                if !eligible.is_empty() {
                    let op = ObjectOp {
                        thread: eligible[rng.below(eligible.len() as u64) as usize],
                        delay_ns: rng.below(*dur_ns),
                        object: object_ops[k].object,
                        update: rng.chance(0.7),
                    };
                    object_ops.push(op);
                }
            }
            _ => {
                object_ops.remove(k);
            }
        }
    })
    .is_some()
}

fn perturb_verdict(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(i) = pick_action(plan, rng, |_| true) else {
        return false;
    };
    with_action_mut(plan, i, |a| {
        let k = rng.below(a.verdicts.len() as u64) as usize;
        let roll = rng.unit_f64();
        a.verdicts[k].1 = if roll < 0.40 {
            VerdictChoice::Recovered
        } else if roll < 0.65 {
            VerdictChoice::Undo
        } else if roll < 0.85 {
            VerdictChoice::Signal
        } else {
            VerdictChoice::Fail
        };
    })
    .is_some()
}

fn toggle_eab(plan: &mut ScenarioPlan, rng: &mut Rng) -> bool {
    let Some(i) = pick_action(plan, rng, |a| a.depth > 0) else {
        return false;
    };
    with_action_mut(plan, i, |a| {
        let t = a.group[rng.below(a.group.len() as u64) as usize];
        if let Some(pos) = a.abort_raises_eab.iter().position(|&e| e == t) {
            a.abort_raises_eab.remove(pos);
        } else {
            a.abort_raises_eab.push(t);
        }
    })
    .is_some()
}

// ---------------------------------------------------------------------------
// The coverage-guided loop.
// ---------------------------------------------------------------------------

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Scenario-space bounds (also persisted with every corpus entry).
    pub scenario: ScenarioConfig,
    /// Total execution budget: generation-0 fresh seeds plus mutated
    /// children, one execution each (two with [`FuzzConfig::check_replay`]
    /// counted as one budget unit, mirroring the sweep's accounting).
    pub executions: u64,
    /// Fresh seeds seeding generation 0 (capped by the budget).
    pub initial_seeds: u64,
    /// First generation-0 seed.
    pub start_seed: u64,
    /// Mutated children per generation. Parent selection and novelty
    /// accounting happen at generation boundaries, so the batch size
    /// trades scheduling freshness against parallel occupancy.
    pub batch: u64,
    /// Master seed of the mutation/selection streams. Two runs with the
    /// same `(scenario, executions, initial_seeds, start_seed, batch,
    /// fuzz_seed)` are identical regardless of worker count.
    pub fuzz_seed: u64,
    /// Worker OS threads; 0 = one per available core (×2).
    pub workers: usize,
    /// Execute every plan twice and require byte-identical traces.
    pub check_replay: bool,
    /// Where violating lineages persist corpus entries (sweep layout plus
    /// `lineage.txt`). `None` disables persistence.
    pub corpus_dir: Option<PathBuf>,
    /// Also run a fresh-seed sweep of the same execution budget and
    /// record its signature map — the baseline the ≥20 %-more-paths
    /// acceptance gate compares against.
    pub compare_fresh: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            scenario: ScenarioConfig::default(),
            executions: 2048,
            initial_seeds: 256,
            start_seed: 0,
            batch: 64,
            fuzz_seed: 0xCAAF_0221,
            workers: 0,
            check_replay: false,
            corpus_dir: None,
            compare_fresh: false,
        }
    }
}

/// One violating lineage found by a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzViolation {
    /// The find's full reproduction recipe.
    pub lineage: Lineage,
    /// Rendered oracle violations.
    pub violations: Vec<String>,
    /// The persisted corpus entry, when
    /// [`FuzzConfig::corpus_dir`] was set.
    pub corpus: Option<PathBuf>,
}

/// The fresh-seed baseline a fuzz run compares against
/// ([`FuzzConfig::compare_fresh`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreshBaseline {
    /// Executions the baseline sweep performed.
    pub executions: u64,
    /// Its signature map.
    pub signatures: SignatureMap,
}

/// Aggregated outcome of a fuzz run.
#[derive(Debug)]
pub struct FuzzReport {
    /// The scenario bounds the run explored under.
    pub scenario: ScenarioConfig,
    /// Executions performed (≤ the configured budget).
    pub executions: u64,
    /// Generation-0 fresh seeds executed.
    pub initial_seeds: u64,
    /// Mutated generations executed after generation 0.
    pub generations: u64,
    /// Novel signatures minted by *mutated* children (novelty the fresh
    /// seeds alone did not reach).
    pub novel_from_mutation: u64,
    /// Aggregate protocol-path counters over every execution.
    pub coverage: PathCoverage,
    /// Distinct signatures hit, with per-signature run counts.
    pub signatures: SignatureMap,
    /// Violating lineages, in discovery order.
    pub violations: Vec<FuzzViolation>,
    /// The fresh-seed baseline, when one was run.
    pub fresh: Option<FreshBaseline>,
    /// Sweep metrics aggregated over the fuzz loop's executions (latency
    /// histograms, critical-path attribution, scheduler handoffs, stage
    /// timers). The fresh baseline is excluded — these describe the fuzz
    /// loop itself.
    pub metrics: SweepMetrics,
    /// Wall-clock duration (fuzz loop plus baseline).
    pub wall: Duration,
}

impl FuzzReport {
    /// Percentage gain in distinct signatures over the fresh baseline
    /// (`None` without a baseline).
    #[must_use]
    pub fn gain_pct(&self) -> Option<f64> {
        self.fresh.as_ref().map(|fresh| {
            let fuzzed = self.signatures.len() as f64;
            let baseline = (fresh.signatures.len() as f64).max(1.0);
            (fuzzed - baseline) / baseline * 100.0
        })
    }

    /// A human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "fuzzed {} executions in {:.2?}: {} initial seeds, {} mutated generation(s), \
             {} distinct path signatures ({} minted by mutation), {} violating lineage(s)\n",
            self.executions,
            self.wall,
            self.initial_seeds,
            self.generations,
            self.signatures.len(),
            self.novel_from_mutation,
            self.violations.len(),
        );
        let _ = writeln!(out, "paths hit: {}", self.coverage.summary());
        if let (Some(fresh), Some(gain)) = (&self.fresh, self.gain_pct()) {
            let _ = writeln!(
                out,
                "fresh-seed baseline over {} executions: {} distinct signatures ({gain:+.1}%)",
                fresh.executions,
                fresh.signatures.len(),
            );
        }
        for violation in &self.violations {
            let _ = writeln!(out, "  lineage {}:", violation.lineage.entry_name());
            for v in &violation.violations {
                let _ = writeln!(out, "    - {v}");
            }
            if let Some(entry) = &violation.corpus {
                let _ = writeln!(
                    out,
                    "    replay: cargo run -p caa-harness --example replay -- --corpus {}",
                    entry.display()
                );
            }
        }
        out.push_str(&self.metrics.summary());
        out
    }
}

/// One frontier entry: a plan whose trace minted a novel signature, kept
/// around as mutation fodder. Energy grows when its children mint further
/// novelty, so productive neighbourhoods get revisited.
#[derive(Debug)]
struct FrontierEntry {
    lineage: Lineage,
    plan: ScenarioPlan,
    energy: u64,
}

struct ChildOutcome {
    signature: u64,
    coverage: PathCoverage,
    /// Present only for violating runs (the trace is recycled otherwise).
    result: Option<SeedResult>,
}

fn effective_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| usize::from(n) * 2)
    } else {
        workers
    }
}

/// Executes `plans` across worker threads and returns outcomes **in input
/// order** — the order in which the caller commits them to frontier and
/// novelty state, which is what makes the loop worker-count-invariant.
fn run_batch(
    plans: Vec<ScenarioPlan>,
    workers: usize,
    check_replay: bool,
    metrics: &Mutex<SweepMetrics>,
) -> Vec<ChildOutcome> {
    let n = plans.len();
    let slots: Vec<Mutex<Option<ChildOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let tasks: Vec<Mutex<Option<ScenarioPlan>>> =
        plans.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..effective_workers(workers).min(n.max(1)) {
            scope.spawn(|| {
                let mut arena = ExecutionArena::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        // Batch drained: fold this worker's metrics into
                        // the loop-wide set (one lock per worker, not per
                        // plan).
                        metrics
                            .lock()
                            .expect("metrics collector")
                            .merge(&arena.take_metrics());
                        return;
                    }
                    let plan = tasks[i]
                        .lock()
                        .expect("task slot")
                        .take()
                        .expect("each task is taken once");
                    let busy = Instant::now();
                    let result = run_plan_checked(plan, check_replay, &mut arena);
                    let coverage = PathCoverage::from_trace(&result.artifacts.trace);
                    let signature = coverage.signature();
                    let result = if result.violations.is_empty() {
                        arena.recycle_trace(result.artifacts.trace);
                        None
                    } else {
                        Some(result)
                    };
                    arena.metrics_recorder().add_wall(
                        "worker_busy_ns",
                        u64::try_from(busy.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                    *slots[i].lock().expect("outcome slot") = Some(ChildOutcome {
                        signature,
                        coverage,
                        result,
                    });
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("outcome slot")
                .expect("every slot filled")
        })
        .collect()
}

/// Derives the mutation seed of global child `index` from the master fuzz
/// seed — a pure function, so any child's mutation replays from its
/// lineage without re-running the loop.
fn derive_mutation_seed(fuzz_seed: u64, index: u64) -> u64 {
    Rng::new(fuzz_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
}

/// Energy-weighted parent pick over the frontier (insertion order fixed,
/// so the draw is deterministic).
fn pick_parent(frontier: &[FrontierEntry], rng: &mut Rng) -> usize {
    let total: u64 = frontier.iter().map(|e| e.energy).sum();
    let mut point = rng.below(total.max(1));
    for (i, entry) in frontier.iter().enumerate() {
        if point < entry.energy {
            return i;
        }
        point -= entry.energy;
    }
    frontier.len() - 1
}

/// The loop's accumulated state, threaded through [`LoopState::commit`]
/// in child-index order — the single place where outcomes touch novelty
/// accounting, which is what keeps the loop worker-count-invariant.
struct LoopState {
    seen: SignatureMap,
    coverage: PathCoverage,
    frontier: Vec<FrontierEntry>,
    violations: Vec<FuzzViolation>,
    executed: u64,
    novel_from_mutation: u64,
}

impl LoopState {
    fn commit(
        &mut self,
        config: &FuzzConfig,
        lineage: Lineage,
        plan: ScenarioPlan,
        outcome: ChildOutcome,
        parent: Option<usize>,
    ) {
        self.executed += 1;
        self.coverage.merge(&outcome.coverage);
        let novel = !self.seen.contains_key(&outcome.signature);
        *self.seen.entry(outcome.signature).or_insert(0) += 1;
        if novel {
            if let Some(p) = parent {
                self.novel_from_mutation += 1;
                self.frontier[p].energy += 2;
            }
            self.frontier.push(FrontierEntry {
                lineage: lineage.clone(),
                plan,
                energy: 3,
            });
        }
        if let Some(result) = outcome.result {
            let corpus = config.corpus_dir.as_ref().and_then(|dir| {
                let entry = dir.join(lineage.entry_name());
                let dump = write_corpus_files(&entry, &config.scenario.to_kv(), &result)
                    .and_then(|()| std::fs::write(entry.join("lineage.txt"), lineage.render()));
                match dump {
                    Ok(()) => Some(entry),
                    Err(e) => {
                        eprintln!(
                            "corpus dump for lineage {} failed: {e}",
                            lineage.entry_name()
                        );
                        None
                    }
                }
            });
            self.violations.push(FuzzViolation {
                lineage,
                violations: result.violations.iter().map(|v| v.to_string()).collect(),
                corpus,
            });
        }
    }
}

/// Runs the coverage-guided loop: generation 0 executes fresh seeds, then
/// every generation mutates energy-weighted frontier parents and promotes
/// children whose traces mint novel [`PathCoverage::signature`]s. Fully
/// deterministic for a fixed config — worker count only changes wall
/// clock (see the module docs).
#[must_use]
pub fn fuzz(config: &FuzzConfig) -> FuzzReport {
    let started = Instant::now();
    let mut state = LoopState {
        seen: SignatureMap::new(),
        coverage: PathCoverage::default(),
        frontier: Vec::new(),
        violations: Vec::new(),
        executed: 0,
        novel_from_mutation: 0,
    };
    let mut child_index = 0u64;
    let metrics: Mutex<SweepMetrics> = Mutex::new(SweepMetrics::default());

    // Generation 0: fresh seeds.
    let initial = config.initial_seeds.min(config.executions).max(1);
    let gen0: Vec<(Lineage, ScenarioPlan)> = (0..initial)
        .map(|i| {
            let seed = config.start_seed + i;
            (
                Lineage::base(seed),
                ScenarioPlan::generate(seed, &config.scenario),
            )
        })
        .collect();
    let outcomes = run_batch(
        gen0.iter().map(|(_, p)| p.clone()).collect(),
        config.workers,
        config.check_replay,
        &metrics,
    );
    for ((lineage, plan), outcome) in gen0.into_iter().zip(outcomes) {
        state.commit(config, lineage, plan, outcome, None);
    }

    // Mutated generations: select, mutate, execute, commit in order.
    let mut selector = Rng::new(config.fuzz_seed);
    let mut generations = 0u64;
    while state.executed < config.executions && !state.frontier.is_empty() {
        generations += 1;
        let batch = config.batch.max(1).min(config.executions - state.executed);
        let mutation_started = Instant::now();
        let mut children: Vec<(usize, Lineage, ScenarioPlan)> = Vec::with_capacity(batch as usize);
        for _ in 0..batch {
            let parent = pick_parent(&state.frontier, &mut selector);
            let mutation_seed = derive_mutation_seed(config.fuzz_seed, child_index);
            child_index += 1;
            let mutated = mutate_plan(&state.frontier[parent].plan, mutation_seed);
            children.push((
                parent,
                state.frontier[parent].lineage.child(mutation_seed),
                mutated.plan,
            ));
        }
        // Parent selection plus mutation is the frontier stage.
        metrics
            .lock()
            .expect("metrics collector")
            .wall_clock
            .add_named(
                "stage_mutation_ns",
                u64::try_from(mutation_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        let outcomes = run_batch(
            children.iter().map(|(_, _, p)| p.clone()).collect(),
            config.workers,
            config.check_replay,
            &metrics,
        );
        for ((parent, lineage, plan), outcome) in children.into_iter().zip(outcomes) {
            state.commit(config, lineage, plan, outcome, Some(parent));
        }
    }

    let fresh = config.compare_fresh.then(|| {
        let report = sweep(&SweepConfig {
            start_seed: config.start_seed,
            seeds: state.executed,
            workers: config.workers,
            scenario: config.scenario.clone(),
            check_replay: false,
            corpus_dir: None,
            shard: None,
        });
        FreshBaseline {
            executions: report.seeds_run,
            signatures: report.signatures,
        }
    });

    FuzzReport {
        scenario: config.scenario.clone(),
        executions: state.executed,
        initial_seeds: initial,
        generations,
        novel_from_mutation: state.novel_from_mutation,
        coverage: state.coverage,
        signatures: state.seen,
        violations: state.violations,
        fresh,
        metrics: metrics.into_inner().expect("metrics collector"),
        wall: started.elapsed(),
    }
}

// ---------------------------------------------------------------------------
// coverage.json: the cross-shard interchange document.
// ---------------------------------------------------------------------------

/// The fuzz-specific section of a [`CoverageDoc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSection {
    /// Mutated generations executed.
    pub generations: u64,
    /// Generation-0 fresh seeds.
    pub initial_seeds: u64,
    /// Novel signatures minted by mutation.
    pub novel_from_mutation: u64,
    /// Executions of the fresh-seed baseline (0 = no baseline ran).
    pub fresh_executions: u64,
    /// The baseline's signature map — persisted in full, so shard merges
    /// recompute the distinct-signature union exactly instead of summing
    /// per-shard distinct counts (which would overcount shared paths).
    pub fresh_signatures: SignatureMap,
}

/// A `coverage.json` document: what one sweep or fuzz run (or a merged
/// union of shards) covered. Rendering is canonical — sorted keys,
/// integers only, violations sorted — so equal documents are
/// byte-identical, and merging shard documents reproduces the unsharded
/// document byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageDoc {
    /// `"sweep"` or `"fuzz"` — merging mixes modes into `"mixed"`.
    pub mode: String,
    /// Executions covered.
    pub executions: u64,
    /// Aggregate protocol-path counters.
    pub coverage: PathCoverage,
    /// Distinct signatures with run counts.
    pub signatures: SignatureMap,
    /// Rendered violations (sorted on render).
    pub violations: Vec<String>,
    /// Fuzz accounting, when the document came from a fuzz run.
    pub fuzz: Option<FuzzSection>,
}

/// The coverage counters by (alphabetical) wire name.
fn counter_pairs(coverage: &PathCoverage) -> [(&'static str, u64); 12] {
    [
        ("aborts", coverage.aborts),
        ("crash_stops", coverage.crash_stops),
        ("exit_races", coverage.exit_races),
        ("exit_timeouts", coverage.exit_timeouts),
        ("failure_cascades", coverage.failure_cascades),
        ("failure_outcomes", coverage.failure_outcomes),
        ("object_acquisitions", coverage.object_acquisitions),
        ("recoveries", coverage.recoveries),
        ("rejoins", coverage.rejoins),
        ("resolution_timeouts", coverage.resolution_timeouts),
        ("undo_outcomes", coverage.undo_outcomes),
        ("view_changes", coverage.view_changes),
    ]
}

fn set_counter(coverage: &mut PathCoverage, name: &str, value: u64) -> bool {
    match name {
        "aborts" => coverage.aborts = value,
        "crash_stops" => coverage.crash_stops = value,
        "exit_races" => coverage.exit_races = value,
        "exit_timeouts" => coverage.exit_timeouts = value,
        "failure_cascades" => coverage.failure_cascades = value,
        "failure_outcomes" => coverage.failure_outcomes = value,
        "object_acquisitions" => coverage.object_acquisitions = value,
        "recoveries" => coverage.recoveries = value,
        "rejoins" => coverage.rejoins = value,
        "resolution_timeouts" => coverage.resolution_timeouts = value,
        "undo_outcomes" => coverage.undo_outcomes = value,
        "view_changes" => coverage.view_changes = value,
        _ => return false,
    }
    true
}

fn write_signature_map(out: &mut String, map: &SignatureMap, indent: &str) {
    if map.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    for (i, (signature, count)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "{indent}  \"{signature:#013x}\": {count}");
    }
    let _ = write!(out, "\n{indent}}}");
}

fn parse_signature_map(value: &Value) -> Result<SignatureMap, String> {
    let mut map = SignatureMap::new();
    for (key, count) in value.as_obj().ok_or("signatures must be an object")? {
        let raw = key.strip_prefix("0x").unwrap_or(key);
        let signature =
            u64::from_str_radix(raw, 16).map_err(|e| format!("bad signature key {key:?}: {e}"))?;
        let count = count
            .as_u64()
            .ok_or_else(|| format!("bad signature count for {key:?}"))?;
        *map.entry(signature).or_insert(0) += count;
    }
    Ok(map)
}

impl CoverageDoc {
    /// The coverage document of a plain sweep.
    #[must_use]
    pub fn from_sweep(report: &SweepReport) -> CoverageDoc {
        let mut violations = Vec::new();
        for failure in &report.failures {
            for v in &failure.violations {
                violations.push(format!("seed {}: {v}", failure.seed));
            }
        }
        CoverageDoc {
            mode: "sweep".into(),
            executions: report.executions_run,
            coverage: report.coverage,
            signatures: report.signatures.clone(),
            violations,
            fuzz: None,
        }
    }

    /// The coverage document of a fuzz run.
    #[must_use]
    pub fn from_fuzz(report: &FuzzReport) -> CoverageDoc {
        let mut violations = Vec::new();
        for find in &report.violations {
            for v in &find.violations {
                violations.push(format!("lineage {}: {v}", find.lineage.entry_name()));
            }
        }
        let (fresh_executions, fresh_signatures) = match &report.fresh {
            Some(fresh) => (fresh.executions, fresh.signatures.clone()),
            None => (0, SignatureMap::new()),
        };
        CoverageDoc {
            mode: "fuzz".into(),
            executions: report.executions,
            coverage: report.coverage,
            signatures: report.signatures.clone(),
            violations,
            fuzz: Some(FuzzSection {
                generations: report.generations,
                initial_seeds: report.initial_seeds,
                novel_from_mutation: report.novel_from_mutation,
                fresh_executions,
                fresh_signatures,
            }),
        }
    }

    /// Serializes the canonical document (see the type docs).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{COVERAGE_SCHEMA}\",");
        out.push_str("  \"mode\": ");
        json::write_str(&mut out, &self.mode);
        let _ = writeln!(out, ",");
        let _ = writeln!(out, "  \"executions\": {},", self.executions);
        let _ = writeln!(out, "  \"counters\": {{");
        let counters = counter_pairs(&self.coverage);
        for (i, (name, value)) in counters.iter().enumerate() {
            let comma = if i + 1 < counters.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{name}\": {value}{comma}");
        }
        let _ = writeln!(out, "  }},");
        out.push_str("  \"signatures\": ");
        write_signature_map(&mut out, &self.signatures, "  ");
        let _ = writeln!(out, ",");
        let mut violations = self.violations.clone();
        violations.sort();
        if violations.is_empty() {
            let _ = writeln!(out, "  \"violations\": [],");
        } else {
            let _ = writeln!(out, "  \"violations\": [");
            for (i, v) in violations.iter().enumerate() {
                out.push_str("    ");
                json::write_str(&mut out, v);
                let _ = writeln!(out, "{}", if i + 1 < violations.len() { "," } else { "" });
            }
            let _ = writeln!(out, "  ],");
        }
        match &self.fuzz {
            None => {
                let _ = writeln!(out, "  \"fuzz\": null");
            }
            Some(fuzz) => {
                let _ = writeln!(out, "  \"fuzz\": {{");
                let _ = writeln!(out, "    \"generations\": {},", fuzz.generations);
                let _ = writeln!(out, "    \"initial_seeds\": {},", fuzz.initial_seeds);
                let _ = writeln!(
                    out,
                    "    \"novel_from_mutation\": {},",
                    fuzz.novel_from_mutation
                );
                let _ = writeln!(out, "    \"fresh_executions\": {},", fuzz.fresh_executions);
                out.push_str("    \"fresh_signatures\": ");
                write_signature_map(&mut out, &fuzz.fresh_signatures, "    ");
                let _ = writeln!(out);
                let _ = writeln!(out, "  }}");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a document written by [`CoverageDoc::render`].
    ///
    /// # Errors
    ///
    /// A human-readable message when the text is not a coverage document.
    pub fn parse(text: &str) -> Result<CoverageDoc, String> {
        let doc = json::parse(text)?;
        match doc.get("schema") {
            Some(Value::Str(s)) if s == COVERAGE_SCHEMA => {}
            other => return Err(format!("unsupported coverage schema: {other:?}")),
        }
        let mode = match doc.get("mode") {
            Some(Value::Str(s)) => s.clone(),
            other => return Err(format!("bad \"mode\": {other:?}")),
        };
        let executions = doc
            .get("executions")
            .and_then(Value::as_u64)
            .ok_or("missing \"executions\"")?;
        let mut coverage = PathCoverage::default();
        for (name, value) in doc
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or("missing \"counters\"")?
        {
            let value = value
                .as_u64()
                .ok_or_else(|| format!("bad counter {name:?}"))?;
            if !set_counter(&mut coverage, name, value) {
                return Err(format!("unknown counter {name:?}"));
            }
        }
        let signatures =
            parse_signature_map(doc.get("signatures").ok_or("missing \"signatures\"")?)?;
        let mut violations = Vec::new();
        for v in doc
            .get("violations")
            .and_then(Value::as_arr)
            .ok_or("missing \"violations\"")?
        {
            match v {
                Value::Str(s) => violations.push(s.clone()),
                other => return Err(format!("bad violation entry: {other:?}")),
            }
        }
        let fuzz = match doc.get("fuzz") {
            None | Some(Value::Null) => None,
            Some(section) => {
                let field = |name: &str| {
                    section
                        .get(name)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("missing fuzz field {name:?}"))
                };
                Some(FuzzSection {
                    generations: field("generations")?,
                    initial_seeds: field("initial_seeds")?,
                    novel_from_mutation: field("novel_from_mutation")?,
                    fresh_executions: field("fresh_executions")?,
                    fresh_signatures: parse_signature_map(
                        section
                            .get("fresh_signatures")
                            .ok_or("missing fuzz field \"fresh_signatures\"")?,
                    )?,
                })
            }
        };
        Ok(CoverageDoc {
            mode,
            executions,
            coverage,
            signatures,
            violations,
            fuzz,
        })
    }

    /// Unions another document into this one: executions add, counters
    /// sum, signature maps merge per key, violations concatenate (render
    /// sorts them), fuzz sections sum field-wise. Merging a sweep
    /// document into a fuzz one (or vice versa) yields mode `"mixed"`.
    pub fn merge(&mut self, other: &CoverageDoc) {
        if self.mode != other.mode {
            self.mode = "mixed".into();
        }
        self.executions += other.executions;
        self.coverage.merge(&other.coverage);
        merge_signatures(&mut self.signatures, &other.signatures);
        self.violations.extend(other.violations.iter().cloned());
        self.fuzz = match (self.fuzz.take(), &other.fuzz) {
            (None, None) => None,
            (Some(section), None) => Some(section),
            (None, Some(section)) => Some(section.clone()),
            (Some(mut section), Some(incoming)) => {
                section.generations += incoming.generations;
                section.initial_seeds += incoming.initial_seeds;
                section.novel_from_mutation += incoming.novel_from_mutation;
                section.fresh_executions += incoming.fresh_executions;
                merge_signatures(&mut section.fresh_signatures, &incoming.fresh_signatures);
                Some(section)
            }
        };
    }

    /// The human triage document: saturated paths (highest-hit counters),
    /// starved paths (never hit), the fuzz-vs-fresh signature gain, and
    /// every violation with its replay handle. This is what the nightly
    /// CI job uploads.
    #[must_use]
    pub fn triage(&self) -> String {
        let mut out = String::from("# Coverage triage\n\n");
        let _ = writeln!(out, "mode: {}", self.mode);
        let _ = writeln!(out, "executions: {}", self.executions);
        let _ = writeln!(out, "distinct path signatures: {}", self.signatures.len());
        let _ = writeln!(out, "violations: {}", self.violations.len());
        if let Some(fuzz) = &self.fuzz {
            out.push_str("\n## Fuzz vs fresh-seed baseline\n\n");
            let _ = writeln!(
                out,
                "fuzz: {} distinct signatures over {} executions \
                 ({} minted by mutation, {} generations from {} initial seeds)",
                self.signatures.len(),
                self.executions,
                fuzz.novel_from_mutation,
                fuzz.generations,
                fuzz.initial_seeds,
            );
            if fuzz.fresh_executions == 0 {
                out.push_str("fresh baseline: not run\n");
            } else {
                let fuzzed = self.signatures.len() as f64;
                let baseline = (fuzz.fresh_signatures.len() as f64).max(1.0);
                let gain = (fuzzed - baseline) / baseline * 100.0;
                let _ = writeln!(
                    out,
                    "fresh baseline: {} distinct signatures over {} executions",
                    fuzz.fresh_signatures.len(),
                    fuzz.fresh_executions,
                );
                let _ = writeln!(out, "signature gain over fresh seeds: {gain:+.1}%");
            }
        }
        let mut hit: Vec<(&'static str, u64)> = counter_pairs(&self.coverage)
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .collect();
        hit.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        out.push_str("\n## Saturated paths (highest-hit counters)\n\n");
        if hit.is_empty() {
            out.push_str("  (none hit at all)\n");
        }
        for (name, value) in &hit {
            let _ = writeln!(out, "  {name}: {value}");
        }
        out.push_str("\n## Starved paths (never hit)\n\n");
        let starved: Vec<&'static str> = counter_pairs(&self.coverage)
            .into_iter()
            .filter(|&(_, v)| v == 0)
            .map(|(name, _)| name)
            .collect();
        if starved.is_empty() {
            out.push_str("  (none — every tracked path was exercised)\n");
        }
        for name in &starved {
            let _ = writeln!(out, "  {name}");
        }
        out.push_str("\n## Violations\n\n");
        if self.violations.is_empty() {
            out.push_str("  (none)\n");
        } else {
            let mut violations = self.violations.clone();
            violations.sort();
            for v in &violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_a_pure_function_of_plan_and_seed() {
        let plan = ScenarioPlan::generate(11, &ScenarioConfig::default());
        for mutation_seed in 0..50 {
            let a = mutate_plan(&plan, mutation_seed);
            let b = mutate_plan(&plan, mutation_seed);
            assert_eq!(a.mutator, b.mutator);
            assert_eq!(format!("{:?}", a.plan), format!("{:?}", b.plan));
        }
    }

    #[test]
    fn mutations_actually_change_plans() {
        let plan = ScenarioPlan::generate(11, &ScenarioConfig::default());
        let base = format!("{plan:?}");
        let changed = (0..50)
            .filter(|&s| format!("{:?}", mutate_plan(&plan, s).plan) != base)
            .count();
        assert!(
            changed >= 45,
            "only {changed}/50 mutations changed the plan"
        );
    }

    #[test]
    fn lineage_round_trips_and_materializes_deterministically() {
        let lineage = Lineage {
            seed: 42,
            mutations: vec![7, 0xdead_beef, u64::MAX],
        };
        assert_eq!(Lineage::parse(&lineage.render()), Ok(lineage.clone()));
        assert!(Lineage::parse("mutate 0x1").is_err(), "seed line required");
        let cfg = ScenarioConfig::default();
        let a = lineage.materialize(&cfg);
        let b = lineage.materialize(&cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(validate_plan(&a).is_ok());
        assert_eq!(a.seed, 42, "lineage keeps the base seed");
        assert!(lineage.entry_name().starts_with("42-m"));
        assert_eq!(Lineage::base(9).entry_name(), "9");
    }

    #[test]
    fn fuzz_loop_is_deterministic_and_finds_novelty() {
        let config = FuzzConfig {
            executions: 96,
            initial_seeds: 32,
            batch: 16,
            workers: 2,
            ..FuzzConfig::default()
        };
        let a = fuzz(&config);
        let b = fuzz(&config);
        assert_eq!(a.executions, 96);
        assert_eq!(a.signatures, b.signatures);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.novel_from_mutation, b.novel_from_mutation);
        assert!(a.generations > 0);
        assert!(
            a.novel_from_mutation > 0,
            "mutation found no novel signature in 64 children:\n{}",
            a.summary()
        );
    }

    #[test]
    fn coverage_doc_round_trips_and_merges() {
        let report = fuzz(&FuzzConfig {
            executions: 24,
            initial_seeds: 16,
            batch: 8,
            workers: 2,
            compare_fresh: true,
            ..FuzzConfig::default()
        });
        let doc = CoverageDoc::from_fuzz(&report);
        let text = doc.render();
        let parsed = CoverageDoc::parse(&text).expect("parse rendered doc");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.render(), text, "render must be canonical");
        let mut merged = doc.clone();
        merged.merge(&doc);
        assert_eq!(merged.executions, 2 * doc.executions);
        assert_eq!(merged.mode, "fuzz");
        let triage = merged.triage();
        assert!(triage.contains("## Saturated paths"), "{triage}");
        assert!(
            triage.contains("signature gain over fresh seeds"),
            "{triage}"
        );
    }

    #[test]
    fn mutated_violations_persist_replayable_corpus_entries() {
        // Force a violation without needing a real protocol bug: fuzz a
        // tiny budget, then fabricate the corpus write path directly.
        let dir = std::env::temp_dir().join(format!("caa-fuzz-corpus-{}", std::process::id()));
        let lineage = Lineage::base(11).child(derive_mutation_seed(1, 0));
        let cfg = ScenarioConfig::default();
        let plan = lineage.materialize(&cfg);
        let mut arena = ExecutionArena::new();
        let result = run_plan_checked(plan, false, &mut arena);
        let entry = dir.join(lineage.entry_name());
        write_corpus_files(&entry, &cfg.to_kv(), &result).expect("corpus files");
        std::fs::write(entry.join("lineage.txt"), lineage.render()).expect("lineage");

        let (loaded, loaded_cfg) = load_corpus_plan(&entry).expect("load corpus entry");
        assert_eq!(format!("{loaded_cfg:?}"), format!("{cfg:?}"));
        let recorded = std::fs::read_to_string(entry.join("trace.txt")).unwrap();
        let replay = run_plan_checked(loaded, false, &mut arena);
        assert_eq!(
            replay.artifacts.trace.render(),
            recorded,
            "lineage replay must reproduce the recorded trace byte-exactly"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
