//! Deterministic random-number generation for scenario construction.
//!
//! Every randomized choice the harness makes flows from one [`Rng`] seeded
//! by the scenario seed, so a seed fully determines the scenario — the
//! foundation of the deterministic-replay oracle and of one-command seed
//! replay.

/// SplitMix64: a tiny, high-quality, fully deterministic generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_bounded() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let v = r.range(2, 5);
            assert!((2..=5).contains(&v));
            let f = r.f64_range(0.25, 0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }
}
