//! The scenario model: from a single `u64` seed to a fully determined
//! scenario plan.
//!
//! A [`ScenarioPlan`] fixes everything about one simulated run — the number
//! of participating threads, the latency/resolution/handler timing
//! parameters, a tree of CA actions (nesting structure, role groups,
//! exception graphs, handler verdicts, abortion behaviour), the workload of
//! every role (computation, messaging, concurrent raises) and the network
//! fault schedule. Two calls with the same seed yield the identical plan;
//! the executor ([`crate::exec`]) then replays it deterministically on the
//! virtual-time network.
//!
//! ## Shape of generated scenarios
//!
//! Every top-level action is entered by **all** threads at the same virtual
//! time, and each action consists of: zero or more aligned *compute* phases
//! (equal virtual duration for every member, with optional role-to-role
//! messages), then optionally one *nested* phase (disjoint sub-groups each
//! entering a child action concurrently), then optionally one *raise* phase
//! (a subset of members raising concurrently within a short window). This
//! alignment discipline keeps entry skew within one message latency, which
//! is what makes the Lemma 1 time-bound oracle sound (see
//! [`crate::oracle`]). Within that shape the space is unbounded: nesting
//! depth, sibling concurrency, raiser sets, verdicts (forward recovery, µ,
//! ƒ, interface signals), abortion-handler exceptions and fault schedules
//! all vary with the seed.

use caa_core::ids::PartitionId;
use caa_simnet::{FaultPlan, FaultSpec};

use crate::rng::Rng;

/// Knobs bounding the scenario space explored by seed generation.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Minimum number of participating threads (≥ 1).
    pub min_threads: u32,
    /// Maximum number of participating threads.
    pub max_threads: u32,
    /// Maximum nesting depth below the top-level actions (0 = flat).
    pub max_depth: usize,
    /// Maximum number of sequential top-level actions.
    pub max_top_actions: u32,
    /// Whether to generate network fault schedules (message loss and
    /// corruption of signalling/application traffic, signalling crashes).
    pub allow_faults: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            min_threads: 2,
            max_threads: 5,
            max_depth: 2,
            max_top_actions: 2,
            allow_faults: true,
        }
    }
}

/// How a role's handler concludes for any resolved exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictChoice {
    /// Forward recovery succeeds.
    Recovered,
    /// Request the undo round (µ).
    Undo,
    /// Unrecoverable: signal ƒ.
    Fail,
    /// Signal an interface exception to the enclosing context.
    Signal,
}

/// One network fault rule of the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultChoice {
    /// Message class affected (`"toBeSignalled"` or `"App"` — classes whose
    /// loss the protocols tolerate by design; resolution-critical classes
    /// are excluded per Assumption 1).
    pub class: &'static str,
    /// Lose the message (true) or corrupt it in transit (false).
    pub lose: bool,
    /// Restrict to messages sent by this thread, if set. Generated plans
    /// always pin the sender: a rule matching several senders consumes its
    /// skip/count budget in arrival order, and same-instant sends from
    /// different partitions reach the fault injector in nondeterministic
    /// wall-clock order — a pinned sender's messages arrive in its own
    /// (deterministic) program order.
    pub src: Option<u32>,
    /// Matching messages to let through before the fault starts.
    pub skip: u64,
    /// Matching messages affected (`u64::MAX` models a signalling crash:
    /// every announcement from `src` is lost from `skip` onward).
    pub count: u64,
}

/// An aligned phase of one action.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Every member spends exactly `dur_ns` of virtual time: `sends` fire
    /// (instantly) at phase start, `listeners` drain their app inbox for
    /// the whole phase, everyone else computes.
    Compute {
        /// Phase length in virtual nanoseconds.
        dur_ns: u64,
        /// `(from, to)` application messages sent at phase start.
        sends: Vec<(u32, u32)>,
        /// Threads that listen instead of computing.
        listeners: Vec<u32>,
    },
    /// Disjoint sub-groups of the action's members enter child actions
    /// concurrently; members outside every child group proceed directly.
    Nested {
        /// The concurrently entered child actions.
        children: Vec<ActionPlan>,
    },
}

/// The optional final raise phase of an action.
#[derive(Debug, Clone)]
pub struct RaisePhase {
    /// `(thread, delay_ns)`: each raiser works `delay_ns` into the phase
    /// and then raises its own exception, producing genuinely concurrent
    /// raises when delays are close.
    pub raisers: Vec<(u32, u64)>,
}

/// One CA action of the scenario (a node of the action tree).
#[derive(Debug, Clone)]
pub struct ActionPlan {
    /// Unique name (`a0`, `a0.1`, …) encoding the tree path.
    pub name: String,
    /// Member threads (each playing role `r<thread>`).
    pub group: Vec<u32>,
    /// Nesting depth: top-level actions are 0.
    pub depth: usize,
    /// The aligned phases, in order.
    pub phases: Vec<Phase>,
    /// The optional final raise phase.
    pub raise: Option<RaisePhase>,
    /// Per-member handler verdicts.
    pub verdicts: Vec<(u32, VerdictChoice)>,
    /// Members whose abortion handler raises an `Eab` exception (§3.3.1).
    pub abort_raises_eab: Vec<u32>,
}

impl ActionPlan {
    /// The exception `thread` raises in this action.
    #[must_use]
    pub fn raise_exception(&self, thread: u32) -> String {
        format!("{}_e{thread}", self.name)
    }

    /// The interface exception a `Signal` verdict reports from this action.
    #[must_use]
    pub fn signal_exception(&self) -> String {
        format!("{}_sig", self.name)
    }

    /// The `Eab` exception `thread`'s abortion handler raises.
    #[must_use]
    pub fn eab_exception(&self, thread: u32) -> String {
        format!("{}_eab{thread}", self.name)
    }

    /// Depth of the deepest action in this subtree, relative to this node.
    #[must_use]
    pub fn subtree_depth(&self) -> usize {
        self.phases
            .iter()
            .filter_map(|p| match p {
                Phase::Nested { children } => children.iter().map(|c| 1 + c.subtree_depth()).max(),
                Phase::Compute { .. } => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// This node and every descendant, preorder.
    pub fn walk(&self) -> Vec<&ActionPlan> {
        let mut out = vec![self];
        for phase in &self.phases {
            if let Phase::Nested { children } = phase {
                for child in children {
                    out.extend(child.walk());
                }
            }
        }
        out
    }
}

/// A fully determined scenario: everything needed to execute and to check
/// one simulated run.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    /// The generating seed.
    pub seed: u64,
    /// Number of participating threads.
    pub threads: u32,
    /// The paper's `Tmmax` (seconds): upper bound of the uniform latency.
    pub t_mmax: f64,
    /// The paper's `Treso` (seconds): cost per resolution invocation.
    pub t_reso: f64,
    /// Handler computation `∆` (seconds) — identical for every role.
    pub delta: f64,
    /// Abortion-handler computation `Tabort` (seconds).
    pub t_abort: f64,
    /// Signalling timeout (seconds); a missing announcement is then ƒ.
    pub signal_timeout: f64,
    /// The network fault schedule.
    pub faults: Vec<FaultChoice>,
    /// Sequential top-level actions, each entered by every thread.
    pub top: Vec<ActionPlan>,
}

impl ScenarioPlan {
    /// Generates the plan determined by `seed` under `config`.
    #[must_use]
    pub fn generate(seed: u64, config: &ScenarioConfig) -> ScenarioPlan {
        let mut rng = Rng::new(seed);
        let threads = rng.range(
            u64::from(config.min_threads.max(1)),
            u64::from(config.max_threads),
        ) as u32;
        let all: Vec<u32> = (0..threads).collect();
        let t_mmax = rng.f64_range(0.05, 1.0);
        let t_reso = rng.f64_range(0.0, 0.3);
        let delta = rng.f64_range(0.0, 0.3);
        let t_abort = rng.f64_range(0.0, 0.3);

        let top_n = rng.range(1, u64::from(config.max_top_actions.max(1)));
        let mut top = Vec::new();
        for i in 0..top_n {
            top.push(gen_action(
                &mut rng,
                format!("a{i}"),
                all.clone(),
                0,
                config.max_depth,
            ));
        }

        let mut faults = Vec::new();
        if config.allow_faults {
            if rng.chance(0.5) {
                for _ in 0..rng.range(1, 2) {
                    faults.push(FaultChoice {
                        class: if rng.chance(0.5) {
                            "toBeSignalled"
                        } else {
                            "App"
                        },
                        lose: rng.chance(0.5),
                        src: Some(rng.below(u64::from(threads)) as u32),
                        skip: rng.below(30),
                        count: rng.range(1, 2),
                    });
                }
            }
            if rng.chance(0.15) {
                // A signalling crash: from some point on, none of this
                // thread's announcements arrive; peers time out and treat
                // the silence as ƒ (§3.4 crash extension).
                faults.push(FaultChoice {
                    class: "toBeSignalled",
                    lose: true,
                    src: Some(rng.below(u64::from(threads)) as u32),
                    skip: rng.below(10),
                    count: u64::MAX,
                });
            }
        }

        ScenarioPlan {
            seed,
            threads,
            t_mmax,
            t_reso,
            delta,
            t_abort,
            signal_timeout: 60.0,
            faults,
            top,
        }
    }

    /// Depth of the deepest generated action (`nmax` of Lemma 1).
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.top
            .iter()
            .map(ActionPlan::subtree_depth)
            .max()
            .unwrap_or(0)
    }

    /// Every action of the plan, preorder across the top-level sequence.
    pub fn actions(&self) -> Vec<&ActionPlan> {
        self.top.iter().flat_map(ActionPlan::walk).collect()
    }

    /// Materialises the plan's fault schedule as a network [`FaultPlan`].
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            let mut spec = match f.src {
                Some(t) => FaultSpec::from(PartitionId::new(t)),
                None => FaultSpec::any(),
            };
            spec = spec.class(f.class).skip(f.skip).count(f.count);
            plan = if f.lose {
                plan.lose(spec)
            } else {
                plan.corrupt(spec)
            };
        }
        plan
    }

    /// One-paragraph human summary (for violation reports).
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "seed {}: {} threads, {} top actions, depth {}, Tmmax {:.3}s, \
             Treso {:.3}s, ∆ {:.3}s, Tabort {:.3}s, {} fault rule(s)",
            self.seed,
            self.threads,
            self.top.len(),
            self.max_depth(),
            self.t_mmax,
            self.t_reso,
            self.delta,
            self.t_abort,
            self.faults.len(),
        )
    }
}

fn gen_verdict(rng: &mut Rng) -> VerdictChoice {
    let roll = rng.unit_f64();
    if roll < 0.70 {
        VerdictChoice::Recovered
    } else if roll < 0.85 {
        VerdictChoice::Undo
    } else if roll < 0.95 {
        VerdictChoice::Signal
    } else {
        VerdictChoice::Fail
    }
}

fn gen_action(
    rng: &mut Rng,
    name: String,
    group: Vec<u32>,
    depth: usize,
    max_depth: usize,
) -> ActionPlan {
    let mut phases = Vec::new();

    // Aligned compute phases with optional messaging.
    for _ in 0..rng.range(0, 2) {
        let dur_ns = (rng.f64_range(0.02, 0.4) * 1e9) as u64;
        let mut sends = Vec::new();
        let mut listeners = Vec::new();
        if group.len() >= 2 {
            for &t in &group {
                if rng.chance(0.35) {
                    let peers: Vec<u32> = group.iter().copied().filter(|&p| p != t).collect();
                    let to = peers[rng.below(peers.len() as u64) as usize];
                    sends.push((t, to));
                }
                if rng.chance(0.3) {
                    listeners.push(t);
                }
            }
        }
        phases.push(Phase::Compute {
            dur_ns,
            sends,
            listeners,
        });
    }

    // Optional nested phase: disjoint sub-groups entered concurrently.
    if depth < max_depth && !group.is_empty() && rng.chance(0.6) {
        let mut pool = group.clone();
        // Deterministic shuffle.
        for i in (1..pool.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            pool.swap(i, j);
        }
        let n_children = if pool.len() >= 3 && rng.chance(0.4) {
            2
        } else {
            1
        };
        let mut children = Vec::new();
        for c in 0..n_children {
            if pool.is_empty() {
                break;
            }
            let take = rng.range(1, pool.len() as u64) as usize;
            let mut sub: Vec<u32> = pool.drain(..take).collect();
            sub.sort_unstable();
            children.push(gen_action(
                rng,
                format!("{name}.{c}"),
                sub,
                depth + 1,
                max_depth,
            ));
        }
        phases.push(Phase::Nested { children });
    }

    // Optional final raise phase: concurrent raises within a short window.
    let raise = if rng.chance(if depth == 0 { 0.75 } else { 0.5 }) {
        let mut raisers: Vec<(u32, u64)> = Vec::new();
        for &t in &group {
            if rng.chance(0.45) {
                raisers.push((t, rng.below(200_000_000)));
            }
        }
        (!raisers.is_empty()).then_some(RaisePhase { raisers })
    } else {
        None
    };

    let verdicts = group.iter().map(|&t| (t, gen_verdict(rng))).collect();
    let abort_raises_eab = if depth > 0 {
        group.iter().copied().filter(|_| rng.chance(0.5)).collect()
    } else {
        Vec::new()
    };

    ActionPlan {
        name,
        group,
        depth,
        phases,
        raise,
        verdicts,
        abort_raises_eab,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = ScenarioConfig::default();
        let a = ScenarioPlan::generate(42, &cfg);
        let b = ScenarioPlan::generate(42, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn different_seeds_explore_different_plans() {
        let cfg = ScenarioConfig::default();
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..64 {
            distinct.insert(format!("{:?}", ScenarioPlan::generate(seed, &cfg)));
        }
        assert!(
            distinct.len() > 60,
            "only {} distinct plans",
            distinct.len()
        );
    }

    #[test]
    fn structure_respects_config_bounds() {
        let cfg = ScenarioConfig {
            min_threads: 2,
            max_threads: 4,
            max_depth: 2,
            max_top_actions: 2,
            allow_faults: true,
        };
        for seed in 0..200 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            assert!((2..=4).contains(&plan.threads), "seed {seed}");
            assert!(plan.max_depth() <= 2, "seed {seed}");
            assert!(plan.top.len() <= 2, "seed {seed}");
            for action in plan.actions() {
                assert!(!action.group.is_empty());
                // Children partition a subset of the parent group.
                for phase in &action.phases {
                    if let Phase::Nested { children } = phase {
                        let mut seen = std::collections::HashSet::new();
                        for child in children {
                            for &t in &child.group {
                                assert!(action.group.contains(&t));
                                assert!(seen.insert(t), "overlapping child groups");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn seeds_reach_interesting_features() {
        let cfg = ScenarioConfig::default();
        let (mut nested, mut multi_raise, mut faults, mut crash) = (0, 0, 0, 0);
        for seed in 0..300 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            if plan.max_depth() > 0 {
                nested += 1;
            }
            if plan
                .actions()
                .iter()
                .any(|a| a.raise.as_ref().is_some_and(|r| r.raisers.len() >= 2))
            {
                multi_raise += 1;
            }
            if !plan.faults.is_empty() {
                faults += 1;
            }
            if plan.faults.iter().any(|f| f.count == u64::MAX) {
                crash += 1;
            }
        }
        assert!(nested > 100, "nesting too rare: {nested}/300");
        assert!(
            multi_raise > 60,
            "concurrent raises too rare: {multi_raise}/300"
        );
        assert!(faults > 100, "faults too rare: {faults}/300");
        assert!(crash > 10, "crashes too rare: {crash}/300");
    }
}
