//! The scenario model: from a single `u64` seed to a fully determined
//! scenario plan.
//!
//! A [`ScenarioPlan`] fixes everything about one simulated run — the number
//! of participating threads, the latency/resolution/handler timing
//! parameters, a tree of CA actions (nesting structure, role groups,
//! exception graphs, handler verdicts, abortion behaviour), the workload of
//! every role (computation, messaging, shared-object traffic, concurrent
//! raises), the network fault schedule, and optionally one crash-stop
//! participant. Two calls with the same seed yield the identical plan; the
//! executor ([`crate::exec`]) then replays it deterministically on the
//! virtual-time network.
//!
//! ## Shape of generated scenarios
//!
//! Every top-level action is entered by **all** threads at the same virtual
//! time, and each action consists of: zero or more aligned *compute* phases
//! (equal virtual duration for every member, with optional role-to-role
//! messages and shared-object operations at fixed offsets), then optionally
//! one *nested* phase (disjoint sub-groups each entering a child action
//! concurrently), then optionally one *raise* phase (a subset of members
//! raising concurrently within a short window). This alignment discipline
//! keeps entry skew within one message latency, which is what makes the
//! Lemma 1 time-bound oracle sound (see [`crate::oracle`]). Within that
//! shape the space is unbounded: nesting depth, sibling concurrency,
//! raiser sets, verdicts (forward recovery, µ, ƒ, interface signals),
//! abortion-handler exceptions, object contention and fault schedules all
//! vary with the seed.
//!
//! ## Shared-object workloads
//!
//! Each action node uses **at most one** shared object, and all of a
//! plan's objects live at **one seed-chosen nesting depth**. This
//! discipline provably excludes wait-for cycles. A node holds at most one
//! object, and same-depth competitors have disjoint concerns (top-level
//! actions are sequential, nested siblings have disjoint groups), so a
//! holder's completion never depends on a same-depth waiter. The
//! single-depth restriction closes the subtler loops the exploratory
//! sweeps of this scheme actually found: the §3.3.2 *retain-till-entry*
//! rule means a recovery waits for a late member that cannot be
//! interrupted while it blocks on an object at a **shallower** level —
//! with objects at two depths, such a recovery edge can close a cycle
//! through a sibling subtree (and with an *inherited* ancestor object it
//! deadlocks even directly: the late member waits on the very sub-layer
//! the nested action holds while its recovery waits for that member).
//! With one object depth per plan, a late member's pre-entry work is
//! object-free, so it always arrives. Nested transaction layering is
//! still exercised: every access opens layers for the requester's whole
//! action chain on the touched object.
//!
//! Object waits stretch compute phases by the contention they encounter,
//! so plans with object traffic skip the Lemma 1 bound (its entry-skew
//! premise no longer holds); every other oracle, including byte-exact
//! replay, still applies.
//!
//! ## Crash-stop participants
//!
//! A plan may designate threads to **crash-stop** partway into *any*
//! top-level action — including the first of several, and including
//! *several threads* in one plan (at most one crash per thread). Each
//! crashing thread runs its real workload (messages, object operations,
//! raises included) with a scheduled crash instant
//! ([`Ctx::schedule_crash`](caa_runtime::Ctx::schedule_crash)): it dies at
//! the first poll point at or after the instant, wherever the protocol
//! then has it. Nothing is stripped from the crash action's subtree:
//! raises inside it (and in every later action, which the dead thread
//! never enters) are resolved by the membership extension — suspicion is
//! round-agnostic, so whichever bounded wait the silence hits (the
//! resolution collection, the §3.4 signalling gather once the view has
//! already shrunk, or the exit-vote wait) presumes the silent peer
//! crashed, removes it from the view one epoch per suspicion round, and
//! the survivors conclude over the shrunken view. Quiet actions (no
//! raise) conclude through the exit-round suspicion. Historically the
//! crash action had to be flattened to compute-only phases because the
//! resolution collection loop had no crash extension; the
//! `resolution_timeout` lifted that restriction.
//!
//! A crash may additionally schedule a **rejoin**
//! ([`CrashChoice::rejoin_delay_ns`]): the dead thread stays down for the
//! given delay, then restarts and asks the survivors to readmit it
//! ([`Ctx::rejoin`](caa_runtime::Ctx::rejoin)). If a survivor still holds
//! the crash action open, the restart re-enters at the grant's epoch,
//! votes in the current exit round and continues into the remaining top
//! actions; if the group already concluded (or evicted it and moved on
//! past the join window), the restart gives up cleanly and the thread
//! stays down — both outcomes are deterministic functions of the plan.

use caa_core::ids::PartitionId;
use caa_simnet::{FaultPlan, FaultSpec};

use crate::rng::Rng;

/// Knobs bounding the scenario space explored by seed generation.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Minimum number of participating threads (≥ 1).
    pub min_threads: u32,
    /// Maximum number of participating threads.
    pub max_threads: u32,
    /// Maximum nesting depth below the top-level actions (0 = flat).
    pub max_depth: usize,
    /// Maximum number of sequential top-level actions.
    pub max_top_actions: u32,
    /// Whether to generate network fault schedules (message loss and
    /// corruption of signalling/application traffic, signalling crashes).
    pub allow_faults: bool,
    /// Whether to generate shared-object workloads.
    pub allow_objects: bool,
    /// Whether to generate crash-stop participants.
    pub allow_crashes: bool,
    /// Probability that a plan carries a shared-object pool at all
    /// (given `allow_objects`). The default keeps the historical 50/50
    /// mix; raise it toward 1.0 for object-heavy sweeps.
    pub object_chance: f64,
    /// Probability that a plan carries a crash schedule at all (given
    /// `allow_crashes`); the second-crash and rejoin draws stay
    /// conditional on it. The default keeps the historical mix; raise
    /// it toward 1.0 for crash-heavy sweeps
    /// ([`ScenarioConfig::multi_crash`]).
    pub crash_chance: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            min_threads: 2,
            max_threads: 5,
            max_depth: 2,
            max_top_actions: 2,
            allow_faults: true,
            allow_objects: true,
            allow_crashes: true,
            object_chance: 0.5,
            crash_chance: 0.15,
        }
    }
}

impl ScenarioConfig {
    /// The object-heavy configuration used by the arbitration throughput
    /// benchmarks: every plan carries a contended object pool and at least
    /// four participants compete for it. Crash-stops are disabled so the
    /// sweep measures arbitration, not exit-timeout waits.
    #[must_use]
    pub fn object_heavy() -> Self {
        ScenarioConfig {
            min_threads: 4,
            max_threads: 6,
            max_depth: 1,
            max_top_actions: 2,
            allow_faults: false,
            allow_objects: true,
            allow_crashes: false,
            object_chance: 1.0,
            crash_chance: 0.0,
        }
    }

    /// The crash-heavy configuration used by the multi-crash fuzz lanes:
    /// nearly every plan carries a crash schedule (second crashes and
    /// rejoins stay at their conditional rates, so multi-crash and
    /// rejoin-mid-recovery plans appear in bulk), with at least three
    /// participants so a crash always leaves a group behind. Faults and
    /// objects stay on — the interesting finds live in the interactions.
    #[must_use]
    pub fn multi_crash() -> Self {
        ScenarioConfig {
            min_threads: 3,
            crash_chance: 0.9,
            ..ScenarioConfig::default()
        }
    }

    /// Serializes the config as `key=value` lines — the format corpus
    /// entries persist so a violating seed from a *custom* config sweep
    /// replays exactly ([`ScenarioConfig::from_kv`] round-trips it).
    #[must_use]
    pub fn to_kv(&self) -> String {
        format!(
            "min_threads={}\nmax_threads={}\nmax_depth={}\nmax_top_actions={}\n\
             allow_faults={}\nallow_objects={}\nallow_crashes={}\nobject_chance={}\n\
             crash_chance={}\n",
            self.min_threads,
            self.max_threads,
            self.max_depth,
            self.max_top_actions,
            self.allow_faults,
            self.allow_objects,
            self.allow_crashes,
            self.object_chance,
            self.crash_chance,
        )
    }

    /// Parses the `key=value` form written by [`ScenarioConfig::to_kv`].
    /// Missing keys keep their defaults (so old corpus entries survive new
    /// knobs); unknown keys or malformed values are errors.
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending line.
    pub fn from_kv(text: &str) -> Result<ScenarioConfig, String> {
        let mut config = ScenarioConfig::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed config line (expected key=value): {line:?}"))?;
            let bad = |e: &dyn std::fmt::Display| format!("bad value for {key}: {e}");
            match key {
                "min_threads" => config.min_threads = value.parse().map_err(|e| bad(&e))?,
                "max_threads" => config.max_threads = value.parse().map_err(|e| bad(&e))?,
                "max_depth" => config.max_depth = value.parse().map_err(|e| bad(&e))?,
                "max_top_actions" => config.max_top_actions = value.parse().map_err(|e| bad(&e))?,
                "allow_faults" => config.allow_faults = value.parse().map_err(|e| bad(&e))?,
                "allow_objects" => config.allow_objects = value.parse().map_err(|e| bad(&e))?,
                "allow_crashes" => config.allow_crashes = value.parse().map_err(|e| bad(&e))?,
                "object_chance" => config.object_chance = value.parse().map_err(|e| bad(&e))?,
                "crash_chance" => config.crash_chance = value.parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown config key: {other}")),
            }
        }
        Ok(config)
    }
}

/// How a role's handler concludes for any resolved exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictChoice {
    /// Forward recovery succeeds.
    Recovered,
    /// Request the undo round (µ).
    Undo,
    /// Unrecoverable: signal ƒ.
    Fail,
    /// Signal an interface exception to the enclosing context.
    Signal,
}

/// One network fault rule of the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultChoice {
    /// Message class affected (`"toBeSignalled"` or `"App"` — classes whose
    /// loss the protocols tolerate by design; resolution-critical classes
    /// are excluded per Assumption 1).
    pub class: &'static str,
    /// Lose the message (true) or corrupt it in transit (false).
    pub lose: bool,
    /// Restrict to messages sent by this thread, if set. Unpinned rules
    /// (`None`) replay deterministically too: fault budgets are consumed
    /// per directed link as a pure function of per-link sequence numbers
    /// (see `caa_simnet::fault`).
    pub src: Option<u32>,
    /// Matching messages to let through (per link) before the fault starts.
    pub skip: u64,
    /// Matching messages affected per link (`u64::MAX` models a signalling
    /// crash: every announcement from `src` is lost from `skip` onward).
    pub count: u64,
}

/// One shared-object operation of a compute phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectOp {
    /// The thread performing the operation.
    pub thread: u32,
    /// Offset into the phase at which the operation is issued (the
    /// *request* instant; the deterministic arbitration decides the grant).
    pub delay_ns: u64,
    /// Index into [`ScenarioPlan::objects`].
    pub object: u32,
    /// Transactional update (true) or read (false).
    pub update: bool,
}

/// An aligned phase of one action.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Every member spends exactly `dur_ns` of virtual time: `sends` fire
    /// (instantly) at phase start, `listeners` drain their app inbox for
    /// the whole phase, everyone else computes — issuing its `object_ops`
    /// at their fixed offsets along the way.
    Compute {
        /// Phase length in virtual nanoseconds (plus any object-wait time).
        dur_ns: u64,
        /// `(from, to)` application messages sent at phase start.
        sends: Vec<(u32, u32)>,
        /// Threads that listen instead of computing.
        listeners: Vec<u32>,
        /// Shared-object operations, per thread at fixed offsets.
        object_ops: Vec<ObjectOp>,
    },
    /// Disjoint sub-groups of the action's members enter child actions
    /// concurrently; members outside every child group proceed directly.
    Nested {
        /// The concurrently entered child actions.
        children: Vec<ActionPlan>,
    },
}

/// The optional final raise phase of an action.
#[derive(Debug, Clone)]
pub struct RaisePhase {
    /// `(thread, delay_ns)`: each raiser works `delay_ns` into the phase
    /// and then raises its own exception, producing genuinely concurrent
    /// raises when delays are close.
    pub raisers: Vec<(u32, u64)>,
}

/// One designated crash-stop of a plan: the plan-level crash schedule
/// (who dies, in which top-level action, how far in, and whether — and
/// when — the dead process restarts and asks to rejoin). A plan carries
/// any number of these with **distinct threads** (one crash per thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashChoice {
    /// The thread that crash-stops.
    pub thread: u32,
    /// Index into [`ScenarioPlan::top`]: the action during which the
    /// thread dies. Earlier-than-last indices leave whole top actions
    /// that the dead thread never enters (unless it rejoins).
    pub top_action: u32,
    /// How far into that action the crash instant lies.
    pub delay_ns: u64,
    /// Down-time before the restart's epoch-numbered rejoin attempt,
    /// measured from the crash instant; `None` means the thread stays
    /// down forever. The restart targets the action it died in: if no
    /// survivor still holds that instance open when the bounded join
    /// window closes, the restart gives up and the thread stays down.
    pub rejoin_delay_ns: Option<u64>,
}

/// One CA action of the scenario (a node of the action tree).
#[derive(Debug, Clone)]
pub struct ActionPlan {
    /// Unique name (`a0`, `a0.1`, …) encoding the tree path.
    pub name: String,
    /// Member threads (each playing role `r<thread>`).
    pub group: Vec<u32>,
    /// Nesting depth: top-level actions are 0.
    pub depth: usize,
    /// The aligned phases, in order.
    pub phases: Vec<Phase>,
    /// The optional final raise phase.
    pub raise: Option<RaisePhase>,
    /// Per-member handler verdicts.
    pub verdicts: Vec<(u32, VerdictChoice)>,
    /// Members whose abortion handler raises an `Eab` exception (§3.3.1).
    pub abort_raises_eab: Vec<u32>,
}

impl ActionPlan {
    /// The exception `thread` raises in this action.
    #[must_use]
    pub fn raise_exception(&self, thread: u32) -> String {
        format!("{}_e{thread}", self.name)
    }

    /// The interface exception a `Signal` verdict reports from this action.
    #[must_use]
    pub fn signal_exception(&self) -> String {
        format!("{}_sig", self.name)
    }

    /// The `Eab` exception `thread`'s abortion handler raises.
    #[must_use]
    pub fn eab_exception(&self, thread: u32) -> String {
        format!("{}_eab{thread}", self.name)
    }

    /// Depth of the deepest action in this subtree, relative to this node.
    #[must_use]
    pub fn subtree_depth(&self) -> usize {
        self.phases
            .iter()
            .filter_map(|p| match p {
                Phase::Nested { children } => children.iter().map(|c| 1 + c.subtree_depth()).max(),
                Phase::Compute { .. } => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// This node and every descendant, preorder.
    pub fn walk(&self) -> Vec<&ActionPlan> {
        let mut out = vec![self];
        for phase in &self.phases {
            if let Phase::Nested { children } = phase {
                for child in children {
                    out.extend(child.walk());
                }
            }
        }
        out
    }

    /// Whether this subtree contains any shared-object operation.
    #[must_use]
    pub fn uses_objects(&self) -> bool {
        self.walk().iter().any(|a| {
            a.phases.iter().any(|p| match p {
                Phase::Compute { object_ops, .. } => !object_ops.is_empty(),
                Phase::Nested { .. } => false,
            })
        })
    }
}

/// A fully determined scenario: everything needed to execute and to check
/// one simulated run.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    /// The generating seed.
    pub seed: u64,
    /// Number of participating threads.
    pub threads: u32,
    /// The paper's `Tmmax` (seconds): upper bound of the uniform latency.
    pub t_mmax: f64,
    /// The paper's `Treso` (seconds): cost per resolution invocation.
    pub t_reso: f64,
    /// Handler computation `∆` (seconds) — identical for every role.
    pub delta: f64,
    /// Abortion-handler computation `Tabort` (seconds).
    pub t_abort: f64,
    /// Signalling timeout (seconds); a missing announcement is then ƒ.
    pub signal_timeout: f64,
    /// Exit-protocol timeout (seconds); a missing vote is then a presumed
    /// crash and the action resolves to abortion.
    pub exit_timeout: f64,
    /// Resolution timeout (seconds): the membership extension's bounded
    /// collection wait — a silent peer is then presumed crashed, removed
    /// from the view and resolved as a synthesized crash exception.
    pub resolution_timeout: f64,
    /// The network fault schedule.
    pub faults: Vec<FaultChoice>,
    /// Shared-object names ([`ObjectOp::object`] indexes this).
    pub objects: Vec<String>,
    /// The designated crash-stops, at most one per thread. Empty for
    /// crash-free plans.
    pub crashes: Vec<CrashChoice>,
    /// Sequential top-level actions, each entered by every thread.
    pub top: Vec<ActionPlan>,
}

/// Size of the object pool (all at the plan's single object depth).
const OBJECT_POOL: u32 = 2;

impl ScenarioPlan {
    /// Generates the plan determined by `seed` under `config`.
    #[must_use]
    pub fn generate(seed: u64, config: &ScenarioConfig) -> ScenarioPlan {
        let mut rng = Rng::new(seed);
        let threads = rng.range(
            u64::from(config.min_threads.max(1)),
            u64::from(config.max_threads),
        ) as u32;
        let all: Vec<u32> = (0..threads).collect();
        let t_mmax = rng.f64_range(0.05, 1.0);
        let t_reso = rng.f64_range(0.0, 0.3);
        let delta = rng.f64_range(0.0, 0.3);
        let t_abort = rng.f64_range(0.0, 0.3);

        // All of a plan's objects live at one nesting depth (see the
        // module docs for the cycle-freedom argument). Depth 0 always
        // exists; deeper levels only when the seed generates nesting, so
        // bias toward the top.
        let object_depth: Option<usize> =
            (config.allow_objects && rng.chance(config.object_chance)).then(|| {
                if rng.chance(0.6) {
                    0
                } else {
                    rng.below(config.max_depth as u64 + 1) as usize
                }
            });
        let objects: Vec<String> = if object_depth.is_some() {
            (0..OBJECT_POOL).map(|i| format!("o{i}")).collect()
        } else {
            Vec::new()
        };

        let top_n = rng.range(1, u64::from(config.max_top_actions.max(1)));
        let mut top = Vec::new();
        for i in 0..top_n {
            top.push(gen_action(
                &mut rng,
                format!("a{i}"),
                all.clone(),
                0,
                config.max_depth,
                object_depth,
            ));
        }

        // The crash schedule: any thread, any top action, any instant —
        // and possibly a second crash (distinct thread) plus rejoin
        // instants. The membership extension's round-agnostic suspicion
        // lets raises (and nesting, and the dead threads' own object
        // traffic) coexist with the crashes, so nothing is stripped from
        // the subtree. Every draw beyond the historical three sits
        // *inside* the crash branch: crash-free seeds consume the exact
        // same stream (and thus produce byte-identical plans) as before
        // multi-crash support.
        let mut crashes = Vec::new();
        if config.allow_crashes && rng.chance(config.crash_chance) {
            let first = CrashChoice {
                thread: rng.below(u64::from(threads)) as u32,
                top_action: rng.below(top_n) as u32,
                delay_ns: rng.below(1_500_000_000),
                // Short enough that a granted rejoin re-enters well within
                // the survivors' exit patience (the bounded waits are two
                // orders of magnitude above this scale).
                rejoin_delay_ns: rng.chance(0.35).then(|| rng.below(30_000_000_000)),
            };
            crashes.push(first);
            if threads >= 2 && rng.chance(0.25) {
                // A second crash-stop on a distinct thread.
                let pick = rng.below(u64::from(threads) - 1) as u32;
                crashes.push(CrashChoice {
                    thread: if pick >= first.thread { pick + 1 } else { pick },
                    top_action: rng.below(top_n) as u32,
                    delay_ns: rng.below(1_500_000_000),
                    rejoin_delay_ns: rng.chance(0.35).then(|| rng.below(30_000_000_000)),
                });
            }
        }

        let mut faults = Vec::new();
        if config.allow_faults {
            if rng.chance(0.5) {
                for _ in 0..rng.range(1, 2) {
                    faults.push(FaultChoice {
                        class: if rng.chance(0.5) {
                            "toBeSignalled"
                        } else {
                            "App"
                        },
                        // Corruption faults coexist with crash-stops now:
                        // the corruption exception's recovery resolves the
                        // dead peer's silence through the membership
                        // extension's bounded wait.
                        lose: rng.chance(0.5),
                        src: if rng.chance(0.7) {
                            Some(rng.below(u64::from(threads)) as u32)
                        } else {
                            None // unpinned: per-link budgets replay too
                        },
                        skip: rng.below(30),
                        count: rng.range(1, 2),
                    });
                }
            }
            if rng.chance(0.15) {
                // A signalling crash: from some point on, none of this
                // thread's announcements arrive; peers time out and treat
                // the silence as ƒ (§3.4 crash extension).
                faults.push(FaultChoice {
                    class: "toBeSignalled",
                    lose: true,
                    src: Some(rng.below(u64::from(threads)) as u32),
                    skip: rng.below(10),
                    count: u64::MAX,
                });
            }
        }

        ScenarioPlan {
            seed,
            threads,
            t_mmax,
            t_reso,
            delta,
            t_abort,
            signal_timeout: 60.0,
            // Well above any live participant's achievable exit skew (a
            // thread can lag by a few signalling timeouts when
            // announcements are lost), so only genuine crash-stops trip
            // the bounded wait. Virtual time makes the headroom free.
            exit_timeout: 600.0,
            // Same reasoning for the resolution collection wait: a live
            // peer answers within a handful of latencies (plus the entry
            // skew of the retain-till-entry rule), so only a genuinely
            // dead peer is ever suspected.
            resolution_timeout: 600.0,
            faults,
            objects,
            crashes,
            top,
        }
    }

    /// Depth of the deepest generated action (`nmax` of Lemma 1).
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.top
            .iter()
            .map(ActionPlan::subtree_depth)
            .max()
            .unwrap_or(0)
    }

    /// Every action of the plan, preorder across the top-level sequence.
    pub fn actions(&self) -> Vec<&ActionPlan> {
        self.top.iter().flat_map(ActionPlan::walk).collect()
    }

    /// Whether any action performs shared-object operations. Such plans
    /// skip the Lemma 1 bound: object waits stretch compute phases, so the
    /// aligned-entry premise of the bound no longer holds.
    #[must_use]
    pub fn has_objects(&self) -> bool {
        self.top.iter().any(ActionPlan::uses_objects)
    }

    /// Materialises the plan's fault schedule as a network [`FaultPlan`].
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            let mut spec = match f.src {
                Some(t) => FaultSpec::from(PartitionId::new(t)),
                None => FaultSpec::any(),
            };
            spec = spec.class(f.class).skip(f.skip).count(f.count);
            plan = if f.lose {
                plan.lose(spec)
            } else {
                plan.corrupt(spec)
            };
        }
        plan
    }

    /// One-paragraph human summary (for violation reports).
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "seed {}: {} threads, {} top actions, depth {}, Tmmax {:.3}s, \
             Treso {:.3}s, ∆ {:.3}s, Tabort {:.3}s, {} fault rule(s), \
             objects {}, crash {}",
            self.seed,
            self.threads,
            self.top.len(),
            self.max_depth(),
            self.t_mmax,
            self.t_reso,
            self.delta,
            self.t_abort,
            self.faults.len(),
            if self.has_objects() { "yes" } else { "no" },
            if self.crashes.is_empty() {
                "no".into()
            } else {
                self.crashes
                    .iter()
                    .map(|c| {
                        let rejoin = match c.rejoin_delay_ns {
                            Some(d) => format!(" rejoin +{:.3}s", d as f64 / 1e9),
                            None => String::new(),
                        };
                        format!(
                            "T{} in a{} @{:.3}s{rejoin}",
                            c.thread,
                            c.top_action,
                            c.delay_ns as f64 / 1e9
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            },
        )
    }
}

/// Checks every structural invariant the generator guarantees by
/// construction — the **validity contract** mutated plans
/// ([`mod@crate::fuzz`]) must also satisfy, so the oracles' premises hold for
/// fuzzed scenarios exactly as they do for fresh-seed ones:
///
/// * every top-level action is entered by **all** threads (the executor
///   assigns every thread a role in every top action);
/// * nested child groups are non-empty, disjoint, subsets of the parent,
///   one level deeper, and names encode the tree path uniquely;
/// * sends/listeners/raisers/verdicts reference group members only, every
///   member has exactly one verdict, and raiser delays stay far below the
///   exit-timeout scale (a raise delayed past the bounded exit wait would
///   read as a crash and trip the false-suspicion oracle);
/// * shared-object operations obey the **single-depth** discipline (the
///   cycle-freedom argument in the module docs), reference pool objects,
///   use at most one object per action, and never run on listeners;
/// * every crash schedule points at a real thread/top action, no thread
///   crashes twice, and rejoin down-times stay inside the readmission
///   window (a longer-down restart would read as a fresh late joiner);
/// * fault rules use protocol-tolerated classes with per-link budgets,
///   with at most two unbounded (signalling-crash) rules;
/// * the timeout hierarchy keeps the §3.4/§3.3.2 bounded waits an order
///   of magnitude above the signalling timeout (the executor then
///   multiplies per nesting level by
///   [`TIMEOUT_SEPARATION`](crate::exec::TIMEOUT_SEPARATION)), so live
///   peers are never suspected.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn validate_plan(plan: &ScenarioPlan) -> Result<(), String> {
    use std::collections::HashSet;
    if plan.threads == 0 {
        return Err("plan has no threads".into());
    }
    if plan.top.is_empty() {
        return Err("plan has no top-level actions".into());
    }
    if plan.top.len() > 8 {
        return Err(format!("{} top-level actions (max 8)", plan.top.len()));
    }
    let all: Vec<u32> = (0..plan.threads).collect();
    let mut names: HashSet<&str> = HashSet::new();
    let mut object_depths: HashSet<usize> = HashSet::new();
    for top in &plan.top {
        if top.group != all {
            return Err(format!(
                "top action {} group {:?} must be all threads 0..{}",
                top.name, top.group, plan.threads
            ));
        }
        if top.depth != 0 {
            return Err(format!("top action {} has depth {}", top.name, top.depth));
        }
        validate_action(top, plan, &mut names, &mut object_depths)?;
    }
    if object_depths.len() > 1 {
        let mut depths: Vec<usize> = object_depths.into_iter().collect();
        depths.sort_unstable();
        return Err(format!(
            "object operations at multiple depths {depths:?} (single-depth discipline)"
        ));
    }
    let mut crashed_threads: HashSet<u32> = HashSet::new();
    for crash in &plan.crashes {
        if crash.thread >= plan.threads {
            return Err(format!("crash thread T{} out of range", crash.thread));
        }
        if !crashed_threads.insert(crash.thread) {
            return Err(format!(
                "thread T{} crash-stops more than once",
                crash.thread
            ));
        }
        if (crash.top_action as usize) >= plan.top.len() {
            return Err(format!(
                "crash top action a{} out of range",
                crash.top_action
            ));
        }
        if crash.delay_ns > 3_600_000_000_000 {
            return Err(format!(
                "crash delay {}ns beyond the idle window",
                crash.delay_ns
            ));
        }
        if crash.rejoin_delay_ns.is_some_and(|d| d > 120_000_000_000) {
            // A restart that stays down longer than the bounded waits can
            // absorb would read as a fresh late joiner to survivors deep
            // in *later* actions; cap the down-time well inside the
            // hierarchy's slack instead.
            return Err(format!(
                "crash rejoin delay {}ns beyond the 120s readmission window",
                crash.rejoin_delay_ns.unwrap_or(0)
            ));
        }
    }
    let mut unbounded = 0usize;
    for (i, fault) in plan.faults.iter().enumerate() {
        if !matches!(fault.class, "toBeSignalled" | "App") {
            return Err(format!(
                "fault {i} targets untolerated class {:?}",
                fault.class
            ));
        }
        if fault.src.is_some_and(|s| s >= plan.threads) {
            return Err(format!("fault {i} pins an out-of-range source"));
        }
        if fault.count == 0 {
            return Err(format!("fault {i} has a zero budget"));
        }
        if fault.count == u64::MAX {
            unbounded += 1;
        }
    }
    if plan.faults.len() > 8 {
        return Err(format!("{} fault rules (max 8)", plan.faults.len()));
    }
    if unbounded > 2 {
        return Err(format!("{unbounded} unbounded fault rules (max 2)"));
    }
    if !(0.01..=2.0).contains(&plan.t_mmax) {
        return Err(format!("t_mmax {} outside [0.01, 2.0]", plan.t_mmax));
    }
    for (name, value) in [
        ("t_reso", plan.t_reso),
        ("delta", plan.delta),
        ("t_abort", plan.t_abort),
    ] {
        if !(0.0..=1.0).contains(&value) {
            return Err(format!("{name} {value} outside [0.0, 1.0]"));
        }
    }
    if plan.signal_timeout < 10.0 {
        return Err(format!("signal timeout {} below 10s", plan.signal_timeout));
    }
    if plan.exit_timeout < 10.0 * plan.signal_timeout {
        return Err(format!(
            "exit timeout {} under 10x the signal timeout {} (hierarchy separation)",
            plan.exit_timeout, plan.signal_timeout
        ));
    }
    if plan.resolution_timeout < 10.0 * plan.signal_timeout {
        return Err(format!(
            "resolution timeout {} under 10x the signal timeout {} (hierarchy separation)",
            plan.resolution_timeout, plan.signal_timeout
        ));
    }
    Ok(())
}

fn validate_action<'p>(
    action: &'p ActionPlan,
    plan: &ScenarioPlan,
    names: &mut std::collections::HashSet<&'p str>,
    object_depths: &mut std::collections::HashSet<usize>,
) -> Result<(), String> {
    use std::collections::HashSet;
    if action.group.is_empty() {
        return Err(format!("action {} has an empty group", action.name));
    }
    if !names.insert(&action.name) {
        return Err(format!("duplicate action name {}", action.name));
    }
    let member = |t: &u32| action.group.contains(t);
    let mut action_objects: HashSet<u32> = HashSet::new();
    for (p, phase) in action.phases.iter().enumerate() {
        match phase {
            Phase::Compute {
                dur_ns,
                sends,
                listeners,
                object_ops,
            } => {
                if !(1_000_000..=10_000_000_000).contains(dur_ns) {
                    return Err(format!(
                        "action {} phase {p}: duration {dur_ns}ns outside [1ms, 10s]",
                        action.name
                    ));
                }
                for &(from, to) in sends {
                    if from == to || !member(&from) || !member(&to) {
                        return Err(format!(
                            "action {} phase {p}: send ({from}, {to}) outside the group",
                            action.name
                        ));
                    }
                }
                let mut seen_listener = HashSet::new();
                for t in listeners {
                    if !member(t) || !seen_listener.insert(*t) {
                        return Err(format!(
                            "action {} phase {p}: bad listener T{t}",
                            action.name
                        ));
                    }
                }
                for op in object_ops {
                    if !member(&op.thread) {
                        return Err(format!(
                            "action {} phase {p}: object op by non-member T{}",
                            action.name, op.thread
                        ));
                    }
                    if listeners.contains(&op.thread) {
                        return Err(format!(
                            "action {} phase {p}: object op by listener T{}",
                            action.name, op.thread
                        ));
                    }
                    if op.delay_ns >= *dur_ns {
                        return Err(format!(
                            "action {} phase {p}: op delay {} past the phase end {}",
                            action.name, op.delay_ns, dur_ns
                        ));
                    }
                    if (op.object as usize) >= plan.objects.len() {
                        return Err(format!(
                            "action {} phase {p}: op references unknown object o{}",
                            action.name, op.object
                        ));
                    }
                    action_objects.insert(op.object);
                    object_depths.insert(action.depth);
                }
            }
            Phase::Nested { children } => {
                if children.is_empty() {
                    return Err(format!(
                        "action {} phase {p}: empty nested phase",
                        action.name
                    ));
                }
                let mut seen: HashSet<u32> = HashSet::new();
                for child in children {
                    if child.depth != action.depth + 1 {
                        return Err(format!(
                            "child {} depth {} under parent depth {}",
                            child.name, child.depth, action.depth
                        ));
                    }
                    if !child.name.starts_with(&format!("{}.", action.name)) {
                        return Err(format!(
                            "child {} name does not extend parent {}",
                            child.name, action.name
                        ));
                    }
                    for t in &child.group {
                        if !member(t) {
                            return Err(format!(
                                "child {} member T{t} outside parent {} group",
                                child.name, action.name
                            ));
                        }
                        if !seen.insert(*t) {
                            return Err(format!(
                                "child groups under {} overlap on T{t}",
                                action.name
                            ));
                        }
                    }
                    validate_action(child, plan, names, object_depths)?;
                }
            }
        }
    }
    if action_objects.len() > 1 {
        return Err(format!(
            "action {} uses {} objects (max 1)",
            action.name,
            action_objects.len()
        ));
    }
    if let Some(raise) = &action.raise {
        if raise.raisers.is_empty() {
            return Err(format!("action {} has an empty raise phase", action.name));
        }
        let mut seen = HashSet::new();
        for &(t, delay_ns) in &raise.raisers {
            if !member(&t) || !seen.insert(t) {
                return Err(format!("action {}: bad raiser T{t}", action.name));
            }
            if delay_ns > 1_000_000_000 {
                return Err(format!(
                    "action {}: raiser T{t} delayed {delay_ns}ns (>1s reads as a crash)",
                    action.name
                ));
            }
        }
    }
    let verdict_threads: HashSet<u32> = action.verdicts.iter().map(|&(t, _)| t).collect();
    let group_threads: HashSet<u32> = action.group.iter().copied().collect();
    if verdict_threads != group_threads || action.verdicts.len() != action.group.len() {
        return Err(format!(
            "action {}: verdicts must cover the group exactly once",
            action.name
        ));
    }
    for t in &action.abort_raises_eab {
        if !member(t) {
            return Err(format!(
                "action {}: Eab raiser T{t} outside the group",
                action.name
            ));
        }
    }
    if action.depth == 0 && !action.abort_raises_eab.is_empty() {
        return Err(format!(
            "top action {} declares abortion-handler exceptions",
            action.name
        ));
    }
    Ok(())
}

/// Applies `f` to the `index`-th action of the plan in the same preorder
/// [`ScenarioPlan::actions`] uses. Returns `None` when `index` is out of
/// range. The mutable cousin of indexing `actions()` — mutators pick a
/// node by deterministic index and edit it in place.
pub fn with_action_mut<R>(
    plan: &mut ScenarioPlan,
    index: usize,
    f: impl FnOnce(&mut ActionPlan) -> R,
) -> Option<R> {
    fn locate<'a>(
        action: &'a mut ActionPlan,
        counter: &mut usize,
        target: usize,
    ) -> Option<&'a mut ActionPlan> {
        if *counter == target {
            return Some(action);
        }
        *counter += 1;
        for phase in &mut action.phases {
            if let Phase::Nested { children } = phase {
                for child in children {
                    if let Some(found) = locate(child, counter, target) {
                        return Some(found);
                    }
                }
            }
        }
        None
    }
    let mut counter = 0;
    for top in &mut plan.top {
        if let Some(found) = locate(top, &mut counter, index) {
            return Some(f(found));
        }
        // `locate` consumed the subtree's indices; continue after it.
    }
    None
}

/// Renames `action`'s whole subtree so its root becomes `new_name`,
/// preserving the path-encoded suffixes (`a0.1` under root `a0` becomes
/// `a2.1` under root `a2`). Used when duplicating a subtree: names must
/// stay globally unique for handler/exception identities to stay distinct.
pub(crate) fn rename_subtree(action: &mut ActionPlan, new_name: &str) {
    fn rewrite(action: &mut ActionPlan, old_prefix: &str, new_prefix: &str) {
        debug_assert!(action.name.starts_with(old_prefix));
        let suffix = action.name[old_prefix.len()..].to_owned();
        action.name = format!("{new_prefix}{suffix}");
        for phase in &mut action.phases {
            if let Phase::Nested { children } = phase {
                for child in children {
                    rewrite(child, old_prefix, new_prefix);
                }
            }
        }
    }
    let old = action.name.clone();
    rewrite(action, &old, new_name);
}

/// Generates a fresh action subtree with the generator's own logic — the
/// re-depth mutator's workhorse: a regenerated subtree is valid by the
/// same construction argument as a fresh plan's.
pub(crate) fn gen_subtree(
    rng: &mut Rng,
    name: String,
    group: Vec<u32>,
    depth: usize,
    max_depth: usize,
    object_depth: Option<usize>,
) -> ActionPlan {
    gen_action(rng, name, group, depth, max_depth, object_depth)
}

/// The single nesting depth at which this plan's shared-object operations
/// live, when any exist.
#[must_use]
pub fn plan_object_depth(plan: &ScenarioPlan) -> Option<usize> {
    plan.actions().iter().find_map(|a| {
        a.phases.iter().find_map(|p| match p {
            Phase::Compute { object_ops, .. } if !object_ops.is_empty() => Some(a.depth),
            _ => None,
        })
    })
}

fn gen_verdict(rng: &mut Rng) -> VerdictChoice {
    let roll = rng.unit_f64();
    if roll < 0.70 {
        VerdictChoice::Recovered
    } else if roll < 0.85 {
        VerdictChoice::Undo
    } else if roll < 0.95 {
        VerdictChoice::Signal
    } else {
        VerdictChoice::Fail
    }
}

fn gen_action(
    rng: &mut Rng,
    name: String,
    group: Vec<u32>,
    depth: usize,
    max_depth: usize,
    object_depth: Option<usize>,
) -> ActionPlan {
    // At most one object per action node, only at the plan's single
    // object depth. See the module docs for the cycle-freedom argument.
    let object: Option<u32> = (object_depth == Some(depth) && rng.chance(0.6))
        .then(|| rng.below(u64::from(OBJECT_POOL)) as u32);

    let mut phases = Vec::new();

    // Aligned compute phases with optional messaging and object traffic.
    for _ in 0..rng.range(0, 2) {
        let dur_ns = (rng.f64_range(0.02, 0.4) * 1e9) as u64;
        let mut sends = Vec::new();
        let mut listeners = Vec::new();
        if group.len() >= 2 {
            for &t in &group {
                if rng.chance(0.35) {
                    let peers: Vec<u32> = group.iter().copied().filter(|&p| p != t).collect();
                    let to = peers[rng.below(peers.len() as u64) as usize];
                    sends.push((t, to));
                }
                if rng.chance(0.3) {
                    listeners.push(t);
                }
            }
        }
        let mut object_ops = Vec::new();
        if let Some(object) = object {
            for &t in &group {
                if !listeners.contains(&t) && rng.chance(0.4) {
                    object_ops.push(ObjectOp {
                        thread: t,
                        delay_ns: rng.below(dur_ns.max(1)),
                        object,
                        update: rng.chance(0.7),
                    });
                }
            }
        }
        phases.push(Phase::Compute {
            dur_ns,
            sends,
            listeners,
            object_ops,
        });
    }

    // Optional nested phase: disjoint sub-groups entered concurrently.
    if depth < max_depth && !group.is_empty() && rng.chance(0.6) {
        let mut pool = group.clone();
        // Deterministic shuffle.
        for i in (1..pool.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            pool.swap(i, j);
        }
        let n_children = if pool.len() >= 3 && rng.chance(0.4) {
            2
        } else {
            1
        };
        let mut children = Vec::new();
        for c in 0..n_children {
            if pool.is_empty() {
                break;
            }
            let take = rng.range(1, pool.len() as u64) as usize;
            let mut sub: Vec<u32> = pool.drain(..take).collect();
            sub.sort_unstable();
            children.push(gen_action(
                rng,
                format!("{name}.{c}"),
                sub,
                depth + 1,
                max_depth,
                object_depth,
            ));
        }
        phases.push(Phase::Nested { children });
    }

    // Optional final raise phase: concurrent raises within a short window.
    let raise = if rng.chance(if depth == 0 { 0.75 } else { 0.5 }) {
        let mut raisers: Vec<(u32, u64)> = Vec::new();
        for &t in &group {
            if rng.chance(0.45) {
                raisers.push((t, rng.below(200_000_000)));
            }
        }
        (!raisers.is_empty()).then_some(RaisePhase { raisers })
    } else {
        None
    };

    let verdicts = group.iter().map(|&t| (t, gen_verdict(rng))).collect();
    let abort_raises_eab = if depth > 0 {
        group.iter().copied().filter(|_| rng.chance(0.5)).collect()
    } else {
        Vec::new()
    };

    ActionPlan {
        name,
        group,
        depth,
        phases,
        raise,
        verdicts,
        abort_raises_eab,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = ScenarioConfig::default();
        let a = ScenarioPlan::generate(42, &cfg);
        let b = ScenarioPlan::generate(42, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn different_seeds_explore_different_plans() {
        let cfg = ScenarioConfig::default();
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..64 {
            distinct.insert(format!("{:?}", ScenarioPlan::generate(seed, &cfg)));
        }
        assert!(
            distinct.len() > 60,
            "only {} distinct plans",
            distinct.len()
        );
    }

    #[test]
    fn structure_respects_config_bounds() {
        let cfg = ScenarioConfig {
            min_threads: 2,
            max_threads: 4,
            max_depth: 2,
            max_top_actions: 2,
            allow_faults: true,
            allow_objects: true,
            allow_crashes: true,
            object_chance: 0.5,
            crash_chance: 0.15,
        };
        for seed in 0..200 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            assert!((2..=4).contains(&plan.threads), "seed {seed}");
            assert!(plan.max_depth() <= 2, "seed {seed}");
            assert!(plan.top.len() <= 2, "seed {seed}");
            for action in plan.actions() {
                assert!(!action.group.is_empty());
                // Children partition a subset of the parent group.
                for phase in &action.phases {
                    if let Phase::Nested { children } = phase {
                        let mut seen = std::collections::HashSet::new();
                        for child in children {
                            for &t in &child.group {
                                assert!(action.group.contains(&t));
                                assert!(seen.insert(t), "overlapping child groups");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn object_ops_are_well_formed() {
        let cfg = ScenarioConfig::default();
        for seed in 0..300 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            for action in plan.actions() {
                let mut action_objects = std::collections::HashSet::new();
                for phase in &action.phases {
                    if let Phase::Compute {
                        dur_ns,
                        listeners,
                        object_ops,
                        ..
                    } = phase
                    {
                        for op in object_ops {
                            assert!(action.group.contains(&op.thread), "seed {seed}");
                            assert!(!listeners.contains(&op.thread), "seed {seed}");
                            assert!(op.delay_ns < *dur_ns, "seed {seed}");
                            assert!(
                                (op.object as usize) < plan.objects.len(),
                                "seed {seed}: op references unknown object"
                            );
                            action_objects.insert(op.object);
                        }
                    }
                }
                assert!(
                    action_objects.len() <= 1,
                    "seed {seed}: action {} uses {} objects (max 1)",
                    action.name,
                    action_objects.len()
                );
            }
        }
    }

    #[test]
    fn crash_schedules_are_well_formed_and_unrestricted() {
        let cfg = ScenarioConfig::default();
        let mut crashes = 0;
        let (mut earlier, mut raise_in_crash_action, mut corrupt_with_crash) = (0, 0, 0);
        let (mut multi, mut rejoins) = (0, 0);
        for seed in 0..400 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            if plan.crashes.is_empty() {
                continue;
            }
            crashes += 1;
            validate_plan(&plan).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if plan.crashes.len() >= 2 {
                multi += 1;
                assert_ne!(
                    plan.crashes[0].thread, plan.crashes[1].thread,
                    "seed {seed}: one crash per thread"
                );
            }
            rejoins += plan
                .crashes
                .iter()
                .filter(|c| c.rejoin_delay_ns.is_some())
                .count();
            let crash = plan.crashes[0];
            assert!(crash.thread < plan.threads, "seed {seed}");
            assert!(
                (crash.top_action as usize) < plan.top.len(),
                "seed {seed}: crash action index out of range"
            );
            if (crash.top_action as usize) + 1 < plan.top.len() {
                earlier += 1;
            }
            let action = &plan.top[crash.top_action as usize];
            if action
                .walk()
                .iter()
                .any(|a| a.raise.as_ref().is_some_and(|r| !r.raisers.is_empty()))
            {
                raise_in_crash_action += 1;
            }
            if plan.faults.iter().any(|f| !f.lose) {
                corrupt_with_crash += 1;
            }
        }
        assert!(crashes > 30, "crashes too rare: {crashes}/400");
        // The membership extension lifted the historical restrictions:
        // crashes land in earlier top actions, crash subtrees keep their
        // raise phases, and corruption faults coexist with crash-stops.
        assert!(
            earlier > 5,
            "crashes in earlier top actions too rare: {earlier}/{crashes}"
        );
        assert!(
            raise_in_crash_action > 10,
            "raises inside crash actions too rare: {raise_in_crash_action}/{crashes}"
        );
        assert!(
            corrupt_with_crash > 3,
            "corruption faults with crash-stops too rare: {corrupt_with_crash}/{crashes}"
        );
        assert!(multi > 5, "double crashes too rare: {multi}/{crashes}");
        assert!(rejoins > 10, "rejoins too rare: {rejoins}/{crashes}");
    }

    /// Crash-free seeds must generate byte-identical plans before and
    /// after multi-crash support: every new draw sits inside the
    /// crash-drawn branch, so the rest of the stream is undisturbed. The
    /// proxy here (the real gate is the 12k-seed trace-hash diff): the
    /// generator's structural draws for a crash-free seed do not depend on
    /// `allow_crashes` beyond the single branch probe it always made.
    #[test]
    fn crash_free_seeds_keep_their_historical_stream() {
        let on = ScenarioConfig::default();
        for seed in 0..200 {
            let plan = ScenarioPlan::generate(seed, &on);
            if !plan.crashes.is_empty() {
                continue;
            }
            // Re-generate and compare everything downstream of the crash
            // branch (faults are drawn after it — the sensitive part).
            let again = ScenarioPlan::generate(seed, &on);
            assert_eq!(format!("{plan:?}"), format!("{again:?}"), "seed {seed}");
        }
    }

    #[test]
    fn seeds_reach_interesting_features() {
        let cfg = ScenarioConfig::default();
        let (mut nested, mut multi_raise, mut faults, mut crash) = (0, 0, 0, 0);
        let (mut objects, mut unpinned, mut crash_stop) = (0, 0, 0);
        for seed in 0..300 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            if plan.max_depth() > 0 {
                nested += 1;
            }
            if plan
                .actions()
                .iter()
                .any(|a| a.raise.as_ref().is_some_and(|r| r.raisers.len() >= 2))
            {
                multi_raise += 1;
            }
            if !plan.faults.is_empty() {
                faults += 1;
            }
            if plan.faults.iter().any(|f| f.count == u64::MAX) {
                crash += 1;
            }
            if plan.has_objects() {
                objects += 1;
            }
            if plan.faults.iter().any(|f| f.src.is_none()) {
                unpinned += 1;
            }
            if !plan.crashes.is_empty() {
                crash_stop += 1;
            }
        }
        assert!(nested > 100, "nesting too rare: {nested}/300");
        assert!(
            multi_raise > 60,
            "concurrent raises too rare: {multi_raise}/300"
        );
        assert!(faults > 100, "faults too rare: {faults}/300");
        assert!(crash > 10, "signalling crashes too rare: {crash}/300");
        assert!(objects > 40, "object workloads too rare: {objects}/300");
        assert!(
            unpinned > 20,
            "unpinned fault rules too rare: {unpinned}/300"
        );
        assert!(crash_stop > 20, "crash-stops too rare: {crash_stop}/300");
    }
}
