//! Sweep metrics: virtual-time protocol latency distributions plus
//! wall-clock scheduler self-metrics, extracted from recorded traces.
//!
//! The paper reports message *counts*; this module adds the latency
//! axis — how long coordinated recovery actually takes, phase by phase,
//! in **virtual time**. Everything is derived post-run from artifacts the
//! harness already records (the canonical trace, [`NetStats`], the
//! system report), so enabling metrics adds **zero branches to the
//! simulation hot path** and cannot perturb traces: the 12k-seed
//! fingerprint gate holds with metrics on.
//!
//! Two [`MetricSet`]s with different guarantees:
//!
//! * **deterministic** — virtual-time histograms and protocol counters.
//!   Pure functions of the explored seed set: the same sweep serializes
//!   to byte-identical JSON on any machine, and the shard-merged union
//!   (`metrics_merge`) is byte-identical to the unsharded run.
//! * **wall_clock** — host-scheduler facts ([`SchedStats`] park/wake
//!   handoffs). Reported for regression ceilings, excluded from
//!   byte-identity claims, and dropped by `metrics_merge`.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use caa_runtime::observe::EventKind;
use caa_simnet::{NetStats, SchedStats};
use caa_telemetry::json::{self, Value};
use caa_telemetry::{HistogramHandle, MetricSet};

use crate::exec::RunArtifacts;
use crate::spans::{CriticalPathScratch, SegmentClass};
use crate::trace::EntryKind;

/// Schema tag stamped into every `metrics.json` document.
pub const METRICS_SCHEMA: &str = "caa-metrics/v1";

/// Aggregated sweep metrics: the deterministic (virtual-time) set and the
/// wall-clock set, kept apart because only the former is byte-reproducible
/// (see the module docs).
#[derive(Debug, Default, Clone)]
pub struct SweepMetrics {
    /// Virtual-time histograms and protocol counters — byte-deterministic
    /// per seed set.
    pub deterministic: MetricSet,
    /// Raise→resolve critical-path attribution (`cp_*` nanosecond
    /// counters per [`SegmentClass`], plus `cp_total_ns` and
    /// `cp_instances`). Derived from the causal graph in virtual time, so
    /// byte-deterministic and shard-mergeable like `deterministic`.
    pub critical_path: MetricSet,
    /// Host-scheduler counters (park/wake handoffs) and driver stage
    /// timers — wall-clock facts, gate with ceilings, never with
    /// equalities.
    pub wall_clock: MetricSet,
}

impl SweepMetrics {
    /// Accumulates `other` (e.g. another worker's or shard's metrics).
    /// Associative and commutative in both sets.
    pub fn merge(&mut self, other: &SweepMetrics) {
        self.deterministic.merge(&other.deterministic);
        self.critical_path.merge(&other.critical_path);
        self.wall_clock.merge(&other.wall_clock);
    }

    /// Human-readable block: protocol latency quantiles (virtual time),
    /// per-class message counts in sorted class order, and the scheduler
    /// handoff counters.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut line = |label: &str, name: &str| {
            if let Some(h) = self.deterministic.histogram_named(name) {
                if h.count() > 0 {
                    let _ = writeln!(
                        out,
                        "{label}: p50 {} p90 {} p99 {} max {} (n={})",
                        fmt_ns(h.quantile(50, 100)),
                        fmt_ns(h.quantile(90, 100)),
                        fmt_ns(h.quantile(99, 100)),
                        fmt_ns(h.max()),
                        h.count(),
                    );
                }
            }
        };
        line(
            "resolution latency (crash-free)",
            "resolution_latency_crashfree_ns",
        );
        line(
            "resolution latency (crash plans)",
            "resolution_latency_crash_ns",
        );
        line("exit round duration", "exit_round_ns");
        line("object acquisition wait", "object_wait_ns");
        line("crash detection latency", "crash_detect_ns");
        line("rejoin restart latency", "rejoin_restart_ns");
        line("rejoin catch-up", "rejoin_catchup_ns");
        let suspicions: Vec<String> = ["resolution", "signalling", "exit"]
            .iter()
            .filter_map(|round| {
                let v = self
                    .deterministic
                    .counter_value(&format!("suspicion_{round}"));
                (v > 0).then(|| format!("{round} {v}"))
            })
            .collect();
        if !suspicions.is_empty() {
            let _ = writeln!(out, "suspicion rounds: {}", suspicions.join(" | "));
        }
        if let Some(h) = self.deterministic.histogram_named("signal_fanout") {
            if h.count() > 0 {
                let _ = writeln!(
                    out,
                    "signalling fan-out: p50 {} p99 {} max {} (instances={})",
                    h.quantile(50, 100),
                    h.quantile(99, 100),
                    h.max(),
                    h.count(),
                );
            }
        }
        if let Some(h) = self.deterministic.histogram_named("resolution_rounds") {
            if h.count() > 0 {
                let _ = writeln!(
                    out,
                    "resolution rounds: p50 {} max {} (instances={})",
                    h.quantile(50, 100),
                    h.max(),
                    h.count(),
                );
            }
        }
        let msgs: Vec<String> = self
            .deterministic
            .counters_sorted()
            .into_iter()
            .filter_map(|(name, v)| {
                name.strip_prefix("msg_sent_")
                    .map(|class| format!("{class} {v}"))
            })
            .collect();
        if !msgs.is_empty() {
            let _ = writeln!(out, "messages sent: {}", msgs.join(" | "));
        }
        let cp_total = self.critical_path.counter_value("cp_total_ns");
        if cp_total > 0 {
            let mut shares: Vec<(u64, &'static str)> = SegmentClass::ALL
                .iter()
                .map(|&class| {
                    (
                        self.critical_path.counter_value(class.counter_name()),
                        class.label(),
                    )
                })
                .filter(|&(ns, _)| ns > 0)
                .collect();
            // Top contributors first; label order breaks ties so the line
            // is deterministic.
            shares.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
            let parts: Vec<String> = shares
                .iter()
                .map(|&(ns, label)| format!("{label} {}% ({})", ns * 100 / cp_total, fmt_ns(ns)))
                .collect();
            let _ = writeln!(
                out,
                "critical path ({} instances, {} attributed): {}",
                self.critical_path.counter_value("cp_instances"),
                fmt_ns(cp_total),
                parts.join(" | "),
            );
        }
        let parks = self.wall_clock.counter_value("sched_parks");
        let wakes = self.wall_clock.counter_value("sched_wakes");
        let seeds = self
            .deterministic
            .counter_value("seeds_crashfree")
            .saturating_add(self.deterministic.counter_value("seeds_crash"));
        if parks + wakes > 0 {
            let per_seed = parks.checked_div(seeds).unwrap_or(0);
            let _ = writeln!(
                out,
                "sched handoffs (wall-clock): {parks} parks, {wakes} wakes (~{per_seed} parks/seed)"
            );
        }
        let stages: Vec<String> = [
            ("generate", "stage_generate_ns"),
            ("execute", "stage_execute_ns"),
            ("oracle", "stage_oracle_ns"),
            ("metrics", "stage_metrics_ns"),
            ("mutation", "stage_mutation_ns"),
        ]
        .iter()
        .filter_map(|&(label, name)| {
            let ns = self.wall_clock.counter_value(name);
            (ns > 0).then(|| format!("{label} {}", fmt_ns(ns)))
        })
        .collect();
        if !stages.is_empty() {
            let busy = self.wall_clock.counter_value("worker_busy_ns");
            let busy = if busy > 0 {
                format!(" | workers busy {}", fmt_ns(busy))
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "driver stages (wall-clock): {}{busy}",
                stages.join(" | "),
            );
        }
        out
    }

    /// Park handoffs per explored seed, rounded up — the regression-guard
    /// number (ROADMAP's "~57 futex handoffs/seed" as a tracked counter).
    /// 0 when no seed was recorded.
    #[must_use]
    pub fn parks_per_seed(&self) -> u64 {
        let parks = self.wall_clock.counter_value("sched_parks");
        let seeds = self
            .deterministic
            .counter_value("seeds_crashfree")
            .saturating_add(self.deterministic.counter_value("seeds_crash"));
        if seeds == 0 {
            0
        } else {
            parks.div_ceil(seeds)
        }
    }
}

/// Serializes a `metrics.json` document. With `include_wall_clock` the
/// document carries both sets; without it (the `metrics_merge`
/// normalization) only the deterministic set, so merged shard unions
/// compare byte-for-byte against the merged unsharded run.
#[must_use]
pub fn metrics_json(metrics: &SweepMetrics, seeds: u64, include_wall_clock: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{METRICS_SCHEMA}\",");
    let _ = writeln!(out, "  \"seeds\": {seeds},");
    let _ = writeln!(out, "  \"deterministic\":");
    metrics.deterministic.write_json(&mut out, "  ");
    let _ = writeln!(out, ",");
    let _ = writeln!(out, "  \"critical_path\":");
    metrics.critical_path.write_json(&mut out, "  ");
    if include_wall_clock {
        let _ = writeln!(out, ",");
        let _ = writeln!(out, "  \"wall_clock\":");
        metrics.wall_clock.write_json(&mut out, "  ");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "}}");
    out
}

/// Parses a `metrics.json` document (either shape — the `wall_clock`
/// section is optional and reads back empty when absent). Returns the
/// seed count and the metrics.
///
/// # Errors
///
/// A human-readable message when the text is not a metrics document.
pub fn parse_metrics_json(text: &str) -> Result<(u64, SweepMetrics), String> {
    let doc = json::parse(text)?;
    json::expect_schema(&doc, METRICS_SCHEMA)?;
    let seeds = doc
        .get("seeds")
        .and_then(Value::as_u64)
        .ok_or("missing \"seeds\"")?;
    let deterministic = MetricSet::from_json_value(
        doc.get("deterministic")
            .ok_or("missing \"deterministic\"")?,
    )?;
    // Optional sections: pre-span documents lack `critical_path`, and
    // merge-normalized documents lack `wall_clock` — both read back empty.
    let optional = |name: &str| match doc.get(name) {
        Some(v) => MetricSet::from_json_value(v),
        None => Ok(MetricSet::new()),
    };
    let critical_path = optional("critical_path")?;
    let wall_clock = optional("wall_clock")?;
    Ok((
        seeds,
        SweepMetrics {
            deterministic,
            critical_path,
            wall_clock,
        },
    ))
}

/// Virtual-time pretty printer for human summaries (never used in
/// serialized output, which stays integer-only).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Pre-registered histogram handles plus reusable correlation scratch: the
/// per-worker metrics recorder stored in
/// [`ExecutionArena`](crate::arena::ExecutionArena). Registration happens
/// once at construction; recording a run is pure handle indexing over
/// warmed scratch maps, so steady-state sweeps add no allocations to the
/// pinned per-seed budget.
#[derive(Debug)]
pub struct MetricsRecorder {
    metrics: SweepMetrics,
    resolution_crashfree: HistogramHandle,
    resolution_crash: HistogramHandle,
    resolution_rounds: HistogramHandle,
    exit_round: HistogramHandle,
    signal_fanout: HistogramHandle,
    object_wait: HistogramHandle,
    crash_detect: HistogramHandle,
    rejoin_restart: HistogramHandle,
    rejoin_catchup: HistogramHandle,
    run_virtual: HistogramHandle,
    // Per-run correlation scratch, cleared (capacity kept) between runs.
    first_raise: HashMap<u64, u64>,
    first_resolved: HashMap<u64, u64>,
    resolved_rounds: HashMap<(u64, u32), u64>,
    rounds_max: HashMap<u64, u64>,
    exit_open: HashMap<(u64, u32), u64>,
    rejoin_open: HashMap<(u64, u32), u64>,
    fanout: HashMap<u64, u64>,
    crashes: Vec<(u32, u64)>,
    detected: HashSet<(u32, u32)>,
    cp_scratch: CriticalPathScratch,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder::new()
    }
}

impl MetricsRecorder {
    /// A recorder with every histogram pre-registered.
    #[must_use]
    pub fn new() -> MetricsRecorder {
        let mut metrics = SweepMetrics::default();
        let det = &mut metrics.deterministic;
        let resolution_crashfree = det.histogram("resolution_latency_crashfree_ns");
        let resolution_crash = det.histogram("resolution_latency_crash_ns");
        let resolution_rounds = det.histogram("resolution_rounds");
        let exit_round = det.histogram("exit_round_ns");
        let signal_fanout = det.histogram("signal_fanout");
        let object_wait = det.histogram("object_wait_ns");
        let crash_detect = det.histogram("crash_detect_ns");
        let rejoin_restart = det.histogram("rejoin_restart_ns");
        let rejoin_catchup = det.histogram("rejoin_catchup_ns");
        let run_virtual = det.histogram("run_virtual_ns");
        MetricsRecorder {
            metrics,
            resolution_crashfree,
            resolution_crash,
            resolution_rounds,
            exit_round,
            signal_fanout,
            object_wait,
            crash_detect,
            rejoin_restart,
            rejoin_catchup,
            run_virtual,
            first_raise: HashMap::new(),
            first_resolved: HashMap::new(),
            resolved_rounds: HashMap::new(),
            rounds_max: HashMap::new(),
            exit_open: HashMap::new(),
            rejoin_open: HashMap::new(),
            fanout: HashMap::new(),
            crashes: Vec::new(),
            detected: HashSet::new(),
            cp_scratch: CriticalPathScratch::new(),
        }
    }

    /// Adds `n` to the wall-clock counter labeled `name` — the hook the
    /// sweep/fuzz drivers use for their stage timers and
    /// worker-utilization counters (never part of byte-identity claims).
    pub fn add_wall(&mut self, name: &str, n: u64) {
        self.metrics.wall_clock.add_named(name, n);
    }

    /// The metrics accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> &SweepMetrics {
        &self.metrics
    }

    /// Takes the accumulated metrics, leaving the recorder empty (handles
    /// and scratch capacity intact) — the end-of-worker merge hook.
    #[must_use]
    pub fn take_metrics(&mut self) -> SweepMetrics {
        std::mem::take(&mut self.metrics)
    }

    /// Extracts one run's metrics from its artifacts: a single pass over
    /// the canonical trace plus the report's counters. Purely a read —
    /// the artifacts (and their rendered bytes) are untouched.
    pub fn record_run(&mut self, artifacts: &RunArtifacts) {
        self.first_raise.clear();
        self.first_resolved.clear();
        self.resolved_rounds.clear();
        self.rounds_max.clear();
        self.exit_open.clear();
        self.rejoin_open.clear();
        self.fanout.clear();
        self.crashes.clear();
        self.detected.clear();

        for entry in artifacts.trace.entries() {
            match &entry.kind {
                EntryKind::Runtime(event) => {
                    let serial = event.action.serial();
                    let thread = event.thread.as_u32();
                    let at = entry.at_ns;
                    match &event.kind {
                        EventKind::Raise { .. } => {
                            self.first_raise.entry(serial).or_insert(at);
                        }
                        EventKind::Resolved { .. } => {
                            self.first_resolved.entry(serial).or_insert(at);
                            *self.resolved_rounds.entry((serial, thread)).or_insert(0) += 1;
                        }
                        EventKind::ExitStart { .. } => {
                            self.exit_open.insert((serial, thread), at);
                        }
                        EventKind::Exit { .. } => {
                            if let Some(start) = self.exit_open.remove(&(serial, thread)) {
                                self.metrics
                                    .deterministic
                                    .record(self.exit_round, at.saturating_sub(start));
                            }
                            if let Some(readmitted) = self.rejoin_open.remove(&(serial, thread)) {
                                self.metrics
                                    .deterministic
                                    .record(self.rejoin_catchup, at.saturating_sub(readmitted));
                            }
                        }
                        EventKind::ObjectAcquired { waited_ns, .. } => {
                            self.metrics
                                .deterministic
                                .record(self.object_wait, *waited_ns);
                        }
                        EventKind::Crash => {
                            self.crashes.push((thread, at));
                        }
                        // Only the joiner's own Rejoin event opens the
                        // catch-up window; survivor-side adoptions of the
                        // same readmission are echoes of one handshake.
                        EventKind::Rejoin {
                            thread: rejoiner, ..
                        } if rejoiner.as_u32() == thread => {
                            self.rejoin_open.insert((serial, thread), at);
                            if let Some(&(_, crash_at)) = self
                                .crashes
                                .iter()
                                .rev()
                                .find(|&&(crashed, _)| crashed == thread)
                            {
                                self.metrics
                                    .deterministic
                                    .record(self.rejoin_restart, at.saturating_sub(crash_at));
                            }
                        }
                        EventKind::ResolutionTimeout { .. } => {
                            self.metrics
                                .deterministic
                                .add_named("suspicion_resolution", 1);
                        }
                        EventKind::SignalTimeout { .. } => {
                            self.metrics
                                .deterministic
                                .add_named("suspicion_signalling", 1);
                        }
                        EventKind::ExitTimeout { .. } => {
                            self.metrics.deterministic.add_named("suspicion_exit", 1);
                        }
                        EventKind::ViewChange { removed, .. } => {
                            for &(crashed, crash_at) in &self.crashes {
                                if removed.iter().any(|t| t.as_u32() == crashed)
                                    && self.detected.insert((crashed, thread))
                                {
                                    self.metrics
                                        .deterministic
                                        .record(self.crash_detect, at.saturating_sub(crash_at));
                                }
                            }
                        }
                        _ => {}
                    }
                }
                EntryKind::NetSent(tap) if tap.class == "toBeSignalled" => {
                    *self.fanout.entry(tap.correlation).or_insert(0) += 1;
                }
                _ => {}
            }
        }

        // Fold the per-run correlation maps into the histograms. Map
        // iteration order is arbitrary, which is fine: histogram recording
        // is commutative, and the serialized form is order-independent.
        let crashed_plan = !artifacts.plan.crashes.is_empty();
        let latency_hist = if crashed_plan {
            self.resolution_crash
        } else {
            self.resolution_crashfree
        };
        for (&serial, &resolved_at) in &self.first_resolved {
            if let Some(&raised_at) = self.first_raise.get(&serial) {
                self.metrics
                    .deterministic
                    .record(latency_hist, resolved_at.saturating_sub(raised_at));
            }
        }
        for (&(serial, _), &rounds) in &self.resolved_rounds {
            let max = self.rounds_max.entry(serial).or_insert(0);
            *max = (*max).max(rounds);
        }
        for &rounds in self.rounds_max.values() {
            self.metrics
                .deterministic
                .record(self.resolution_rounds, rounds);
        }
        for &n in self.fanout.values() {
            self.metrics.deterministic.record(self.signal_fanout, n);
        }
        self.metrics
            .deterministic
            .record(self.run_virtual, artifacts.report.elapsed.as_nanos());

        let seed_class = if crashed_plan {
            "seeds_crash"
        } else {
            "seeds_crashfree"
        };
        self.metrics.deterministic.add_named(seed_class, 1);
        self.record_net_stats(&artifacts.report.net_stats);
        self.record_sched_stats(artifacts.report.sched_stats);

        // Critical-path attribution: walk the causal graph once per
        // resolved instance (virtual-time facts only, so the counters
        // stay byte-deterministic and shard-mergeable). Zero-valued
        // classes are skipped so absent segment kinds never register.
        let cp = &mut self.metrics.critical_path;
        self.cp_scratch.extract(&artifacts.trace, |path| {
            for class in SegmentClass::ALL {
                let ns = path.class_total_ns(class);
                if ns > 0 {
                    cp.add_named(class.counter_name(), ns);
                }
            }
            cp.add_named("cp_total_ns", path.total_ns());
            cp.add_named("cp_instances", 1);
        });
    }

    /// Folds per-class message counters into the deterministic set
    /// (`msg_sent_<class>` in the serialized form).
    fn record_net_stats(&mut self, stats: &NetStats) {
        // Cold path only on the first sight of a class label (there are
        // eight); afterwards `add_named` is a map hit, no allocation.
        for (class, sent) in stats.iter_sent() {
            let mut name = String::with_capacity("msg_sent_".len() + class.len());
            name.push_str("msg_sent_");
            name.push_str(class);
            self.metrics.deterministic.add_named(&name, sent);
        }
        if stats.retransmissions() > 0 {
            self.metrics
                .deterministic
                .add_named("retransmissions", stats.retransmissions());
        }
    }

    /// Folds the scheduler handoff counters into the wall-clock set.
    fn record_sched_stats(&mut self, stats: SchedStats) {
        self.metrics
            .wall_clock
            .add_named("sched_parks", stats.parks);
        self.metrics
            .wall_clock
            .add_named("sched_wakes", stats.wakes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ExecutionArena;
    use crate::exec::execute_in;
    use crate::plan::{ScenarioConfig, ScenarioPlan};

    fn record_seed(recorder: &mut MetricsRecorder, seed: u64, scenario: &ScenarioConfig) {
        let mut arena = ExecutionArena::new();
        let plan = ScenarioPlan::generate(seed, scenario);
        let artifacts = execute_in(&plan, &mut arena);
        recorder.record_run(&artifacts);
    }

    #[test]
    fn records_protocol_latencies_and_counters() {
        let mut recorder = MetricsRecorder::new();
        for seed in 0..24 {
            record_seed(&mut recorder, seed, &ScenarioConfig::default());
        }
        let m = recorder.metrics();
        let runs = m.deterministic.histogram_named("run_virtual_ns").unwrap();
        assert_eq!(runs.count(), 24);
        assert!(runs.max() > 0, "virtual time must elapse");
        let latency = m
            .deterministic
            .histogram_named("resolution_latency_crashfree_ns")
            .unwrap();
        let crash_latency = m
            .deterministic
            .histogram_named("resolution_latency_crash_ns")
            .unwrap();
        assert!(
            latency.count() + crash_latency.count() > 0,
            "24 default seeds must resolve at least one exception"
        );
        assert!(m.deterministic.counter_value("msg_sent_Exception") > 0);
        assert!(m.wall_clock.counter_value("sched_parks") > 0);
        // Critical-path attribution: every resolved instance contributes
        // a path whose segments sum to its latency, so the aggregate
        // totals couple exactly to the latency histograms.
        assert_eq!(
            m.critical_path.counter_value("cp_instances"),
            latency.count() + crash_latency.count(),
        );
        assert_eq!(
            u128::from(m.critical_path.counter_value("cp_total_ns")),
            latency.sum() + crash_latency.sum(),
        );
        let class_sum: u64 = crate::spans::SegmentClass::ALL
            .iter()
            .map(|c| m.critical_path.counter_value(c.counter_name()))
            .sum();
        assert_eq!(class_sum, m.critical_path.counter_value("cp_total_ns"));
        let summary = m.summary();
        assert!(summary.contains("messages sent:"), "{summary}");
        assert!(summary.contains("sched handoffs"), "{summary}");
        assert!(summary.contains("critical path ("), "{summary}");
    }

    #[test]
    fn json_round_trips_and_shard_merge_is_byte_identical() {
        let scenario = ScenarioConfig::default();
        let mut whole = MetricsRecorder::new();
        let mut shard_a = MetricsRecorder::new();
        let mut shard_b = MetricsRecorder::new();
        for seed in 0..12 {
            record_seed(&mut whole, seed, &scenario);
            if seed % 2 == 0 {
                record_seed(&mut shard_a, seed, &scenario);
            } else {
                record_seed(&mut shard_b, seed, &scenario);
            }
        }
        let whole = whole.take_metrics();
        let mut merged = shard_a.take_metrics();
        merged.merge(&shard_b.take_metrics());
        // The deterministic sections agree byte-for-byte; the wall-clock
        // sections need not (host-scheduler dependent), which is exactly
        // why the merge normalization drops them.
        assert_eq!(
            metrics_json(&merged, 12, false),
            metrics_json(&whole, 12, false)
        );
        let doc = metrics_json(&whole, 12, true);
        let (seeds, parsed) = parse_metrics_json(&doc).expect("parse own doc");
        assert_eq!(seeds, 12);
        assert_eq!(metrics_json(&parsed, seeds, true), doc);
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(parse_metrics_json("{}").is_err());
        assert!(parse_metrics_json(r#"{"schema": "other/v9", "seeds": 1}"#).is_err());
    }
}
