//! Per-worker execution arenas: allocation reuse across sweep seeds.
//!
//! A sweep explores thousands of independent simulations, each lasting a
//! fraction of a millisecond; before arenas, every seed rebuilt the
//! network (actor slots, per-endpoint delivery heaps, the per-pair link
//! matrix), the trace buffers and each action's resolution lattice from
//! scratch — setup/teardown churn dominating the actual protocol work.
//! An [`ExecutionArena`] is the per-worker recycling bin for all of it:
//!
//! * the **network arena** ([`caa_simnet::NetArena`]): actor slots with
//!   their condvars, mailbox heaps and link rows, reclaimed by
//!   [`System::run_reclaiming`](caa_runtime::System::run_reclaiming) and
//!   fed back through
//!   [`SystemBuilder::net_arena`](caa_runtime::SystemBuilder::net_arena);
//! * **trace buffers**: entry vectors handed back by
//!   [`ExecutionArena::recycle_trace`] once a seed's trace has been
//!   checked, so steady-state recording allocates nothing;
//! * the **graph cache**: conjunction lattices are pure functions of an
//!   action's declared exceptions, and scenario generation draws those
//!   from a small space — the cache turns per-seed lattice construction
//!   into a lookup.
//!
//! Arenas are a pure allocation cache: executing a plan through an arena
//! renders the byte-identical trace a fresh execution renders (the
//! allocation-regression test and the 12k-seed hash gate both pin this).
//! An arena is single-threaded state — each sweep worker owns one.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use caa_core::exception::ExceptionId;
use caa_core::message::Message;
use caa_exgraph::generate::conjunction_lattice;
use caa_exgraph::ExceptionGraph;
use caa_simnet::NetArena;

use crate::metrics::{MetricsRecorder, SweepMetrics};
use crate::trace::{Entry, Trace, TraceRecorder};

/// How many recycled trace buffers an arena keeps. An execution uses one
/// buffer; a replay-checked seed uses two in flight. Anything beyond that
/// is dead weight.
const MAX_TRACE_BUFS: usize = 2;

/// Reusable execution state for one sweep worker (see the module docs).
///
/// # Examples
///
/// ```
/// use caa_harness::arena::ExecutionArena;
/// use caa_harness::exec::execute_in;
/// use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
///
/// let mut arena = ExecutionArena::new();
/// let plan = ScenarioPlan::generate(7, &ScenarioConfig::default());
/// let first = execute_in(&plan, &mut arena);
/// let first_render = first.trace.render();
/// arena.recycle_trace(first.trace);
/// // The second execution reuses the network, trace and graph
/// // allocations — and renders the byte-identical trace.
/// let second = execute_in(&plan, &mut arena);
/// assert_eq!(second.trace.render(), first_render);
/// ```
#[derive(Default)]
pub struct ExecutionArena {
    net: Option<NetArena<Message>>,
    trace_bufs: Vec<Vec<Entry>>,
    /// High-water entry count, used to pre-size a fresh buffer when no
    /// recycled one is available.
    trace_capacity: usize,
    /// Resolution lattices keyed by `(action name, group)` — the inputs
    /// that determine an action's declared exceptions.
    graphs: HashMap<String, Arc<ExceptionGraph>>,
    /// Reusable key buffer for graph lookups.
    graph_key: String,
    /// Per-worker metrics recorder: pre-registered histogram handles plus
    /// reusable correlation scratch, so per-seed metric extraction is
    /// allocation-free in steady state (see [`crate::metrics`]).
    metrics: MetricsRecorder,
}

impl std::fmt::Debug for ExecutionArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionArena")
            .field("net", &self.net.is_some())
            .field("trace_bufs", &self.trace_bufs.len())
            .field("trace_capacity", &self.trace_capacity)
            .field("graphs", &self.graphs.len())
            .finish()
    }
}

impl ExecutionArena {
    /// An empty arena; warms up over the first seed or two.
    #[must_use]
    pub fn new() -> ExecutionArena {
        ExecutionArena::default()
    }

    /// An empty arena whose first trace buffer is pre-sized to `entries`
    /// (the legacy `execute_with_capacity` hint).
    #[must_use]
    pub fn with_trace_capacity(entries: usize) -> ExecutionArena {
        ExecutionArena {
            trace_capacity: entries,
            ..ExecutionArena::default()
        }
    }

    /// Hands a finished trace's entry buffer back for the next execution.
    /// Call it once a seed's trace has been checked and is no longer
    /// needed; traces kept alive (violating seeds, golden comparisons)
    /// simply are not recycled.
    pub fn recycle_trace(&mut self, trace: Trace) {
        let entries = trace.into_entries();
        self.trace_capacity = self.trace_capacity.max(entries.len());
        if self.trace_bufs.len() < MAX_TRACE_BUFS {
            self.trace_bufs.push(entries);
        }
    }

    /// A recorder for the next execution: recycled buffer if available,
    /// else a fresh one sized to the high-water mark.
    pub(crate) fn recorder(&mut self) -> Arc<TraceRecorder> {
        match self.trace_bufs.pop() {
            Some(buf) => TraceRecorder::with_buffer(buf),
            None => TraceRecorder::with_capacity(self.trace_capacity),
        }
    }

    /// The recycled network arena, if the previous execution reclaimed
    /// one.
    pub(crate) fn take_net(&mut self) -> Option<NetArena<Message>> {
        self.net.take()
    }

    /// Stores a reclaimed network arena for the next execution.
    pub(crate) fn put_net(&mut self, net: NetArena<Message>) {
        self.net = Some(net);
    }

    /// The conjunction lattice over `group`'s raise exceptions in action
    /// `name` — cached across seeds (the lattice is a pure function of
    /// the key). `prims` builds the exception list on a cache miss.
    pub(crate) fn graph_for(
        &mut self,
        name: &str,
        group: &[u32],
        prims: impl FnOnce() -> Vec<ExceptionId>,
    ) -> Arc<ExceptionGraph> {
        self.graph_key.clear();
        self.graph_key.push_str(name);
        for &t in group {
            let _ = write!(self.graph_key, ",{t}");
        }
        if let Some(graph) = self.graphs.get(&self.graph_key) {
            return Arc::clone(graph);
        }
        let prims = prims();
        let graph = Arc::new(
            conjunction_lattice(&prims, 2.min(prims.len()))
                .expect("per-action raise exceptions are nonempty and distinct"),
        );
        self.graphs
            .insert(self.graph_key.clone(), Arc::clone(&graph));
        graph
    }

    /// The per-worker metrics recorder (mutable: seed runners record each
    /// explored seed's artifacts through it).
    pub fn metrics_recorder(&mut self) -> &mut MetricsRecorder {
        &mut self.metrics
    }

    /// The metrics accumulated by every seed run through this arena.
    #[must_use]
    pub fn metrics(&self) -> &SweepMetrics {
        self.metrics.metrics()
    }

    /// Takes the accumulated metrics for merging into a sweep-wide set,
    /// leaving the recorder's handles and scratch capacity in place.
    #[must_use]
    pub fn take_metrics(&mut self) -> SweepMetrics {
        self.metrics.take_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_cache_hits_on_same_key() {
        let mut arena = ExecutionArena::new();
        let prims = || vec![ExceptionId::new("a0_e0"), ExceptionId::new("a0_e1")];
        let g1 = arena.graph_for("a0", &[0, 1], prims);
        let g2 = arena.graph_for("a0", &[0, 1], prims);
        assert!(Arc::ptr_eq(&g1, &g2), "same key must share one lattice");
        let g3 = arena.graph_for("a0", &[0, 2], || {
            vec![ExceptionId::new("a0_e0"), ExceptionId::new("a0_e2")]
        });
        assert!(!Arc::ptr_eq(&g1, &g3), "different groups, different graphs");
    }

    #[test]
    fn trace_buffers_recycle_up_to_the_cap() {
        let mut arena = ExecutionArena::new();
        for _ in 0..4 {
            arena.recycle_trace(Trace::default());
        }
        assert!(arena.trace_bufs.len() <= MAX_TRACE_BUFS);
    }
}
