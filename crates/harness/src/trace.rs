//! Structured trace recording.
//!
//! A [`TraceRecorder`] implements both the runtime's
//! [`caa_runtime::observe::Observer`] hook and the network's
//! [`caa_simnet::NetTap`] hook, collecting every protocol-level
//! step and every message send/loss/corruption of one simulated run. Events
//! arrive from the participating OS threads in arbitrary wall-clock order;
//! [`TraceRecorder::finish`] sorts them into the canonical order
//! `(virtual time, thread, per-thread sequence)`, which is fully
//! deterministic for a deterministic run — the same seed renders the same
//! byte-identical trace, which is exactly what the deterministic-replay
//! oracle checks.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

use caa_runtime::observe::{Event, Observer};
use caa_simnet::{NetTap, TapEvent};
use parking_lot::Mutex;

/// What one trace entry records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryKind {
    /// A runtime protocol step (entry/exit, raise, resolution, handler,
    /// signalling, abortion).
    Runtime(Event),
    /// A message accepted by the network.
    NetSent(TapEvent),
    /// A message lost by fault injection.
    NetDropped(TapEvent),
    /// A message corrupted by fault injection.
    NetCorrupted(TapEvent),
}

/// One entry of a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Virtual timestamp in nanoseconds.
    pub at_ns: u64,
    /// The thread (partition) the entry originates from.
    pub thread: u32,
    /// Per-thread sequence number (program order within the thread).
    pub seq: u64,
    /// The recorded step.
    pub kind: EntryKind,
}

impl Entry {
    /// The action-instance serial this entry refers to.
    #[must_use]
    pub fn action_serial(&self) -> u64 {
        match &self.kind {
            EntryKind::Runtime(e) => e.action.serial(),
            EntryKind::NetSent(e) | EntryKind::NetDropped(e) | EntryKind::NetCorrupted(e) => {
                e.correlation
            }
        }
    }

    /// Renders one line. `act` is the canonical (run-independent) label of
    /// the entry's action instance: raw instance serials incorporate
    /// process-global definition ids and would differ between two
    /// executions of the same seed.
    fn render(&self, out: &mut String, act: usize) {
        let _ = write!(
            out,
            "@{:>12} T{} #{:<4} A{act} ",
            self.at_ns, self.thread, self.seq
        );
        match &self.kind {
            EntryKind::Runtime(e) => {
                let _ = write!(out, "{}", e.kind);
            }
            EntryKind::NetSent(e) => {
                let _ = write!(
                    out,
                    "net send {} {}->{} seq={} deliver@{}",
                    e.class,
                    e.src,
                    e.dst,
                    e.seq,
                    e.deliver_at.as_nanos()
                );
            }
            EntryKind::NetDropped(e) => {
                let _ = write!(out, "net drop {} {}->{}", e.class, e.src, e.dst);
            }
            EntryKind::NetCorrupted(e) => {
                let _ = write!(out, "net corrupt {} {}->{}", e.class, e.src, e.dst);
            }
        }
        out.push('\n');
    }
}

/// A completed, canonically ordered trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<Entry>,
}

impl Trace {
    /// The entries in canonical order.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The runtime events of the trace, in canonical order.
    pub fn runtime_events(&self) -> impl Iterator<Item = &Event> {
        self.entries.iter().filter_map(|e| match &e.kind {
            EntryKind::Runtime(ev) => Some(ev),
            _ => None,
        })
    }

    /// The network send events of the trace, in canonical order.
    pub fn net_sends(&self) -> impl Iterator<Item = &TapEvent> {
        self.entries.iter().filter_map(|e| match &e.kind {
            EntryKind::NetSent(ev) => Some(ev),
            _ => None,
        })
    }

    /// Dense, run-independent labels for the trace's action instances,
    /// assigned in canonical-order of first appearance — the `A<n>` labels
    /// used by [`Trace::render`] and by oracle violation reports.
    #[must_use]
    pub fn canonical_labels(&self) -> HashMap<u64, usize> {
        let mut canonical: HashMap<u64, usize> = HashMap::new();
        for entry in &self.entries {
            let next = canonical.len();
            canonical.entry(entry.action_serial()).or_insert(next);
        }
        canonical
    }

    /// Renders the whole trace as text: one line per entry, byte-identical
    /// across replays of the same seed. Action-instance serials are
    /// replaced by dense labels assigned in canonical-order of first
    /// appearance ([`Trace::canonical_labels`]), so the rendering is
    /// independent of process-global definition-id state.
    #[must_use]
    pub fn render(&self) -> String {
        let canonical = self.canonical_labels();
        let mut out = String::with_capacity(self.entries.len() * 64);
        for entry in &self.entries {
            entry.render(&mut out, canonical[&entry.action_serial()]);
        }
        out
    }

    /// Renders the timestamp-free, per-thread *protocol projection*: each
    /// thread's sequence of runtime protocol steps, with canonical action
    /// labels, no virtual times and no network events.
    ///
    /// Every supported system — harness scenarios and the production cell
    /// alike — now replays byte-identically under [`Trace::render`]
    /// (shared-object acquisition is arbitrated deterministically through
    /// the simulation). The projection survives as a triage tool: when a
    /// future regression makes full traces diverge, comparing projections
    /// tells apart timing-only drift from genuine protocol divergence.
    #[must_use]
    pub fn protocol_projection(&self) -> String {
        let mut per_thread: BTreeMap<u32, Vec<&Entry>> = BTreeMap::new();
        for entry in &self.entries {
            if matches!(entry.kind, EntryKind::Runtime(_)) {
                per_thread.entry(entry.thread).or_default().push(entry);
            }
        }
        for entries in per_thread.values_mut() {
            entries.sort_by_key(|e| e.seq);
        }
        let mut canonical: HashMap<u64, usize> = HashMap::new();
        let mut out = String::with_capacity(self.entries.len() * 32);
        for (thread, entries) in &per_thread {
            for entry in entries {
                let next = canonical.len();
                let act = *canonical.entry(entry.action_serial()).or_insert(next);
                if let EntryKind::Runtime(e) = &entry.kind {
                    let _ = writeln!(out, "T{thread} A{act} {}", e.kind);
                }
            }
        }
        out
    }
}

/// FNV-1a 64-bit over arbitrary bytes: the canonical, dependency-free
/// fingerprint for rendered traces. The golden-trace regression test and
/// the `trace_hashes` pre/post comparison tool both hash
/// [`Trace::render`] output through this exact function — fingerprints
/// from different tools stay comparable.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Default)]
struct RecorderState {
    entries: Vec<Entry>,
    next_seq: HashMap<u32, u64>,
}

/// Collects runtime and network events from a running system.
///
/// Attach one recorder as both the system's observer and its network tap:
///
/// ```
/// use std::sync::Arc;
/// use caa_harness::trace::TraceRecorder;
/// use caa_runtime::System;
///
/// let recorder = Arc::new(TraceRecorder::default());
/// let sys = System::builder()
///     .observer(Arc::clone(&recorder) as _)
///     .tap(Arc::clone(&recorder) as _)
///     .build();
/// # drop(sys);
/// ```
#[derive(Default)]
pub struct TraceRecorder {
    state: Mutex<RecorderState>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("entries", &self.state.lock().entries.len())
            .finish()
    }
}

impl TraceRecorder {
    /// A fresh recorder behind an `Arc`, ready to attach.
    #[must_use]
    pub fn new() -> Arc<TraceRecorder> {
        Arc::new(TraceRecorder::default())
    }

    /// A fresh recorder with `entries` preallocated — sweep drivers pass
    /// the previous run's trace size so steady-state recording never
    /// reallocates mid-run.
    #[must_use]
    pub fn with_capacity(entries: usize) -> Arc<TraceRecorder> {
        Arc::new(TraceRecorder {
            state: Mutex::new(RecorderState {
                entries: Vec::with_capacity(entries),
                next_seq: HashMap::new(),
            }),
        })
    }

    fn push(&self, at_ns: u64, thread: u32, kind: EntryKind) {
        let mut state = self.state.lock();
        let seq = state.next_seq.entry(thread).or_insert(0);
        let seq_now = *seq;
        *seq += 1;
        state.entries.push(Entry {
            at_ns,
            thread,
            seq: seq_now,
            kind,
        });
    }

    /// Extracts the canonical trace recorded so far.
    #[must_use]
    pub fn finish(&self) -> Trace {
        let mut entries = self.state.lock().entries.clone();
        entries.sort_by_key(|e| (e.at_ns, e.thread, e.seq));
        Trace { entries }
    }

    /// Like [`TraceRecorder::finish`], but *takes* the recorded entries
    /// instead of cloning them — the cheap path for run drivers that are
    /// done with the recorder.
    #[must_use]
    pub fn take_trace(&self) -> Trace {
        let mut entries = std::mem::take(&mut self.state.lock().entries);
        entries.sort_by_key(|e| (e.at_ns, e.thread, e.seq));
        Trace { entries }
    }
}

impl Observer for TraceRecorder {
    fn on_event(&self, event: &Event) {
        self.push(
            event.at.as_nanos(),
            event.thread.as_u32(),
            EntryKind::Runtime(event.clone()),
        );
    }
}

impl NetTap for TraceRecorder {
    fn on_sent(&self, event: &TapEvent) {
        self.push(
            event.at.as_nanos(),
            event.src.as_u32(),
            EntryKind::NetSent(event.clone()),
        );
    }

    fn on_dropped(&self, event: &TapEvent) {
        self.push(
            event.at.as_nanos(),
            event.src.as_u32(),
            EntryKind::NetDropped(event.clone()),
        );
    }

    fn on_corrupted(&self, event: &TapEvent) {
        self.push(
            event.at.as_nanos(),
            event.src.as_u32(),
            EntryKind::NetCorrupted(event.clone()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caa_core::exception::ExceptionId;
    use caa_core::ids::{ActionId, PartitionId, ThreadId};
    use caa_core::time::VirtualInstant;
    use caa_runtime::observe::EventKind;

    fn runtime_event(at: u64, thread: u32) -> Event {
        Event {
            at: VirtualInstant::from_nanos(at),
            thread: ThreadId::new(thread),
            action: ActionId::top_level(5),
            kind: EventKind::Raise {
                exception: ExceptionId::new("x"),
            },
        }
    }

    #[test]
    fn canonical_order_sorts_by_time_thread_seq() {
        let rec = TraceRecorder::new();
        rec.on_event(&runtime_event(200, 1));
        rec.on_event(&runtime_event(100, 1));
        rec.on_event(&runtime_event(100, 0));
        let trace = rec.finish();
        let keys: Vec<(u64, u32)> = trace
            .entries()
            .iter()
            .map(|e| (e.at_ns, e.thread))
            .collect();
        assert_eq!(keys, vec![(100, 0), (100, 1), (200, 1)]);
        // Per-thread sequence numbers preserve arrival (program) order:
        // thread 1 recorded its @200 event before its @100 event.
        assert_eq!(trace.entries()[1].seq, 1);
        assert_eq!(trace.entries()[2].seq, 0);
    }

    #[test]
    fn render_is_stable_and_line_oriented() {
        let rec = TraceRecorder::new();
        rec.on_event(&runtime_event(1, 0));
        rec.on_sent(&TapEvent {
            src: PartitionId::new(0),
            dst: PartitionId::new(1),
            class: "Exception",
            correlation: 9,
            at: VirtualInstant::from_nanos(2),
            deliver_at: VirtualInstant::from_nanos(7),
            seq: 0,
        });
        let trace = rec.finish();
        let text = trace.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("raise x"), "{text}");
        assert!(text.contains("net send Exception"), "{text}");
        assert_eq!(text, rec.finish().render());
    }
}
