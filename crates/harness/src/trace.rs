//! Structured trace recording.
//!
//! A [`TraceRecorder`] implements both the runtime's
//! [`caa_runtime::observe::Observer`] hook and the network's
//! [`caa_simnet::NetTap`] hook, collecting every protocol-level
//! step and every message send/loss/corruption of one simulated run. Events
//! arrive from the participating OS threads in arbitrary wall-clock order;
//! [`TraceRecorder::finish`] sorts them into the canonical order
//! `(virtual time, thread, per-thread sequence)`, which is fully
//! deterministic for a deterministic run — the same seed renders the same
//! byte-identical trace, which is exactly what the deterministic-replay
//! oracle checks.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

use caa_runtime::observe::{Event, Observer};
use caa_simnet::{NetTap, TapEvent};
use parking_lot::Mutex;

/// What one trace entry records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryKind {
    /// A runtime protocol step (entry/exit, raise, resolution, handler,
    /// signalling, abortion).
    Runtime(Event),
    /// A message accepted by the network.
    NetSent(TapEvent),
    /// A message lost by fault injection.
    NetDropped(TapEvent),
    /// A message corrupted by fault injection.
    NetCorrupted(TapEvent),
}

/// One entry of a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Virtual timestamp in nanoseconds.
    pub at_ns: u64,
    /// The thread (partition) the entry originates from.
    pub thread: u32,
    /// Per-thread sequence number (program order within the thread).
    pub seq: u64,
    /// The recorded step.
    pub kind: EntryKind,
}

impl Entry {
    /// The action-instance serial this entry refers to.
    #[must_use]
    pub fn action_serial(&self) -> u64 {
        match &self.kind {
            EntryKind::Runtime(e) => e.action.serial(),
            EntryKind::NetSent(e) | EntryKind::NetDropped(e) | EntryKind::NetCorrupted(e) => {
                e.correlation
            }
        }
    }

    /// Renders one line. `act` is the canonical (run-independent) label of
    /// the entry's action instance: raw instance serials incorporate
    /// process-global definition ids and would differ between two
    /// executions of the same seed.
    fn render(&self, out: &mut String, act: usize) {
        let _ = write!(
            out,
            "@{:>12} T{} #{:<4} A{act} ",
            self.at_ns, self.thread, self.seq
        );
        match &self.kind {
            EntryKind::Runtime(e) => {
                let _ = write!(out, "{}", e.kind);
            }
            EntryKind::NetSent(e) => {
                let _ = write!(
                    out,
                    "net send {} {}->{} seq={} deliver@{}",
                    e.class,
                    e.src,
                    e.dst,
                    e.seq,
                    e.deliver_at.as_nanos()
                );
            }
            EntryKind::NetDropped(e) => {
                let _ = write!(out, "net drop {} {}->{}", e.class, e.src, e.dst);
            }
            EntryKind::NetCorrupted(e) => {
                let _ = write!(out, "net corrupt {} {}->{}", e.class, e.src, e.dst);
            }
        }
        out.push('\n');
    }
}

/// A completed, canonically ordered trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<Entry>,
}

impl Trace {
    /// The entries in canonical order.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Consumes the trace, returning its entry buffer — the recycling hook
    /// for [`crate::arena::ExecutionArena`]: a sweep worker that is done
    /// with a trace hands the allocation back instead of dropping it.
    #[must_use]
    pub fn into_entries(self) -> Vec<Entry> {
        self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The runtime events of the trace, in canonical order.
    pub fn runtime_events(&self) -> impl Iterator<Item = &Event> {
        self.entries.iter().filter_map(|e| match &e.kind {
            EntryKind::Runtime(ev) => Some(ev),
            _ => None,
        })
    }

    /// The network send events of the trace, in canonical order.
    pub fn net_sends(&self) -> impl Iterator<Item = &TapEvent> {
        self.entries.iter().filter_map(|e| match &e.kind {
            EntryKind::NetSent(ev) => Some(ev),
            _ => None,
        })
    }

    /// Dense, run-independent labels for the trace's action instances,
    /// assigned in canonical-order of first appearance — the `A<n>` labels
    /// used by [`Trace::render`] and by oracle violation reports.
    #[must_use]
    pub fn canonical_labels(&self) -> HashMap<u64, usize> {
        let mut canonical: HashMap<u64, usize> = HashMap::new();
        for entry in &self.entries {
            let next = canonical.len();
            canonical.entry(entry.action_serial()).or_insert(next);
        }
        canonical
    }

    /// Renders the whole trace as text: one line per entry, byte-identical
    /// across replays of the same seed. Action-instance serials are
    /// replaced by dense labels assigned in canonical-order of first
    /// appearance ([`Trace::canonical_labels`]), so the rendering is
    /// independent of process-global definition-id state.
    #[must_use]
    pub fn render(&self) -> String {
        let canonical = self.canonical_labels();
        let mut out = String::with_capacity(self.entries.len() * 64);
        for entry in &self.entries {
            entry.render(&mut out, canonical[&entry.action_serial()]);
        }
        out
    }

    /// Streams the FNV-1a 64-bit fingerprint of [`Trace::render`] without
    /// materialising the rendered `String`: each entry renders into one
    /// reusable line buffer and folds into the running hash. By
    /// construction `trace.render_fingerprint() ==
    /// fnv1a64(trace.render().as_bytes())`, so fingerprints from hash-only
    /// sweeps (`trace_hashes`, the golden-trace test, pre/post refactor
    /// gates) stay comparable with fingerprints of rendered traces — at a
    /// fraction of the allocation cost for large traces.
    #[must_use]
    pub fn render_fingerprint(&self) -> u64 {
        let canonical = self.canonical_labels();
        let mut hash: u64 = FNV_OFFSET;
        let mut line = String::with_capacity(96);
        for entry in &self.entries {
            line.clear();
            entry.render(&mut line, canonical[&entry.action_serial()]);
            hash = fnv1a64_fold(hash, line.as_bytes());
        }
        hash
    }

    /// Streaming byte-exact comparison of two traces' renderings: returns
    /// the first (0-based) rendered line at which they differ, or `None`
    /// when the renderings are byte-identical. Equivalent to comparing
    /// [`Trace::render`] outputs line by line — but almost never formats
    /// anything: a structural fast path decides equality field-by-field
    /// (ignoring exactly the fields rendering ignores — raw action
    /// serials and tap correlations, which legitimately differ between
    /// two executions of one seed), and only a structurally-unequal pair
    /// falls back to rendering that single line pair to let
    /// display-equal-but-structurally-different entries through. The
    /// replay oracle's hot path thus stops materialising two full trace
    /// strings per seed.
    #[must_use]
    pub fn first_divergence(&self, other: &Trace) -> Option<usize> {
        // Canonical labels are assigned in first-appearance order, so they
        // can be built incrementally while walking the entries.
        let mut labels_a: HashMap<u64, usize> = HashMap::new();
        let mut labels_b: HashMap<u64, usize> = HashMap::new();
        let mut line_a = String::new();
        let mut line_b = String::new();
        let common = self.entries.len().min(other.entries.len());
        for i in 0..common {
            let (ea, eb) = (&self.entries[i], &other.entries[i]);
            let next = labels_a.len();
            let act_a = *labels_a.entry(ea.action_serial()).or_insert(next);
            let next = labels_b.len();
            let act_b = *labels_b.entry(eb.action_serial()).or_insert(next);
            // A differing label prints as a differing `A<n>` no matter
            // what else the line contains.
            if act_a != act_b {
                return Some(i);
            }
            if (ea.at_ns, ea.thread, ea.seq) == (eb.at_ns, eb.thread, eb.seq)
                && kinds_render_equal(&ea.kind, &eb.kind)
            {
                continue;
            }
            // Structurally unequal: confirm by rendering this line pair
            // (exact, and cold — replays of one seed are structurally
            // identical in practice).
            line_a.clear();
            line_b.clear();
            ea.render(&mut line_a, act_a);
            eb.render(&mut line_b, act_b);
            if line_a != line_b {
                return Some(i);
            }
        }
        (self.entries.len() != other.entries.len()).then_some(common)
    }

    /// Renders the timestamp-free, per-thread *protocol projection*: each
    /// thread's sequence of runtime protocol steps, with canonical action
    /// labels, no virtual times and no network events.
    ///
    /// Every supported system — harness scenarios and the production cell
    /// alike — now replays byte-identically under [`Trace::render`]
    /// (shared-object acquisition is arbitrated deterministically through
    /// the simulation). The projection survives as a triage tool: when a
    /// future regression makes full traces diverge, comparing projections
    /// tells apart timing-only drift from genuine protocol divergence.
    #[must_use]
    pub fn protocol_projection(&self) -> String {
        let mut per_thread: BTreeMap<u32, Vec<&Entry>> = BTreeMap::new();
        for entry in &self.entries {
            if matches!(entry.kind, EntryKind::Runtime(_)) {
                per_thread.entry(entry.thread).or_default().push(entry);
            }
        }
        for entries in per_thread.values_mut() {
            entries.sort_by_key(|e| e.seq);
        }
        let mut canonical: HashMap<u64, usize> = HashMap::new();
        let mut out = String::with_capacity(self.entries.len() * 32);
        for (thread, entries) in &per_thread {
            for entry in entries {
                let next = canonical.len();
                let act = *canonical.entry(entry.action_serial()).or_insert(next);
                if let EntryKind::Runtime(e) = &entry.kind {
                    let _ = writeln!(out, "T{thread} A{act} {}", e.kind);
                }
            }
        }
        out
    }
}

/// Whether two entry kinds render to identical text, decided structurally
/// (the sufficient direction: structural equality over every *rendered*
/// field implies display equality). Rendering ignores the runtime event's
/// raw `action` id and the tap event's `correlation` — both are
/// process-global serials that legitimately differ between two executions
/// of the same seed (the canonical `A<n>` labels compare them instead) —
/// so those fields are ignored here too.
fn kinds_render_equal(a: &EntryKind, b: &EntryKind) -> bool {
    let tap_eq = |x: &TapEvent, y: &TapEvent| {
        (x.class, x.src, x.dst, x.seq, x.deliver_at) == (y.class, y.src, y.dst, y.seq, y.deliver_at)
    };
    match (a, b) {
        (EntryKind::Runtime(x), EntryKind::Runtime(y)) => x.kind == y.kind,
        (EntryKind::NetSent(x), EntryKind::NetSent(y)) => tap_eq(x, y),
        (EntryKind::NetDropped(x), EntryKind::NetDropped(y))
        | (EntryKind::NetCorrupted(x), EntryKind::NetCorrupted(y)) => {
            (x.class, x.src, x.dst) == (y.class, y.src, y.dst)
        }
        _ => false,
    }
}

/// FNV-1a 64-bit over arbitrary bytes: the canonical, dependency-free
/// fingerprint for rendered traces. The golden-trace regression test and
/// the `trace_hashes` pre/post comparison tool both hash
/// [`Trace::render`] output through this exact function — fingerprints
/// from different tools stay comparable.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_fold(FNV_OFFSET, bytes)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a 64-bit hash — the incremental form
/// behind [`fnv1a64`] and [`Trace::render_fingerprint`]: feeding chunks in
/// sequence yields exactly the hash of their concatenation.
#[must_use]
pub fn fnv1a64_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How many per-thread shards a recorder keeps; thread ids beyond this
/// fall back to a shared overflow shard with explicit per-thread
/// counters (correct, just not contention-free — unreachable for the
/// scenario spaces the harness generates).
const RECORD_SHARDS: usize = 64;

/// One thread's recording shard. Events from one thread arrive in that
/// thread's program order, so the per-thread sequence number is simply the
/// shard's length at push time — no shared counter map needed.
#[derive(Default)]
struct RecorderShard {
    entries: Vec<Entry>,
}

/// Fallback shard for thread ids ≥ [`RECORD_SHARDS`]: a shared buffer
/// with the pre-shard per-thread counter map.
#[derive(Default)]
struct OverflowShard {
    entries: Vec<Entry>,
    next_seq: HashMap<u32, u64>,
}

/// Collects runtime and network events from a running system.
///
/// Attach one recorder as both the system's observer and its network tap:
///
/// ```
/// use std::sync::Arc;
/// use caa_harness::trace::TraceRecorder;
/// use caa_runtime::System;
///
/// let recorder = Arc::new(TraceRecorder::default());
/// let sys = System::builder()
///     .observer(Arc::clone(&recorder) as _)
///     .tap(Arc::clone(&recorder) as _)
///     .build();
/// # drop(sys);
/// ```
pub struct TraceRecorder {
    /// Sharded by originating thread id: each participant records into
    /// its own slot, so pushes from different threads never contend, the
    /// critical section is one `Vec::push`, and the per-thread sequence
    /// number is the shard length — no shared counter map. The canonical
    /// order is reconstructed by the merge sort in
    /// [`TraceRecorder::take_trace`], exactly as before sharding.
    shards: Vec<Mutex<RecorderShard>>,
    /// Thread ids ≥ [`RECORD_SHARDS`] (unreachable for generated
    /// scenarios) share this shard, which keeps explicit counters.
    overflow: Mutex<OverflowShard>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder {
            shards: (0..RECORD_SHARDS)
                .map(|_| Mutex::new(RecorderShard::default()))
                .collect(),
            overflow: Mutex::new(OverflowShard::default()),
        }
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries: usize = self.shards.iter().map(|s| s.lock().entries.len()).sum();
        f.debug_struct("TraceRecorder")
            .field("entries", &entries)
            .finish()
    }
}

impl TraceRecorder {
    /// A fresh recorder behind an `Arc`, ready to attach.
    #[must_use]
    pub fn new() -> Arc<TraceRecorder> {
        Arc::new(TraceRecorder::default())
    }

    /// A fresh recorder with roughly `entries` preallocated across the
    /// shards low thread ids actually use — sweep drivers pass the
    /// previous run's trace size so steady-state recording rarely
    /// reallocates mid-run.
    #[must_use]
    pub fn with_capacity(entries: usize) -> Arc<TraceRecorder> {
        let recorder = TraceRecorder::default();
        if entries > 0 {
            // Low thread ids dominate generated scenarios: split the hint
            // over the first shards so the reserved total equals the hint
            // (not a multiple of it) while the common case stays
            // reallocation-free.
            let per_shard = (entries / 8).max(16);
            for shard in recorder.shards.iter().take(8) {
                shard.lock().entries.reserve(per_shard);
            }
        }
        Arc::new(recorder)
    }

    /// A fresh recorder recording into a recycled entry buffer (cleared,
    /// capacity kept, assigned to thread 0's shard; other shards warm up
    /// over the worker's first seeds) — the arena counterpart of
    /// [`TraceRecorder::with_capacity`].
    #[must_use]
    pub fn with_buffer(mut entries: Vec<Entry>) -> Arc<TraceRecorder> {
        entries.clear();
        let recorder = TraceRecorder::default();
        *recorder.shards[0].lock() = RecorderShard { entries };
        Arc::new(recorder)
    }

    fn push(&self, at_ns: u64, thread: u32, kind: EntryKind) {
        if let Some(shard) = self.shards.get(thread as usize) {
            let mut shard = shard.lock();
            let seq = shard.entries.len() as u64;
            shard.entries.push(Entry {
                at_ns,
                thread,
                seq,
                kind,
            });
        } else {
            let mut overflow = self.overflow.lock();
            let seq = overflow.next_seq.entry(thread).or_insert(0);
            let seq_now = *seq;
            *seq += 1;
            overflow.entries.push(Entry {
                at_ns,
                thread,
                seq: seq_now,
                kind,
            });
        }
    }

    /// Extracts the canonical trace recorded so far.
    #[must_use]
    pub fn finish(&self) -> Trace {
        let mut entries = Vec::new();
        for shard in &self.shards {
            entries.extend(shard.lock().entries.iter().cloned());
        }
        entries.extend(self.overflow.lock().entries.iter().cloned());
        entries.sort_by_key(|e| (e.at_ns, e.thread, e.seq));
        Trace { entries }
    }

    /// Like [`TraceRecorder::finish`], but *takes* the recorded entries
    /// instead of cloning them — the cheap path for run drivers that are
    /// done with the recorder.
    #[must_use]
    pub fn take_trace(&self) -> Trace {
        let total: usize = self.shards.iter().map(|s| s.lock().entries.len()).sum();
        let mut entries = Vec::with_capacity(total + self.overflow.lock().entries.len());
        for shard in &self.shards {
            entries.append(&mut shard.lock().entries);
        }
        entries.append(&mut self.overflow.lock().entries);
        entries.sort_by_key(|e| (e.at_ns, e.thread, e.seq));
        Trace { entries }
    }
}

impl Observer for TraceRecorder {
    fn on_event(&self, event: &Event) {
        self.push(
            event.at.as_nanos(),
            event.thread.as_u32(),
            EntryKind::Runtime(event.clone()),
        );
    }
}

impl NetTap for TraceRecorder {
    fn on_sent(&self, event: &TapEvent) {
        self.push(
            event.at.as_nanos(),
            event.src.as_u32(),
            EntryKind::NetSent(event.clone()),
        );
    }

    fn on_dropped(&self, event: &TapEvent) {
        self.push(
            event.at.as_nanos(),
            event.src.as_u32(),
            EntryKind::NetDropped(event.clone()),
        );
    }

    fn on_corrupted(&self, event: &TapEvent) {
        self.push(
            event.at.as_nanos(),
            event.src.as_u32(),
            EntryKind::NetCorrupted(event.clone()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caa_core::exception::ExceptionId;
    use caa_core::ids::{ActionId, PartitionId, ThreadId};
    use caa_core::time::VirtualInstant;
    use caa_runtime::observe::EventKind;

    fn runtime_event(at: u64, thread: u32) -> Event {
        Event {
            at: VirtualInstant::from_nanos(at),
            thread: ThreadId::new(thread),
            action: ActionId::top_level(5),
            kind: EventKind::Raise {
                exception: ExceptionId::new("x"),
            },
        }
    }

    #[test]
    fn canonical_order_sorts_by_time_thread_seq() {
        let rec = TraceRecorder::new();
        rec.on_event(&runtime_event(200, 1));
        rec.on_event(&runtime_event(100, 1));
        rec.on_event(&runtime_event(100, 0));
        let trace = rec.finish();
        let keys: Vec<(u64, u32)> = trace
            .entries()
            .iter()
            .map(|e| (e.at_ns, e.thread))
            .collect();
        assert_eq!(keys, vec![(100, 0), (100, 1), (200, 1)]);
        // Per-thread sequence numbers preserve arrival (program) order:
        // thread 1 recorded its @200 event before its @100 event.
        assert_eq!(trace.entries()[1].seq, 1);
        assert_eq!(trace.entries()[2].seq, 0);
    }

    #[test]
    fn render_is_stable_and_line_oriented() {
        let rec = TraceRecorder::new();
        rec.on_event(&runtime_event(1, 0));
        rec.on_sent(&TapEvent {
            src: PartitionId::new(0),
            dst: PartitionId::new(1),
            class: "Exception",
            correlation: 9,
            at: VirtualInstant::from_nanos(2),
            deliver_at: VirtualInstant::from_nanos(7),
            seq: 0,
        });
        let trace = rec.finish();
        let text = trace.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("raise x"), "{text}");
        assert!(text.contains("net send Exception"), "{text}");
        assert_eq!(text, rec.finish().render());
    }
}
