//! Causal span timelines derived post-run from recorded traces.
//!
//! This module turns a canonical [`Trace`] into three artifacts, all
//! **derived** — the simulation hot path records nothing new, so trace
//! bytes and the 12k-seed fingerprint gate are untouched by construction:
//!
//! * **Span trees** ([`build_span_tree`]): per-instance timelines of the
//!   protocol's phases — action enter→exit, raise→resolve, each
//!   resolution round, signalling, the exit barrier, object waits,
//!   crash→detection and rejoin restart/catch-up — as a
//!   [`SpanTree`] of virtual-time intervals with parent links.
//! * **Critical paths** ([`CriticalPathScratch::extract`],
//!   [`critical_paths`]): for every resolved exception, a backward walk
//!   over the causal graph (message send→receive edges from `NetSent`
//!   records plus intra-thread program order) from the first `Resolved`
//!   back to the first `Raise`, attributing **every nanosecond** of the
//!   raise→resolve latency to a [`SegmentClass`]. The segments of one
//!   instance partition `[raised_at, resolved_at]` exactly — their
//!   durations sum to the instance's latency, which the sweep metrics
//!   (`critical_path` set in `metrics.json`) rely on and tests assert.
//! * **Perfetto export** ([`trace_event_json`]): a Chrome trace-event
//!   JSON document (complete-event spans, flow arrows for causal message
//!   edges, one lane per critical path) in the telemetry crate's
//!   integer-only JSON subset, loadable at <https://ui.perfetto.dev>.
//!
//! # Critical-path walk
//!
//! Starting at the first `Resolved` event, the walk repeatedly asks what
//! the current thread was doing in the window ending at the cursor:
//!
//! 1. If the window ends at an `ObjectAcquired` with a non-zero wait, the
//!    tail of the window is **object-wait**.
//! 2. If a message of this instance was delivered to the thread inside
//!    the window (the latest such delivery wins), the window splits at
//!    the delivery: the part after it keeps the window's base class, the
//!    `[sent, delivered]` interval is **message-wait**, and the walk hops
//!    to the sender at send time — a causal edge.
//! 3. Otherwise the whole window gets the base class — **timeout-slack**
//!    when it ends in a bounded-wait expiry, **suspicion-round** when it
//!    ends in a view change, **compute** otherwise — and the walk steps
//!    to the previous entry in the thread's program order.
//!
//! Every step clamps at the raise time, so the emitted segments are
//! contiguous, disjoint and exactly cover the raise→resolve interval.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

use caa_runtime::observe::EventKind;
use caa_telemetry::json;
use caa_telemetry::{Span, SpanTree};

use crate::trace::{Entry, EntryKind, Trace};

/// What a critical-path segment's time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentClass {
    /// Waiting for a protocol message to arrive (send→deliver flight
    /// time of the causal edge the walk hopped over).
    MessageWait,
    /// Waiting for a shared-object grant.
    ObjectWait,
    /// Local protocol processing between causal events.
    Compute,
    /// Waiting out a bounded resolution/signalling/exit wait that expired.
    TimeoutSlack,
    /// A membership view change (suspicion round) on the path.
    SuspicionRound,
}

impl SegmentClass {
    /// Every class, in a stable order (the `cp_*` counter order).
    pub const ALL: [SegmentClass; 5] = [
        SegmentClass::MessageWait,
        SegmentClass::ObjectWait,
        SegmentClass::Compute,
        SegmentClass::TimeoutSlack,
        SegmentClass::SuspicionRound,
    ];

    /// The class's human label (also used in summaries and Perfetto
    /// lanes).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SegmentClass::MessageWait => "message-wait",
            SegmentClass::ObjectWait => "object-wait",
            SegmentClass::Compute => "compute",
            SegmentClass::TimeoutSlack => "timeout-slack",
            SegmentClass::SuspicionRound => "suspicion-round",
        }
    }

    /// The `critical_path` metric-set counter this class accumulates
    /// into.
    #[must_use]
    pub fn counter_name(self) -> &'static str {
        match self {
            SegmentClass::MessageWait => "cp_message_wait_ns",
            SegmentClass::ObjectWait => "cp_object_wait_ns",
            SegmentClass::Compute => "cp_compute_ns",
            SegmentClass::TimeoutSlack => "cp_timeout_slack_ns",
            SegmentClass::SuspicionRound => "cp_suspicion_round_ns",
        }
    }
}

/// One attributed interval of a critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// What the interval's time was spent on.
    pub class: SegmentClass,
    /// Virtual start, nanoseconds.
    pub start_ns: u64,
    /// Virtual end, nanoseconds.
    pub end_ns: u64,
}

impl Segment {
    /// The segment's duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// The raise→resolve critical path of one action instance: contiguous
/// segments exactly partitioning `[raised_at, resolved_at]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstancePath {
    /// Canonical (run-independent) action-instance label — the `A<n>`
    /// number of the trace rendering, *not* the process-global raw
    /// serial, so paths of the same seed compare equal across executions.
    pub instance: u64,
    /// Virtual time of the instance's first `Raise`.
    pub raised_at: u64,
    /// Virtual time of the instance's first `Resolved`.
    pub resolved_at: u64,
    /// The path's segments in chronological order.
    pub segments: Vec<Segment>,
}

impl InstancePath {
    /// The instance's raise→resolve latency — by construction also the
    /// sum of every segment's duration.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.resolved_at.saturating_sub(self.raised_at)
    }

    /// Total nanoseconds attributed to `class` on this path.
    #[must_use]
    pub fn class_total_ns(&self, class: SegmentClass) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.class == class)
            .map(Segment::duration_ns)
            .sum()
    }
}

/// One recorded message send, indexed for the backward walk.
#[derive(Debug, Clone, Copy)]
struct SendRec {
    deliver_ns: u64,
    sent_ns: u64,
    src: u32,
    dst: u32,
    /// Position of the `NetSent` entry in the sender's program order.
    src_pos: u32,
    correlation: u64,
    seq: u64,
}

/// Reusable scratch for critical-path extraction: cleared (capacity
/// kept) between runs, so a long-lived recorder adds no steady-state
/// allocations to the pinned per-seed budget.
#[derive(Debug, Default)]
pub struct CriticalPathScratch {
    first_raise: HashMap<u64, u64>,
    /// serial → (resolved at, thread, position in that thread's program
    /// order) of the first `Resolved`.
    first_resolved: HashMap<u64, (u64, u32, u32)>,
    /// Per-thread entry indices into the trace, in program order.
    thread_pos: Vec<Vec<u32>>,
    sends: Vec<SendRec>,
    /// Resolved serials in deterministic (resolution-time) order.
    order: Vec<u64>,
    /// serial → canonical `A<n>` label (first-appearance order over the
    /// whole trace; mirrors `Trace::canonical_labels` without allocating
    /// a fresh map per run).
    labels: HashMap<u64, u64>,
    path: InstancePath,
}

impl CriticalPathScratch {
    /// Fresh scratch (equivalent to `default()`).
    #[must_use]
    pub fn new() -> CriticalPathScratch {
        CriticalPathScratch::default()
    }

    /// Extracts the critical path of every resolved instance in `trace`,
    /// invoking `visit` once per instance in deterministic
    /// (resolution-time) order. The visited [`InstancePath`] borrows the
    /// scratch's reusable buffer — clone it to keep it.
    pub fn extract(&mut self, trace: &Trace, mut visit: impl FnMut(&InstancePath)) {
        self.index_trace(trace);
        let entries = trace.entries();
        for i in 0..self.order.len() {
            let serial = self.order[i];
            let (resolved_at, thread, pos) = self.first_resolved[&serial];
            let raised_at = self.first_raise[&serial].min(resolved_at);
            let instance = self.labels[&serial];
            self.walk(
                entries,
                serial,
                instance,
                raised_at,
                resolved_at,
                thread,
                pos,
            );
            visit(&self.path);
        }
    }

    /// One pass over the trace: program-order indices per thread, send
    /// records sorted by delivery time, first raise/resolve per serial.
    fn index_trace(&mut self, trace: &Trace) {
        self.first_raise.clear();
        self.first_resolved.clear();
        for list in &mut self.thread_pos {
            list.clear();
        }
        self.sends.clear();
        self.order.clear();
        self.labels.clear();
        for (i, entry) in trace.entries().iter().enumerate() {
            let next_label = u64::try_from(self.labels.len()).expect("label count fits u64");
            self.labels
                .entry(entry.action_serial())
                .or_insert(next_label);
            let thread = entry.thread as usize;
            if thread >= self.thread_pos.len() {
                self.thread_pos.resize_with(thread + 1, Vec::new);
            }
            let pos = u32::try_from(self.thread_pos[thread].len()).expect("entry count fits u32");
            self.thread_pos[thread].push(u32::try_from(i).expect("entry count fits u32"));
            match &entry.kind {
                EntryKind::Runtime(event) => {
                    let serial = event.action.serial();
                    match &event.kind {
                        EventKind::Raise { .. } => {
                            self.first_raise.entry(serial).or_insert(entry.at_ns);
                        }
                        EventKind::Resolved { .. } => {
                            self.first_resolved.entry(serial).or_insert((
                                entry.at_ns,
                                entry.thread,
                                pos,
                            ));
                        }
                        _ => {}
                    }
                }
                EntryKind::NetSent(tap) => self.sends.push(SendRec {
                    deliver_ns: tap.deliver_at.as_nanos(),
                    sent_ns: entry.at_ns,
                    src: entry.thread,
                    dst: tap.dst.as_u32(),
                    src_pos: pos,
                    correlation: tap.correlation,
                    seq: tap.seq,
                }),
                _ => {}
            }
        }
        self.sends
            .sort_unstable_by_key(|s| (s.deliver_ns, s.src, s.seq));
        self.order.extend(
            self.first_resolved
                .iter()
                .filter(|(serial, _)| self.first_raise.contains_key(serial))
                .map(|(&serial, _)| serial),
        );
        // Raw serials are process-global, so order by canonical facts
        // (resolution time, thread, program position) instead.
        let resolved = &self.first_resolved;
        self.order.sort_unstable_by_key(|serial| resolved[serial]);
    }

    /// The backward walk for one instance (see the module docs); fills
    /// `self.path` with chronological segments exactly covering
    /// `[raised_at, resolved_at]`.
    #[allow(clippy::too_many_arguments)]
    fn walk(
        &mut self,
        entries: &[Entry],
        serial: u64,
        instance: u64,
        raised_at: u64,
        resolved_at: u64,
        mut thread: u32,
        mut pos: u32,
    ) {
        self.path.instance = instance;
        self.path.raised_at = raised_at;
        self.path.resolved_at = resolved_at;
        self.path.segments.clear();
        let mut cursor = resolved_at;
        // Termination backstop: each iteration either moves `cursor`
        // toward the raise or steps one entry back in program order, so
        // this bound is unreachable in practice.
        let mut guard = entries.len() * 2 + 16;
        while cursor > raised_at {
            if guard == 0 {
                self.push_segment(SegmentClass::Compute, raised_at, cursor);
                break;
            }
            guard -= 1;
            let entry = &entries[self.thread_pos[thread as usize][pos as usize] as usize];
            // 1. Object-wait tail.
            if let EntryKind::Runtime(event) = &entry.kind {
                if let EventKind::ObjectAcquired { waited_ns, .. } = &event.kind {
                    let wait_start = cursor.saturating_sub(*waited_ns).max(raised_at);
                    self.push_segment(SegmentClass::ObjectWait, wait_start, cursor);
                    cursor = wait_start;
                    if cursor == raised_at {
                        break;
                    }
                }
            }
            let base = base_class(entry);
            let prev_at = if pos > 0 {
                entries[self.thread_pos[thread as usize][pos as usize - 1] as usize].at_ns
            } else {
                0
            };
            let floor = prev_at.max(raised_at);
            // 2. Causal message edge into the window (latest delivery).
            if let Some(send) = self.find_send(thread, serial, floor, cursor) {
                self.push_segment(base, send.deliver_ns, cursor);
                let sent = send.sent_ns.max(raised_at);
                self.push_segment(SegmentClass::MessageWait, sent, send.deliver_ns);
                cursor = sent;
                if cursor == raised_at {
                    break;
                }
                thread = send.src;
                pos = send.src_pos;
                continue;
            }
            // 3. Whole window gets the base class; step back.
            self.push_segment(base, floor, cursor);
            cursor = floor;
            if cursor == raised_at {
                break;
            }
            // floor == prev_at > raised_at, so a previous entry exists.
            pos -= 1;
        }
        self.path.segments.reverse();
    }

    /// The latest message of `serial` delivered to `thread` inside
    /// `(floor, end]` and sent strictly before `end` (strict, so every
    /// hop makes progress toward the raise).
    fn find_send(&self, thread: u32, serial: u64, floor: u64, end: u64) -> Option<SendRec> {
        let upper = self.sends.partition_point(|s| s.deliver_ns <= end);
        self.sends[..upper]
            .iter()
            .rev()
            .take_while(|s| s.deliver_ns > floor)
            .find(|s| s.dst == thread && s.correlation == serial && s.sent_ns < end)
            .copied()
    }

    /// Appends a backward-order segment, skipping empty intervals.
    fn push_segment(&mut self, class: SegmentClass, start_ns: u64, end_ns: u64) {
        if start_ns < end_ns {
            self.path.segments.push(Segment {
                class,
                start_ns,
                end_ns,
            });
        }
    }
}

/// Convenience form of [`CriticalPathScratch::extract`]: every resolved
/// instance's critical path, in deterministic order. Sweeps use the
/// scratch directly; this is the one-shot API for tools and tests.
#[must_use]
pub fn critical_paths(trace: &Trace) -> Vec<InstancePath> {
    let mut scratch = CriticalPathScratch::new();
    let mut paths = Vec::new();
    scratch.extract(trace, |path| paths.push(path.clone()));
    paths
}

/// Per-(instance, thread) span bookkeeping key.
type Key = (u64, u32);

/// Reconstructs the run's span tree from its canonical trace: one span
/// per protocol phase (see the module docs for the taxonomy). Spans are
/// pushed in canonical-trace order, parents before children; spans still
/// open when the trace ends (e.g. an unresolved raise) close at the last
/// entry's timestamp. Purely derived — the same trace yields the same
/// tree, byte for byte under [`SpanTree::render`].
#[must_use]
pub fn build_span_tree(trace: &Trace) -> SpanTree {
    let labels = trace.canonical_labels();
    let label = |serial: u64| labels[&serial] as u64;
    let mut tree = SpanTree::new();
    // Innermost-last stack of open action spans per thread.
    let mut action_stack: HashMap<u32, Vec<(u64, u32)>> = HashMap::new();
    let mut recovery_open: HashMap<Key, (u64, u64)> = HashMap::new();
    let mut signalling_open: HashMap<Key, u32> = HashMap::new();
    let mut handler_open: HashMap<Key, u32> = HashMap::new();
    let mut exit_open: HashMap<Key, u32> = HashMap::new();
    let mut catchup_open: HashMap<Key, u32> = HashMap::new();
    let mut raise_open: HashMap<u64, u32> = HashMap::new();
    let mut detect_open: Vec<(u32, u32)> = Vec::new();
    let mut last_crash: HashMap<u32, u64> = HashMap::new();
    let end_ns = trace.entries().last().map_or(0, |e| e.at_ns);

    // The innermost open action span on `thread` matching `serial`, or
    // the innermost of any serial (an observer event of a peer's
    // instance), or none.
    let parent_of = |stacks: &HashMap<u32, Vec<(u64, u32)>>, thread: u32, serial: u64| {
        let stack = stacks.get(&thread)?;
        stack
            .iter()
            .rev()
            .find(|(s, _)| *s == serial)
            .or_else(|| stack.last())
            .map(|&(_, span)| span)
    };

    for entry in trace.entries() {
        let at = entry.at_ns;
        let thread = entry.thread;
        let EntryKind::Runtime(event) = &entry.kind else {
            continue;
        };
        let serial = event.action.serial();
        let instance = label(serial);
        let key = (serial, thread);
        match &event.kind {
            EventKind::Enter { name, .. } => {
                let parent = parent_of(&action_stack, thread, serial);
                let span = tree.push(Span {
                    name: format!("action:{name}"),
                    start_ns: at,
                    end_ns: at,
                    thread,
                    instance,
                    parent,
                });
                action_stack.entry(thread).or_default().push((serial, span));
            }
            EventKind::Exit { .. } | EventKind::Abort { .. } => {
                if let Some(span) = exit_open.remove(&key) {
                    tree.set_end(span, at);
                }
                if let Some(span) = catchup_open.remove(&key) {
                    tree.set_end(span, at);
                }
                if let Some(stack) = action_stack.get_mut(&thread) {
                    if let Some(i) = stack.iter().rposition(|(s, _)| *s == serial) {
                        let (_, span) = stack.remove(i);
                        tree.set_end(span, at);
                    }
                }
            }
            EventKind::Raise { exception } => {
                raise_open.entry(serial).or_insert_with(|| {
                    tree.push(Span {
                        name: format!("raise\u{2192}resolve:{exception}"),
                        start_ns: at,
                        end_ns: at,
                        thread,
                        instance,
                        parent: parent_of(&action_stack, thread, serial),
                    })
                });
            }
            EventKind::RecoveryStart { .. } => {
                recovery_open.insert(key, (at, 1));
            }
            EventKind::Resolved { .. } => {
                if let Some(span) = raise_open.remove(&serial) {
                    tree.set_end(span, at);
                }
                if let Some((start, round)) = recovery_open.get_mut(&key) {
                    let span = tree.push(Span {
                        name: format!("resolution:r{round}"),
                        start_ns: *start,
                        end_ns: at,
                        thread,
                        instance,
                        parent: parent_of(&action_stack, thread, serial),
                    });
                    let _ = span;
                    *start = at;
                    *round += 1;
                }
                if let Some(span) = signalling_open.remove(&key) {
                    tree.set_end(span, at);
                }
                signalling_open.insert(
                    key,
                    tree.push(Span {
                        name: "signalling".to_owned(),
                        start_ns: at,
                        end_ns: at,
                        thread,
                        instance,
                        parent: parent_of(&action_stack, thread, serial),
                    }),
                );
            }
            EventKind::SignalOutcome { .. } => {
                if let Some(span) = signalling_open.remove(&key) {
                    tree.set_end(span, at);
                }
            }
            EventKind::HandlerStart { exception } => {
                handler_open.insert(
                    key,
                    tree.push(Span {
                        name: format!("handler:{exception}"),
                        start_ns: at,
                        end_ns: at,
                        thread,
                        instance,
                        parent: parent_of(&action_stack, thread, serial),
                    }),
                );
            }
            EventKind::HandlerEnd { .. } => {
                if let Some(span) = handler_open.remove(&key) {
                    tree.set_end(span, at);
                }
            }
            EventKind::ObjectAcquired { object, waited_ns } if *waited_ns > 0 => {
                tree.push(Span {
                    name: format!("object-wait:{object}"),
                    start_ns: at.saturating_sub(*waited_ns),
                    end_ns: at,
                    thread,
                    instance,
                    parent: parent_of(&action_stack, thread, serial),
                });
            }
            EventKind::ExitStart { epoch } => {
                if let Some(span) = exit_open.remove(&key) {
                    tree.set_end(span, at);
                }
                exit_open.insert(
                    key,
                    tree.push(Span {
                        name: format!("exit:e{epoch}"),
                        start_ns: at,
                        end_ns: at,
                        thread,
                        instance,
                        parent: parent_of(&action_stack, thread, serial),
                    }),
                );
            }
            EventKind::Crash => {
                last_crash.insert(thread, at);
                // A crash closes everything the thread had open.
                for (_, span) in action_stack.remove(&thread).unwrap_or_default() {
                    tree.set_end(span, at);
                }
                for open in [&mut signalling_open, &mut handler_open, &mut exit_open] {
                    open.retain(|&(_, t), span| {
                        if t == thread {
                            tree.set_end(*span, at);
                        }
                        t != thread
                    });
                }
                recovery_open.retain(|&(_, t), _| t != thread);
                catchup_open.retain(|&(_, t), span| {
                    if t == thread {
                        tree.set_end(*span, at);
                    }
                    t != thread
                });
                detect_open.push((
                    thread,
                    tree.push(Span {
                        name: "crash-detect".to_owned(),
                        start_ns: at,
                        end_ns: at,
                        thread,
                        instance,
                        parent: None,
                    }),
                ));
            }
            EventKind::ViewChange { removed, .. } => {
                detect_open.retain(|&(crashed, span)| {
                    if removed.iter().any(|t| t.as_u32() == crashed) {
                        tree.set_end(span, at);
                        false
                    } else {
                        true
                    }
                });
            }
            EventKind::Rejoin {
                thread: rejoiner, ..
            } if rejoiner.as_u32() == thread => {
                if let Some(&crash_at) = last_crash.get(&thread) {
                    tree.push(Span {
                        name: "rejoin-restart".to_owned(),
                        start_ns: crash_at,
                        end_ns: at,
                        thread,
                        instance,
                        parent: None,
                    });
                }
                catchup_open.insert(
                    key,
                    tree.push(Span {
                        name: "rejoin-catchup".to_owned(),
                        start_ns: at,
                        end_ns: at,
                        thread,
                        instance,
                        parent: parent_of(&action_stack, thread, serial),
                    }),
                );
            }
            _ => {}
        }
    }

    // Close whatever the trace left open at its end.
    for stack in action_stack.into_values() {
        for (_, span) in stack {
            tree.set_end(span, end_ns);
        }
    }
    for span in signalling_open
        .into_values()
        .chain(handler_open.into_values())
        .chain(exit_open.into_values())
        .chain(catchup_open.into_values())
        .chain(raise_open.into_values())
        .chain(detect_open.into_iter().map(|(_, span)| span))
    {
        tree.set_end(span, end_ns);
    }
    tree
}

/// The segment class a window *ending* at this entry falls into when no
/// causal message edge splits it.
fn base_class(entry: &Entry) -> SegmentClass {
    match &entry.kind {
        EntryKind::Runtime(event) => match &event.kind {
            EventKind::ResolutionTimeout { .. }
            | EventKind::SignalTimeout { .. }
            | EventKind::ExitTimeout { .. } => SegmentClass::TimeoutSlack,
            EventKind::ViewChange { .. } => SegmentClass::SuspicionRound,
            _ => SegmentClass::Compute,
        },
        _ => SegmentClass::Compute,
    }
}

/// Renders the run as a Chrome trace-event JSON document: thread-name
/// metadata, one complete (`"ph": "X"`) event per derived span, paired
/// flow arrows (`"ph": "s"`/`"f"`) per causal message edge, and one lane
/// per raise→resolve critical path (process id 1, one track per
/// instance). Integer-only — the document parses under
/// [`caa_telemetry::json::parse`] — and deterministic per trace; load it
/// at <https://ui.perfetto.dev>.
#[must_use]
pub fn trace_event_json(trace: &Trace, seed: u64) -> String {
    let tree = build_span_tree(trace);
    let labels = trace.canonical_labels();
    let mut out = String::with_capacity(tree.len() * 128 + 4096);
    out.push_str("{\n\"displayTimeUnit\": \"ns\",\n");
    let _ = writeln!(out, "\"otherData\": {{\"seed\": {seed}}},");
    out.push_str("\"traceEvents\": [\n");
    let mut first = true;
    let mut push_event = |out: &mut String, body: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&body);
    };

    // Process and thread naming metadata.
    for (pid, name) in [(0u32, "protocol"), (1u32, "critical-path")] {
        push_event(
            &mut out,
            format!(
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"ts\": 0, \"pid\": {pid}, \
                 \"tid\": 0, \"args\": {{\"name\": \"{name}\"}}}}"
            ),
        );
    }
    let threads: BTreeSet<u32> = trace.entries().iter().map(|e| e.thread).collect();
    for thread in &threads {
        push_event(
            &mut out,
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"ts\": 0, \"pid\": 0, \
                 \"tid\": {thread}, \"args\": {{\"name\": \"T{thread}\"}}}}"
            ),
        );
    }

    // Derived spans as complete events.
    for span in tree.spans() {
        let mut body = String::with_capacity(96);
        body.push_str("{\"name\": ");
        json::write_str(&mut body, &span.name);
        let _ = write!(
            body,
            ", \"cat\": \"span\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 0, \
             \"tid\": {}, \"args\": {{\"instance\": {}}}}}",
            span.start_ns,
            span.duration_ns(),
            span.thread,
            span.instance,
        );
        push_event(&mut out, body);
    }

    // Causal message edges as paired flow arrows.
    for (id, (entry, tap)) in trace
        .entries()
        .iter()
        .filter_map(|e| match &e.kind {
            EntryKind::NetSent(tap) => Some((e, tap)),
            _ => None,
        })
        .enumerate()
    {
        let instance = labels[&tap.correlation];
        let arrow = |ph: &str, bind: &str, ts: u64, tid: u32| {
            let mut body = String::with_capacity(96);
            body.push_str("{\"name\": ");
            json::write_str(&mut body, &format!("msg:{}", tap.class));
            let _ = write!(
                body,
                ", \"cat\": \"net\", \"ph\": \"{ph}\"{bind}, \"id\": {id}, \"ts\": {ts}, \
                 \"pid\": 0, \"tid\": {tid}, \"args\": {{\"instance\": {instance}}}}}",
            );
            body
        };
        let sent = arrow("s", "", entry.at_ns, entry.thread);
        push_event(&mut out, sent);
        let recv = arrow(
            "f",
            ", \"bp\": \"e\"",
            tap.deliver_at.as_nanos(),
            tap.dst.as_u32(),
        );
        push_event(&mut out, recv);
    }

    // Critical-path lanes: pid 1, one track per instance.
    for path in critical_paths(trace) {
        let instance = path.instance;
        for segment in &path.segments {
            let mut body = String::with_capacity(96);
            body.push_str("{\"name\": ");
            json::write_str(&mut body, segment.class.label());
            let _ = write!(
                body,
                ", \"cat\": \"critical-path\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": {instance}, \"args\": {{\"instance\": {instance}}}}}",
                segment.start_ns,
                segment.duration_ns(),
            );
            push_event(&mut out, body);
        }
    }

    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::plan::{ScenarioConfig, ScenarioPlan};
    use crate::trace::TraceRecorder;
    use caa_core::exception::ExceptionId;
    use caa_core::ids::{ActionId, PartitionId, ThreadId};
    use caa_core::time::VirtualInstant;
    use caa_runtime::observe::{Event, Observer};
    use caa_simnet::{NetTap, TapEvent};

    fn event(at: u64, thread: u32, action: ActionId, kind: EventKind) -> Event {
        Event {
            at: VirtualInstant::from_nanos(at),
            thread: ThreadId::new(thread),
            action,
            kind,
        }
    }

    fn send(at: u64, deliver: u64, src: u32, dst: u32, correlation: u64, seq: u64) -> TapEvent {
        TapEvent {
            src: PartitionId::new(src),
            dst: PartitionId::new(dst),
            class: "Exception",
            correlation,
            at: VirtualInstant::from_nanos(at),
            deliver_at: VirtualInstant::from_nanos(deliver),
            seq,
        }
    }

    /// Hand-built trace with a known decomposition: T0 raises at 100 and
    /// sends the exception to T1 (delivered at 150); T1 acquires an
    /// object at 170 after a 20ns wait and resolves at 180. The critical
    /// path must be exactly 50ns message-wait, 20ns object-wait and 10ns
    /// compute (100→150→170-20=150 .. so compute is [150,150]∅ + [170,180]).
    #[test]
    fn critical_path_pins_a_known_decomposition() {
        let action = ActionId::top_level(7);
        let serial = action.serial();
        let rec = TraceRecorder::new();
        rec.on_event(&event(
            100,
            0,
            action,
            EventKind::Raise {
                exception: ExceptionId::new("x"),
            },
        ));
        rec.on_sent(&send(100, 150, 0, 1, serial, 0));
        rec.on_event(&event(
            170,
            1,
            action,
            EventKind::ObjectAcquired {
                object: "ledger".into(),
                waited_ns: 20,
            },
        ));
        rec.on_event(&event(
            180,
            1,
            action,
            EventKind::Resolved {
                exception: ExceptionId::new("x"),
            },
        ));
        let trace = rec.finish();
        let paths = critical_paths(&trace);
        assert_eq!(paths.len(), 1);
        let path = &paths[0];
        assert_eq!(path.total_ns(), 80);
        assert_eq!(path.class_total_ns(SegmentClass::MessageWait), 50);
        assert_eq!(path.class_total_ns(SegmentClass::ObjectWait), 20);
        assert_eq!(path.class_total_ns(SegmentClass::Compute), 10);
        assert_eq!(path.class_total_ns(SegmentClass::TimeoutSlack), 0);
        // Chronological, contiguous, exactly covering [100, 180].
        assert_eq!(path.segments.first().unwrap().start_ns, 100);
        assert_eq!(path.segments.last().unwrap().end_ns, 180);
        for pair in path.segments.windows(2) {
            assert_eq!(pair[0].end_ns, pair[1].start_ns);
        }
        let sum: u64 = path.segments.iter().map(Segment::duration_ns).sum();
        assert_eq!(sum, path.total_ns());
    }

    /// Every real seed's paths partition raise→resolve exactly.
    #[test]
    fn segments_sum_exactly_to_latency_on_real_seeds() {
        for seed in 0..32u64 {
            let plan = ScenarioPlan::generate(seed, &ScenarioConfig::default());
            let artifacts = execute(&plan);
            for path in critical_paths(&artifacts.trace) {
                let sum: u64 = path.segments.iter().map(Segment::duration_ns).sum();
                assert_eq!(
                    sum,
                    path.total_ns(),
                    "seed {seed} instance {} decomposition must be exact",
                    path.instance
                );
                for pair in path.segments.windows(2) {
                    assert_eq!(pair[0].end_ns, pair[1].start_ns, "seed {seed}: contiguous");
                }
            }
        }
    }

    #[test]
    fn span_tree_covers_protocol_phases() {
        let plan = ScenarioPlan::generate(3, &ScenarioConfig::default());
        let artifacts = execute(&plan);
        let tree = build_span_tree(&artifacts.trace);
        assert!(!tree.is_empty());
        let text = tree.render();
        assert!(text.contains("action:"), "{text}");
        // Seed 3's default scenario raises at least one exception.
        if artifacts
            .trace
            .runtime_events()
            .any(|e| matches!(e.kind, EventKind::Raise { .. }))
        {
            assert!(text.contains("raise\u{2192}resolve:"), "{text}");
        }
        // Spans never end before they start.
        for span in tree.spans() {
            assert!(span.end_ns >= span.start_ns, "{span:?}");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_extraction() {
        let mut scratch = CriticalPathScratch::new();
        for seed in [11u64, 12, 13] {
            let plan = ScenarioPlan::generate(seed, &ScenarioConfig::default());
            let artifacts = execute(&plan);
            let mut reused = Vec::new();
            scratch.extract(&artifacts.trace, |p| reused.push(p.clone()));
            assert_eq!(reused, critical_paths(&artifacts.trace), "seed {seed}");
        }
    }
}
