//! **caa-harness** — deterministic simulation testing for the coordinated
//! exception-handling runtime, in the spirit of FoundationDB-style
//! simulation: a single `u64` seed determines an entire distributed
//! scenario (action topology, workload, fault schedule), the virtual-time
//! network executes it deterministically, a structured trace records every
//! protocol step, and invariant oracles derived from the paper's theorems
//! judge the result.
//!
//! The paper validates its resolution and signalling algorithms on one
//! hand-built case study; this crate turns that into an unbounded,
//! machine-explorable scenario space:
//!
//! * [`plan`] — seeded scenario generation: randomized nesting trees, role
//!   groups, exception graphs, concurrent raises, handler verdicts
//!   (forward recovery, µ, ƒ, interface signals), abortion-handler
//!   exceptions, shared-object workloads (cycle-free by construction),
//!   crash-stop participants, message loss/corruption and signalling
//!   crashes;
//! * [`exec`] — materialises a plan into real [`caa_runtime`] actions,
//!   shared objects and crash injections, and runs it on the virtual-time
//!   network;
//! * [`arena`] — per-worker execution arenas recycling network storage,
//!   trace buffers and resolution lattices across seeds, so the sweep hot
//!   path stops paying per-seed setup/teardown allocation;
//! * [`trace`] — the structured event log captured through
//!   [`caa_runtime::observe`] and [`caa_simnet::NetTap`] hooks, with a
//!   canonical byte-stable rendering (object acquisitions included);
//! * [`oracle`] — resolution agreement, single-resolution, the Lemma 1
//!   completion bound, §3.3.3 message complexity, nesting/abortion/crash
//!   consistency, the exit-timeout liveness bound and byte-exact replay;
//! * [`mod@sweep`] — fans thousands of seeds across OS threads and reports any
//!   violating seed for one-command replay;
//! * [`prodcell`] — the §4 production cell driven as a harness scenario,
//!   replay-checked byte-exactly.
//!
//! # Quick start
//!
//! Sweep seeds and fail loudly on the first counterexample:
//!
//! ```
//! use caa_harness::sweep::{sweep, SweepConfig};
//!
//! let report = sweep(&SweepConfig {
//!     seeds: 25,
//!     check_replay: true,
//!     ..SweepConfig::default()
//! });
//! assert!(report.all_passed(), "{}", report.summary());
//! ```
//!
//! Replay a single seed and inspect its trace:
//!
//! ```
//! use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
//! use caa_harness::{exec, oracle};
//!
//! let plan = ScenarioPlan::generate(7, &ScenarioConfig::default());
//! let artifacts = exec::execute(&plan);
//! assert!(oracle::check_run(&artifacts).is_empty());
//! println!("{}", artifacts.trace.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod bisect;
pub mod exec;
pub mod fuzz;
pub mod metrics;
pub mod oracle;
pub mod plan;
pub mod prodcell;
pub mod rng;
pub mod spans;
pub mod sweep;
pub mod trace;

pub use arena::ExecutionArena;
pub use exec::{execute, execute_in, execute_with_capacity, RunArtifacts};
pub use fuzz::{
    fuzz, load_corpus_plan, mutate_plan, CoverageDoc, FuzzConfig, FuzzReport, Lineage,
    COVERAGE_SCHEMA,
};
pub use oracle::{check_invariants, check_replay, check_replay_protocol, check_run, Violation};
pub use plan::{validate_plan, ScenarioConfig, ScenarioPlan};
pub use sweep::{
    merge_signatures, run_plan_checked, run_seed, run_seed_in, run_seed_with_capacity, sweep,
    PathCoverage, SeedResult, Shard, SignatureMap, SweepConfig, SweepReport,
};
pub use trace::{Trace, TraceRecorder};
