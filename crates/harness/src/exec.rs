//! Scenario execution: materialises a [`ScenarioPlan`] into real
//! [`ActionDef`]s, shared objects and participant bodies, runs them on the
//! virtual-time network with a [`TraceRecorder`](crate::trace::TraceRecorder)
//! attached, and returns the run's artifacts.
//!
//! Execution is deterministic end to end: message timing comes from the
//! seeded latency model, object acquisition from the runtime's arbitrated
//! grant order, fault budgets from per-link sequence numbers, and a
//! crash-stop participant dies at its plan-determined virtual instant — so
//! the same plan renders a byte-identical [`Trace`] on every run.

use std::sync::{Arc, OnceLock};

use caa_core::exception::{Exception, ExceptionId};
use caa_core::outcome::HandlerVerdict;
use caa_core::time::{secs, VirtualDuration};
use caa_runtime::{ActionDef, Ctx, SharedObject, Step, System, SystemReport};
use caa_simnet::LatencyModel;

use crate::arena::ExecutionArena;
use crate::plan::{ActionPlan, ObjectOp, Phase, ScenarioPlan, VerdictChoice};
use crate::trace::Trace;

/// Everything produced by one scenario execution.
#[derive(Debug)]
pub struct RunArtifacts {
    /// The executed plan.
    pub plan: ScenarioPlan,
    /// The canonical recorded trace.
    pub trace: Trace,
    /// The system's own report (thread results, counters, elapsed time).
    pub report: SystemReport,
}

/// One action of the plan, compiled: its definition plus compiled phases.
struct ExecNode {
    plan: ActionPlan,
    def: ActionDef,
    phases: Vec<ExecPhase>,
}

enum ExecPhase {
    Compute {
        dur: VirtualDuration,
        sends: Vec<(u32, u32)>,
        listeners: Vec<u32>,
        object_ops: Vec<ObjectOp>,
    },
    Nested {
        children: Vec<Arc<ExecNode>>,
    },
}

/// Pre-interned name caches: role and thread names are `r<t>` / `T<t>`
/// for small `t`, and the execute hot path asks for them on every send,
/// entry and spawn — a per-call `format!` was measurable sweep churn.
const NAME_CACHE: usize = 64;

fn role_name(thread: u32) -> &'static str {
    static NAMES: OnceLock<Vec<&'static str>> = OnceLock::new();
    let names = NAMES.get_or_init(|| {
        (0..NAME_CACHE as u32)
            .map(|t| &*format!("r{t}").leak())
            .collect()
    });
    match names.get(thread as usize) {
        Some(name) => name,
        None => oversized_role_name(thread),
    }
}

/// Cold path for thread ids beyond the inline cache (unreachable for
/// generated scenarios): memoized, so the leaked storage stays bounded by
/// the number of *distinct* oversized ids, not by call count.
fn oversized_role_name(thread: u32) -> &'static str {
    use std::collections::HashMap;
    static OVERSIZED: OnceLock<parking_lot::Mutex<HashMap<u32, &'static str>>> = OnceLock::new();
    let mut names = OVERSIZED
        .get_or_init(|| parking_lot::Mutex::new(HashMap::new()))
        .lock();
    names
        .entry(thread)
        .or_insert_with(|| &*format!("r{thread}").leak())
}

fn thread_name(thread: u32) -> Arc<str> {
    static NAMES: OnceLock<Vec<Arc<str>>> = OnceLock::new();
    let names = NAMES.get_or_init(|| {
        (0..NAME_CACHE as u32)
            .map(|t| Arc::from(format!("T{t}").as_str()))
            .collect()
    });
    match names.get(thread as usize) {
        Some(name) => Arc::clone(name),
        None => Arc::from(format!("T{thread}").as_str()),
    }
}

/// Per-level separation factor for the crash-detecting bounded waits.
///
/// A live participant of an action at depth `d` can lawfully lag behind
/// its peers by the *sum of every bounded wait below `d`*: a sibling
/// subtree can burn a signalling timeout, an exit timeout and a resolution
/// timeout per nested level before its member resurfaces at depth `d`'s
/// protocol. If all levels shared one bound, a deep cascade would outrun a
/// shallow wait and a live peer would be presumed crashed (survivors then
/// diverge — found by the first crash-schedule sweep). Scaling each
/// level's exit and resolution timeouts by `SEPARATION^(levels below)`
/// keeps every wait two orders of magnitude above its sublevels' total
/// budget; virtual time makes the headroom free. The §3.4 *signalling*
/// timeout is deliberately left unscaled: it fires in crash-free runs too
/// (lost announcements are treated as ƒ), so rescaling it would change
/// crash-free traces.
pub const TIMEOUT_SEPARATION: f64 = 100.0;

fn build_node(
    plan: &ActionPlan,
    scenario: &ScenarioPlan,
    arena: &mut ExecutionArena,
) -> Arc<ExecNode> {
    // The lattice is a pure function of (action name, group); the arena
    // caches it across seeds, turning per-seed graph construction into a
    // lookup for the recurring shapes the generator emits.
    let graph = arena.graph_for(&plan.name, &plan.group, || {
        plan.group
            .iter()
            .map(|&t| ExceptionId::new(plan.raise_exception(t)))
            .collect()
    });

    let levels_below = scenario.max_depth().saturating_sub(plan.depth) as i32;
    let scale = TIMEOUT_SEPARATION.powi(levels_below);
    let mut builder = ActionDef::builder(plan.name.as_str())
        .graph_shared(graph)
        .signal_timeout(secs(scenario.signal_timeout))
        .exit_timeout(secs(scenario.exit_timeout * scale))
        .resolution_timeout(secs(scenario.resolution_timeout * scale));
    for &t in &plan.group {
        builder = builder.role(role_name(t), t);
    }
    let delta = secs(scenario.delta);
    for &(t, verdict) in &plan.verdicts {
        let signal_exc = ExceptionId::new(plan.signal_exception());
        builder = builder.fallback_handler(role_name(t), move |hc| {
            hc.work(delta)?;
            Ok(match verdict {
                VerdictChoice::Recovered => HandlerVerdict::Recovered,
                VerdictChoice::Undo => HandlerVerdict::Undo,
                VerdictChoice::Fail => HandlerVerdict::Fail,
                VerdictChoice::Signal => HandlerVerdict::Signal(signal_exc.clone()),
            })
        });
    }
    if plan.depth > 0 {
        let t_abort = secs(scenario.t_abort);
        for &t in &plan.group {
            let eab = plan
                .abort_raises_eab
                .contains(&t)
                .then(|| ExceptionId::new(plan.eab_exception(t)));
            builder = builder.abort_handler(role_name(t), move |ac| {
                ac.work(t_abort)?;
                Ok(eab.clone().map(Exception::new))
            });
        }
    }
    let def = builder
        .build()
        .expect("generated plans declare valid roles");

    let phases = plan
        .phases
        .iter()
        .map(|phase| match phase {
            Phase::Compute {
                dur_ns,
                sends,
                listeners,
                object_ops,
            } => ExecPhase::Compute {
                dur: VirtualDuration::from_nanos(*dur_ns),
                sends: sends.clone(),
                listeners: listeners.clone(),
                object_ops: object_ops.clone(),
            },
            Phase::Nested { children } => ExecPhase::Nested {
                children: children
                    .iter()
                    .map(|c| build_node(c, scenario, arena))
                    .collect(),
            },
        })
        .collect();

    Arc::new(ExecNode {
        plan: plan.clone(),
        def,
        phases,
    })
}

/// Drains the role's app inbox for exactly `dur` of virtual time, so the
/// phase consumes the same duration whether or not messages arrive (the
/// alignment discipline the Lemma 1 oracle relies on).
fn listen(rc: &mut Ctx, dur: VirtualDuration) -> Step<()> {
    let deadline = rc.now().saturating_add(dur);
    loop {
        let remaining = deadline.duration_since(rc.now());
        if remaining.is_zero() {
            return Ok(());
        }
        let _ = rc.recv_app_timeout(remaining)?;
    }
}

/// Computes through one phase, issuing this thread's object operations at
/// their fixed offsets. Acquisition waits extend the phase beyond `dur`
/// (deterministically); the trailing work is clamped to the deadline.
fn compute_with_ops(
    rc: &mut Ctx,
    dur: VirtualDuration,
    ops: &[&ObjectOp],
    objects: &[SharedObject<u64>],
) -> Step<()> {
    let start = rc.now();
    let deadline = start.saturating_add(dur);
    for op in ops {
        let target = start.saturating_add(VirtualDuration::from_nanos(op.delay_ns));
        let lead = target.duration_since(rc.now());
        if !lead.is_zero() {
            rc.work(lead)?;
        }
        let obj = &objects[op.object as usize];
        if op.update {
            rc.update(obj, |v| *v = v.wrapping_add(1))?;
        } else {
            let _ = rc.read(obj, |v| *v)?;
        }
    }
    let rest = deadline.duration_since(rc.now());
    if !rest.is_zero() {
        rc.work(rest)?;
    }
    Ok(())
}

fn body_phases(rc: &mut Ctx, node: &ExecNode, me: u32, objects: &[SharedObject<u64>]) -> Step<()> {
    for phase in &node.phases {
        match phase {
            ExecPhase::Compute {
                dur,
                sends,
                listeners,
                object_ops,
            } => {
                for &(from, to) in sends {
                    if from == me {
                        rc.send_to_role(role_name(to), "app", u64::from(to))?;
                    }
                }
                if listeners.contains(&me) {
                    listen(rc, *dur)?;
                } else {
                    let mut my_ops: Vec<&ObjectOp> =
                        object_ops.iter().filter(|op| op.thread == me).collect();
                    my_ops.sort_by_key(|op| op.delay_ns);
                    compute_with_ops(rc, *dur, &my_ops, objects)?;
                }
            }
            ExecPhase::Nested { children } => {
                if let Some(child) = children.iter().find(|c| c.plan.group.contains(&me)) {
                    let def = child.def.clone();
                    let child = Arc::clone(child);
                    let objects = objects.to_vec();
                    rc.enter(&def, role_name(me), move |cc| {
                        body_phases(cc, &child, me, &objects)
                    })
                    .map(|_| ())?;
                }
            }
        }
    }
    if let Some(raise_phase) = &node.plan.raise {
        match raise_phase.raisers.iter().find(|(t, _)| *t == me) {
            Some(&(_, delay_ns)) => {
                rc.work(VirtualDuration::from_nanos(delay_ns))?;
                rc.raise(Exception::new(node.plan.raise_exception(me)))?;
            }
            None => {
                // Peers will raise; compute until their recovery interrupts.
                rc.work(secs(30.0))?;
            }
        }
    }
    Ok(())
}

/// Executes `plan` on a fresh virtual-time system, recording a canonical
/// trace. The run is deterministic: the same plan produces byte-identical
/// [`Trace::render`] output on every execution.
#[must_use]
pub fn execute(plan: &ScenarioPlan) -> RunArtifacts {
    execute_with_capacity(plan, 0)
}

/// [`execute`] with a trace-buffer preallocation hint (in entries) —
/// kept for callers without a long-lived arena. The hint has no
/// observable effect on the run: traces stay byte-identical whatever its
/// value.
#[must_use]
pub fn execute_with_capacity(plan: &ScenarioPlan, trace_capacity: usize) -> RunArtifacts {
    let mut arena = ExecutionArena::with_trace_capacity(trace_capacity);
    execute_in(plan, &mut arena)
}

/// [`execute`] through a per-worker [`ExecutionArena`]: network storage,
/// trace buffers and resolution lattices are recycled across calls, so a
/// sweep worker stops paying per-seed setup/teardown allocation. Arena
/// reuse is a pure allocation cache — traces stay byte-identical to a
/// fresh execution's.
#[must_use]
pub fn execute_in(plan: &ScenarioPlan, arena: &mut ExecutionArena) -> RunArtifacts {
    let (trace, report) = run_plan(plan, arena);
    RunArtifacts {
        plan: plan.clone(),
        trace,
        report,
    }
}

/// [`execute_in`] taking the plan by value, so the artifacts reuse it
/// instead of deep-cloning it per execution (the sweep driver's path).
#[must_use]
pub(crate) fn execute_owned(plan: ScenarioPlan, arena: &mut ExecutionArena) -> RunArtifacts {
    let (trace, report) = run_plan(&plan, arena);
    RunArtifacts {
        plan,
        trace,
        report,
    }
}

/// Runs `plan` and returns only the recorded trace and report — the
/// replay-check path, which needs neither a plan clone nor fresh
/// allocations.
pub(crate) fn run_plan(plan: &ScenarioPlan, arena: &mut ExecutionArena) -> (Trace, SystemReport) {
    let recorder = arena.recorder();
    let mut builder = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(plan.t_mmax)))
        .seed(plan.seed)
        .resolution_delay(secs(plan.t_reso))
        .faults(plan.fault_plan())
        .observer(Arc::clone(&recorder) as _)
        .tap(Arc::clone(&recorder) as _);
    if let Some(net) = arena.take_net() {
        builder = builder.net_arena(net);
    }
    let mut sys = builder.build();

    let objects: Vec<SharedObject<u64>> = plan
        .objects
        .iter()
        .map(|name| SharedObject::new(name.as_str(), 0u64))
        .collect();
    let nodes: Vec<Arc<ExecNode>> = plan
        .top
        .iter()
        .map(|a| build_node(a, plan, arena))
        .collect();
    for t in 0..plan.threads {
        let my_crash = plan.crashes.iter().copied().find(|c| c.thread == t);
        let nodes = nodes.clone();
        let objects = objects.clone();
        sys.spawn(thread_name(t), move |ctx| {
            for (i, node) in nodes.iter().enumerate() {
                let def = node.def.clone();
                let node = Arc::clone(node);
                let objects = objects.clone();
                match my_crash.filter(|c| i == c.top_action as usize) {
                    Some(c) => {
                        // The designated participant runs its real
                        // workload — raises, messages and object traffic
                        // included — with the crash scheduled at its
                        // plan-determined instant: it dies at the first
                        // poll point at or after it, wherever the
                        // protocol then has it (body, collection,
                        // signalling or exit).
                        let run = ctx.enter(&def, role_name(t), move |rc| {
                            rc.schedule_crash(VirtualDuration::from_nanos(c.delay_ns));
                            body_phases(rc, &node, t, &objects)
                        });
                        let flow = match run {
                            Err(flow) => flow,
                            Ok(_) => {
                                // The action concluded before the crash
                                // instant (short workload, or a recovery
                                // absorbed the body): the process is
                                // still doomed — idle until the schedule
                                // fires.
                                match ctx.work(secs(3600.0)) {
                                    Err(flow) => flow,
                                    Ok(()) => return ctx.crash_stop(),
                                }
                            }
                        };
                        if !flow.is_crash() {
                            return Err(flow);
                        }
                        // The planned death. Without a planned restart
                        // the thread stays down for good; with one, it
                        // waits out the down-time and asks the survivors
                        // to readmit it (epoch-numbered rejoin). A
                        // restart nobody answers — the group concluded,
                        // or evicted it and moved on past the join
                        // window — gives up and stays down too.
                        let Some(down_ns) = c.rejoin_delay_ns else {
                            return Err(flow);
                        };
                        ctx.restart_after(VirtualDuration::from_nanos(down_ns))?;
                        if ctx.rejoin(&def, role_name(t))?.is_none() {
                            return Err(flow);
                        }
                        // Readmitted and concluded the crash action as a
                        // member again: continue into the remaining top
                        // actions like any survivor.
                    }
                    None => {
                        ctx.enter(&def, role_name(t), move |rc| {
                            body_phases(rc, &node, t, &objects)
                        })
                        .map(|_| ())?;
                    }
                }
            }
            Ok(())
        });
    }
    let (report, net) = sys.run_reclaiming();
    if let Some(net) = net {
        arena.put_net(net);
    }
    (recorder.take_trace(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ScenarioConfig;

    #[test]
    fn a_simple_seed_executes_cleanly() {
        let plan = ScenarioPlan::generate(1, &ScenarioConfig::default());
        let artifacts = execute(&plan);
        for (i, (name, result)) in artifacts.report.results.iter().enumerate() {
            let planned = plan.crashes.iter().find(|c| c.thread == i as u32);
            match result {
                Ok(()) => assert!(
                    planned.is_none_or(|c| c.rejoin_delay_ns.is_some()),
                    "{name} should have crashed for good"
                ),
                Err(caa_runtime::RuntimeError::Crashed) => {
                    assert!(planned.is_some(), "{name} crashed unplanned");
                }
                Err(e) => panic!("{name} failed: {e}"),
            }
        }
        assert!(!artifacts.trace.is_empty());
        // Top-level entries per thread: survivors enter every top action,
        // a successful rejoiner re-enters its crash action once on top of
        // that, and a thread that stayed down entered at most the actions
        // up to (and including) its crash action.
        let mut enters: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for e in artifacts.trace.runtime_events() {
            if matches!(
                e.kind,
                caa_runtime::observe::EventKind::Enter { depth: 1, .. }
            ) {
                *enters.entry(e.thread.as_u32()).or_default() += 1;
            }
        }
        for t in 0..plan.threads {
            let n = enters.get(&t).copied().unwrap_or(0);
            let planned = plan.crashes.iter().find(|c| c.thread == t);
            let rejoined = planned.is_some() && artifacts.report.results[t as usize].1.is_ok();
            match planned {
                None => assert_eq!(n, plan.top.len(), "T{t}: survivor misses entries"),
                Some(_) if rejoined => {
                    assert_eq!(n, plan.top.len() + 1, "T{t}: rejoiner double-enters once");
                }
                Some(c) => assert!(
                    n <= c.top_action as usize + 1,
                    "T{t}: dead thread entered past its crash action"
                ),
            }
        }
    }

    #[test]
    fn object_scenarios_record_acquisitions() {
        let cfg = ScenarioConfig::default();
        let mut acquisitions = 0usize;
        for seed in 0..40 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            if !plan.has_objects() {
                continue;
            }
            let artifacts = execute(&plan);
            acquisitions += artifacts
                .trace
                .runtime_events()
                .filter(|e| {
                    matches!(
                        e.kind,
                        caa_runtime::observe::EventKind::ObjectAcquired { .. }
                    )
                })
                .count();
        }
        assert!(
            acquisitions > 0,
            "object scenarios must actually acquire objects"
        );
    }

    #[test]
    fn crash_scenarios_terminate_with_the_crash_reported() {
        let cfg = ScenarioConfig::default();
        let (mut found, mut stayed_down, mut readmitted) = (false, 0, 0);
        for seed in 0..60 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            if plan.crashes.is_empty() {
                continue;
            }
            found = true;
            let artifacts = execute(&plan);
            for (i, (name, result)) in artifacts.report.results.iter().enumerate() {
                let planned = plan.crashes.iter().find(|c| c.thread == i as u32);
                match (planned, result) {
                    (None, Ok(())) => {}
                    (None, Err(e)) => panic!("{name} failed unplanned: {e}"),
                    (Some(_), Err(caa_runtime::RuntimeError::Crashed)) => stayed_down += 1,
                    (Some(c), Ok(())) => {
                        assert!(
                            c.rejoin_delay_ns.is_some(),
                            "{name} survived its crash without a planned rejoin"
                        );
                        readmitted += 1;
                    }
                    (Some(_), Err(e)) => panic!("{name} died of {e}, not the planned crash"),
                }
            }
        }
        assert!(found, "no crash seed in range");
        assert!(stayed_down > 0, "no crash stayed down in range");
        assert!(readmitted > 0, "no rejoin was granted in range");
    }
}
