//! Scenario execution: materialises a [`ScenarioPlan`] into real
//! [`ActionDef`]s and participant bodies, runs them on the virtual-time
//! network with a [`TraceRecorder`] attached, and returns the run's
//! artifacts.

use std::sync::Arc;

use caa_core::exception::{Exception, ExceptionId};
use caa_core::outcome::HandlerVerdict;
use caa_core::time::{secs, VirtualDuration};
use caa_exgraph::generate::conjunction_lattice;
use caa_runtime::{ActionDef, Ctx, Step, System, SystemReport};
use caa_simnet::LatencyModel;

use crate::plan::{ActionPlan, Phase, ScenarioPlan, VerdictChoice};
use crate::trace::{Trace, TraceRecorder};

/// Everything produced by one scenario execution.
#[derive(Debug)]
pub struct RunArtifacts {
    /// The executed plan.
    pub plan: ScenarioPlan,
    /// The canonical recorded trace.
    pub trace: Trace,
    /// The system's own report (thread results, counters, elapsed time).
    pub report: SystemReport,
}

/// One action of the plan, compiled: its definition plus compiled phases.
struct ExecNode {
    plan: ActionPlan,
    def: ActionDef,
    phases: Vec<ExecPhase>,
}

enum ExecPhase {
    Compute {
        dur: VirtualDuration,
        sends: Vec<(u32, u32)>,
        listeners: Vec<u32>,
    },
    Nested {
        children: Vec<Arc<ExecNode>>,
    },
}

fn role_name(thread: u32) -> String {
    format!("r{thread}")
}

fn build_node(plan: &ActionPlan, scenario: &ScenarioPlan) -> Arc<ExecNode> {
    let prims: Vec<ExceptionId> = plan
        .group
        .iter()
        .map(|&t| ExceptionId::new(plan.raise_exception(t)))
        .collect();
    let graph = conjunction_lattice(&prims, 2.min(prims.len()))
        .expect("per-action raise exceptions are nonempty and distinct");

    let mut builder = ActionDef::builder(plan.name.clone())
        .graph(graph)
        .signal_timeout(secs(scenario.signal_timeout));
    for &t in &plan.group {
        builder = builder.role(role_name(t), t);
    }
    let delta = secs(scenario.delta);
    for &(t, verdict) in &plan.verdicts {
        let signal_exc = ExceptionId::new(plan.signal_exception());
        builder = builder.fallback_handler(role_name(t), move |hc| {
            hc.work(delta)?;
            Ok(match verdict {
                VerdictChoice::Recovered => HandlerVerdict::Recovered,
                VerdictChoice::Undo => HandlerVerdict::Undo,
                VerdictChoice::Fail => HandlerVerdict::Fail,
                VerdictChoice::Signal => HandlerVerdict::Signal(signal_exc.clone()),
            })
        });
    }
    if plan.depth > 0 {
        let t_abort = secs(scenario.t_abort);
        for &t in &plan.group {
            let eab = plan
                .abort_raises_eab
                .contains(&t)
                .then(|| ExceptionId::new(plan.eab_exception(t)));
            builder = builder.abort_handler(role_name(t), move |ac| {
                ac.work(t_abort)?;
                Ok(eab.clone().map(Exception::new))
            });
        }
    }
    let def = builder
        .build()
        .expect("generated plans declare valid roles");

    let phases = plan
        .phases
        .iter()
        .map(|phase| match phase {
            Phase::Compute {
                dur_ns,
                sends,
                listeners,
            } => ExecPhase::Compute {
                dur: VirtualDuration::from_nanos(*dur_ns),
                sends: sends.clone(),
                listeners: listeners.clone(),
            },
            Phase::Nested { children } => ExecPhase::Nested {
                children: children.iter().map(|c| build_node(c, scenario)).collect(),
            },
        })
        .collect();

    Arc::new(ExecNode {
        plan: plan.clone(),
        def,
        phases,
    })
}

/// Drains the role's app inbox for exactly `dur` of virtual time, so the
/// phase consumes the same duration whether or not messages arrive (the
/// alignment discipline the Lemma 1 oracle relies on).
fn listen(rc: &mut Ctx, dur: VirtualDuration) -> Step<()> {
    let deadline = rc.now().saturating_add(dur);
    loop {
        let remaining = deadline.duration_since(rc.now());
        if remaining.is_zero() {
            return Ok(());
        }
        let _ = rc.recv_app_timeout(remaining)?;
    }
}

fn body_phases(rc: &mut Ctx, node: &ExecNode, me: u32) -> Step<()> {
    for phase in &node.phases {
        match phase {
            ExecPhase::Compute {
                dur,
                sends,
                listeners,
            } => {
                for &(from, to) in sends {
                    if from == me {
                        rc.send_to_role(&role_name(to), "app", u64::from(to))?;
                    }
                }
                if listeners.contains(&me) {
                    listen(rc, *dur)?;
                } else {
                    rc.work(*dur)?;
                }
            }
            ExecPhase::Nested { children } => {
                if let Some(child) = children.iter().find(|c| c.plan.group.contains(&me)) {
                    let def = child.def.clone();
                    let child = Arc::clone(child);
                    rc.enter(&def, &role_name(me), move |cc| body_phases(cc, &child, me))
                        .map(|_| ())?;
                }
            }
        }
    }
    if let Some(raise_phase) = &node.plan.raise {
        match raise_phase.raisers.iter().find(|(t, _)| *t == me) {
            Some(&(_, delay_ns)) => {
                rc.work(VirtualDuration::from_nanos(delay_ns))?;
                rc.raise(Exception::new(node.plan.raise_exception(me)))?;
            }
            None => {
                // Peers will raise; compute until their recovery interrupts.
                rc.work(secs(30.0))?;
            }
        }
    }
    Ok(())
}

/// Executes `plan` on a fresh virtual-time system, recording a canonical
/// trace. The run is deterministic: the same plan produces byte-identical
/// [`Trace::render`] output on every execution.
#[must_use]
pub fn execute(plan: &ScenarioPlan) -> RunArtifacts {
    let recorder = TraceRecorder::new();
    let mut sys = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(plan.t_mmax)))
        .seed(plan.seed)
        .resolution_delay(secs(plan.t_reso))
        .faults(plan.fault_plan())
        .observer(Arc::clone(&recorder) as _)
        .tap(Arc::clone(&recorder) as _)
        .build();

    let nodes: Vec<Arc<ExecNode>> = plan.top.iter().map(|a| build_node(a, plan)).collect();
    for t in 0..plan.threads {
        let nodes = nodes.clone();
        sys.spawn(format!("T{t}"), move |ctx| {
            for node in &nodes {
                let def = node.def.clone();
                let node = Arc::clone(node);
                ctx.enter(&def, &role_name(t), move |rc| body_phases(rc, &node, t))
                    .map(|_| ())?;
            }
            Ok(())
        });
    }
    let report = sys.run();
    RunArtifacts {
        plan: plan.clone(),
        trace: recorder.finish(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ScenarioConfig;

    #[test]
    fn a_simple_seed_executes_cleanly() {
        let plan = ScenarioPlan::generate(1, &ScenarioConfig::default());
        let artifacts = execute(&plan);
        assert!(
            artifacts.report.is_ok(),
            "threads failed: {:?}",
            artifacts.report.results
        );
        assert!(!artifacts.trace.is_empty());
        // Every thread entered every top-level action.
        let enters = artifacts
            .trace
            .runtime_events()
            .filter(|e| {
                matches!(
                    e.kind,
                    caa_runtime::observe::EventKind::Enter { depth: 1, .. }
                )
            })
            .count();
        assert_eq!(
            enters,
            plan.top.len() * plan.threads as usize,
            "trace:\n{}",
            artifacts.trace.render()
        );
    }
}
