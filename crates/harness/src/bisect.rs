//! Automatic fault-schedule bisection for a violating seed.
//!
//! A violating seed's plan typically carries more chaos than the bug
//! needs: several loss/corruption rules plus a crash-stop, of which only
//! one or two actually matter. This module shrinks the plan's **fault and
//! crash schedule** to a minimal still-violating subset by greedy delta
//! debugging: repeatedly drop one fault rule (or the crash-stop) and keep
//! the removal whenever the violation survives, until the schedule is
//! 1-minimal — removing any single remaining element makes the violation
//! disappear. Everything else about the plan (topology, workload, timing)
//! is untouched, so the minimized plan replays deterministically.
//!
//! The result persists next to the seed's corpus entry
//! ([`write_corpus_entry`]) as a parseable [`Schedule`], so a minimized
//! repro survives the session that found it:
//!
//! ```text
//! cargo run -p caa-harness --example replay -- 42 --bisect
//! ```

use std::path::{Path, PathBuf};

use crate::arena::ExecutionArena;
use crate::exec::execute_in;
use crate::oracle::check_run;
use crate::plan::{ActionPlan, Phase, ScenarioPlan};

/// Which parts of a plan's chaos schedule are kept: indices into the
/// original [`ScenarioPlan::faults`] list plus indices into its crash
/// list. Serialises to a line-oriented text form that round-trips
/// through [`Schedule::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Indices (into the *original* plan's fault list) of the rules kept.
    pub fault_indices: Vec<usize>,
    /// Indices (into the *original* plan's crash list) of the crash-stop
    /// participants kept.
    pub crash_indices: Vec<usize>,
}

impl Schedule {
    /// The full schedule of `plan` (nothing dropped).
    #[must_use]
    pub fn full(plan: &ScenarioPlan) -> Schedule {
        Schedule {
            fault_indices: (0..plan.faults.len()).collect(),
            crash_indices: (0..plan.crashes.len()).collect(),
        }
    }

    /// Number of schedule elements (fault rules + crashes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.fault_indices.len() + self.crash_indices.len()
    }

    /// Whether the schedule keeps nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies the schedule to `plan`: drops every fault rule and every
    /// crash-stop not listed.
    #[must_use]
    pub fn apply(&self, plan: &ScenarioPlan) -> ScenarioPlan {
        let mut out = plan.clone();
        out.faults = self
            .fault_indices
            .iter()
            .filter_map(|&i| plan.faults.get(i).cloned())
            .collect();
        out.crashes = self
            .crash_indices
            .iter()
            .filter_map(|&i| plan.crashes.get(i).copied())
            .collect();
        out
    }

    /// The persisted line-oriented form (`fault <i>` per kept rule, then
    /// `crash <i>` per kept crash, or `no-crash` when none survive).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &i in &self.fault_indices {
            let _ = writeln!(out, "fault {i}");
        }
        if self.crash_indices.is_empty() {
            let _ = writeln!(out, "no-crash");
        } else {
            for &i in &self.crash_indices {
                let _ = writeln!(out, "crash {i}");
            }
        }
        out
    }

    /// Parses the form written by [`Schedule::render`]. The pre-multi-crash
    /// forms still load: a bare `crash` line means crash 0 is kept, and
    /// `no-crash` keeps none, so corpus entries written before crash lists
    /// replay unchanged.
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending line.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut schedule = Schedule {
            fault_indices: Vec::new(),
            crash_indices: Vec::new(),
        };
        for line in text.lines() {
            let line = line.trim();
            match line {
                "" => {}
                "crash" => schedule.crash_indices.push(0),
                "no-crash" => {}
                other => {
                    if let Some(i) = other.strip_prefix("fault ") {
                        schedule.fault_indices.push(
                            i.trim()
                                .parse()
                                .map_err(|e| format!("bad fault index: {e}"))?,
                        );
                    } else if let Some(i) = other.strip_prefix("crash ") {
                        schedule.crash_indices.push(
                            i.trim()
                                .parse()
                                .map_err(|e| format!("bad crash index: {e}"))?,
                        );
                    } else {
                        return Err(format!("unrecognised schedule line: {other:?}"));
                    }
                }
            }
        }
        Ok(schedule)
    }
}

/// Outcome of one bisection run.
#[derive(Debug)]
pub struct BisectOutcome {
    /// The minimal still-violating schedule (indices into the original
    /// plan's fault list).
    pub schedule: Schedule,
    /// The minimized plan ([`Schedule::apply`] of `schedule`).
    pub plan: ScenarioPlan,
    /// How many candidate executions the bisection performed.
    pub attempts: u64,
}

/// Shrinks `plan`'s fault/crash schedule to a minimal subset for which
/// `still_violates` holds. Returns `None` when the *full* plan does not
/// violate (nothing to bisect). The predicate is called once per
/// candidate; the greedy loop is `O(n²)` in the schedule size, which is
/// single digits for generated plans.
#[must_use]
pub fn bisect_schedule(
    plan: &ScenarioPlan,
    mut still_violates: impl FnMut(&ScenarioPlan) -> bool,
) -> Option<BisectOutcome> {
    let mut attempts = 1;
    if !still_violates(plan) {
        return None;
    }
    let mut schedule = Schedule::full(plan);
    loop {
        let mut progressed = false;
        for drop_at in 0..schedule.fault_indices.len() {
            let mut candidate = schedule.clone();
            candidate.fault_indices.remove(drop_at);
            attempts += 1;
            if still_violates(&candidate.apply(plan)) {
                schedule = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            for drop_at in 0..schedule.crash_indices.len() {
                let mut candidate = schedule.clone();
                candidate.crash_indices.remove(drop_at);
                attempts += 1;
                if still_violates(&candidate.apply(plan)) {
                    schedule = candidate;
                    progressed = true;
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    let plan = schedule.apply(plan);
    Some(BisectOutcome {
        schedule,
        plan,
        attempts,
    })
}

/// The default violation predicate: execute the plan and check every
/// run oracle (the same verdicts a sweep applies, minus the replay
/// check — bisection re-executes candidates constantly, so the replay
/// oracle would double every probe for no extra signal).
#[must_use]
pub fn plan_violates(plan: &ScenarioPlan, arena: &mut ExecutionArena) -> bool {
    let artifacts = execute_in(plan, arena);
    let violating = !check_run(&artifacts).is_empty();
    arena.recycle_trace(artifacts.trace);
    violating
}

/// Persists a bisection outcome under `<dir>/<seed>-bisect/`: the
/// parseable minimized [`Schedule`], the minimized plan's description and
/// the minimized plan's kept fault rules (debug form). Returns the entry
/// path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_corpus_entry(dir: &Path, outcome: &BisectOutcome) -> std::io::Result<PathBuf> {
    use std::fmt::Write as _;
    let entry = dir.join(format!("{}-bisect", outcome.plan.seed));
    std::fs::create_dir_all(&entry)?;
    std::fs::write(entry.join("schedule.txt"), outcome.schedule.render())?;
    let mut plan = outcome.plan.describe();
    plan.push('\n');
    let _ = writeln!(plan, "bisection attempts: {}", outcome.attempts);
    for (i, fault) in outcome.plan.faults.iter().enumerate() {
        let _ = writeln!(plan, "kept fault {i}: {fault:?}");
    }
    if outcome.plan.crashes.is_empty() {
        let _ = writeln!(plan, "crash dropped");
    } else {
        for (i, c) in outcome.plan.crashes.iter().enumerate() {
            let _ = writeln!(plan, "kept crash {i}: {c:?}");
        }
    }
    std::fs::write(entry.join("plan.txt"), plan)?;
    Ok(entry)
}

// ---------------------------------------------------------------------------
// Workload bisection: shrinking the *plan*, not just its chaos schedule.
// ---------------------------------------------------------------------------

/// One structural reduction of a plan's workload. Unlike [`Schedule`]
/// (which only masks the chaos schedule), workload steps rewrite the
/// plan itself: dropping whole top-level actions, phases, nested
/// children, raises, object operations, even the last participant. Each
/// step names its target against the plan it was applied to, so a
/// recorded step sequence replays with [`apply_steps`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadStep {
    /// Drop crash-stop `i` (index into the current plan's crash list).
    DropCrash(usize),
    /// Drop fault rule `i` (index into the current plan's fault list).
    DropFault(usize),
    /// Drop top-level action `i` (inapplicable when the crash-stop dies
    /// during it, or when it is the only top-level action).
    DropTopAction(usize),
    /// Drop the highest-numbered thread from the whole plan
    /// (inapplicable when the crash or a pinned fault rule targets it).
    DropLastThread,
    /// Drop the named action's entire raise phase.
    DropRaise {
        /// The action's unique name.
        action: String,
    },
    /// Drop one raiser of the named action (which must keep ≥ 1).
    DropRaiser {
        /// The action's unique name.
        action: String,
        /// Index into the raise phase's raiser list.
        raiser: usize,
    },
    /// Drop phase `phase` of the named action.
    DropPhase {
        /// The action's unique name.
        action: String,
        /// Index into the action's phase list.
        phase: usize,
    },
    /// Drop one child of a nested phase (which must keep ≥ 1; dropping
    /// the last child is [`WorkloadStep::DropPhase`]).
    DropChild {
        /// The action's unique name.
        action: String,
        /// Index into the action's phase list (a nested phase).
        phase: usize,
        /// Index into the phase's child list.
        child: usize,
    },
    /// Drop one shared-object operation of a compute phase.
    DropObjectOp {
        /// The action's unique name.
        action: String,
        /// Index into the action's phase list (a compute phase).
        phase: usize,
        /// Index into the phase's operation list.
        op: usize,
    },
}

impl WorkloadStep {
    /// The persisted one-line form (see [`WorkloadStep::parse`]).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            WorkloadStep::DropCrash(i) => format!("drop-crash {i}"),
            WorkloadStep::DropFault(i) => format!("drop-fault {i}"),
            WorkloadStep::DropTopAction(i) => format!("drop-top {i}"),
            WorkloadStep::DropLastThread => "drop-thread".into(),
            WorkloadStep::DropRaise { action } => format!("drop-raise {action}"),
            WorkloadStep::DropRaiser { action, raiser } => {
                format!("drop-raiser {action} {raiser}")
            }
            WorkloadStep::DropPhase { action, phase } => format!("drop-phase {action} {phase}"),
            WorkloadStep::DropChild {
                action,
                phase,
                child,
            } => format!("drop-child {action} {phase} {child}"),
            WorkloadStep::DropObjectOp { action, phase, op } => {
                format!("drop-op {action} {phase} {op}")
            }
        }
    }

    /// Parses the form written by [`WorkloadStep::render`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed line.
    pub fn parse(line: &str) -> Result<WorkloadStep, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let head = *tokens.first().ok_or("empty workload step")?;
        let arity = |n: usize| -> Result<(), String> {
            if tokens.len() == n + 1 {
                Ok(())
            } else {
                Err(format!("{head}: expected {n} operand(s), got {line:?}"))
            }
        };
        let index = |at: usize, what: &str| -> Result<usize, String> {
            tokens[at]
                .parse()
                .map_err(|e| format!("{head}: bad {what}: {e}"))
        };
        let step = match head {
            "drop-crash" => {
                // The pre-multi-crash form is a bare `drop-crash`; it
                // means crash 0 so recorded reductions keep replaying.
                if tokens.len() == 1 {
                    WorkloadStep::DropCrash(0)
                } else {
                    arity(1)?;
                    WorkloadStep::DropCrash(index(1, "crash index")?)
                }
            }
            "drop-fault" => {
                arity(1)?;
                WorkloadStep::DropFault(index(1, "fault index")?)
            }
            "drop-top" => {
                arity(1)?;
                WorkloadStep::DropTopAction(index(1, "action index")?)
            }
            "drop-thread" => {
                arity(0)?;
                WorkloadStep::DropLastThread
            }
            "drop-raise" => {
                arity(1)?;
                WorkloadStep::DropRaise {
                    action: tokens[1].into(),
                }
            }
            "drop-raiser" => {
                arity(2)?;
                WorkloadStep::DropRaiser {
                    action: tokens[1].into(),
                    raiser: index(2, "raiser index")?,
                }
            }
            "drop-phase" => {
                arity(2)?;
                WorkloadStep::DropPhase {
                    action: tokens[1].into(),
                    phase: index(2, "phase index")?,
                }
            }
            "drop-child" => {
                arity(3)?;
                WorkloadStep::DropChild {
                    action: tokens[1].into(),
                    phase: index(2, "phase index")?,
                    child: index(3, "child index")?,
                }
            }
            "drop-op" => {
                arity(3)?;
                WorkloadStep::DropObjectOp {
                    action: tokens[1].into(),
                    phase: index(2, "phase index")?,
                    op: index(3, "op index")?,
                }
            }
            other => return Err(format!("unrecognised workload step: {other:?}")),
        };
        Ok(step)
    }
}

/// Renders a step sequence, one step per line (the `workload.txt` form).
#[must_use]
pub fn render_steps(steps: &[WorkloadStep]) -> String {
    let mut out = String::new();
    for step in steps {
        out.push_str(&step.render());
        out.push('\n');
    }
    out
}

/// Parses the form written by [`render_steps`].
///
/// # Errors
///
/// A human-readable description of the offending line.
pub fn parse_steps(text: &str) -> Result<Vec<WorkloadStep>, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(WorkloadStep::parse)
        .collect()
}

fn find_action_mut<'p>(plan: &'p mut ScenarioPlan, name: &str) -> Option<&'p mut ActionPlan> {
    fn walk<'a>(action: &'a mut ActionPlan, name: &str) -> Option<&'a mut ActionPlan> {
        if action.name == name {
            return Some(action);
        }
        for phase in &mut action.phases {
            if let Phase::Nested { children } = phase {
                for child in children {
                    if let Some(found) = walk(child, name) {
                        return Some(found);
                    }
                }
            }
        }
        None
    }
    plan.top.iter_mut().find_map(|a| walk(a, name))
}

/// Removes thread `t` from an action subtree: membership, sends,
/// listeners, object operations, raisers, verdicts, Eab designations.
/// Children whose group empties disappear with their phase.
fn strip_thread(action: &mut ActionPlan, t: u32) {
    action.group.retain(|&m| m != t);
    for phase in &mut action.phases {
        match phase {
            Phase::Compute {
                sends,
                listeners,
                object_ops,
                ..
            } => {
                sends.retain(|&(from, to)| from != t && to != t);
                listeners.retain(|&l| l != t);
                object_ops.retain(|op| op.thread != t);
            }
            Phase::Nested { children } => {
                for child in children.iter_mut() {
                    strip_thread(child, t);
                }
                children.retain(|c| !c.group.is_empty());
            }
        }
    }
    action
        .phases
        .retain(|p| !matches!(p, Phase::Nested { children } if children.is_empty()));
    if let Some(raise) = &mut action.raise {
        raise.raisers.retain(|&(r, _)| r != t);
        if raise.raisers.is_empty() {
            action.raise = None;
        }
    }
    action.verdicts.retain(|&(v, _)| v != t);
    action.abort_raises_eab.retain(|&m| m != t);
}

/// Applies one workload step to `plan`. Returns `None` when the step is
/// inapplicable (wrong index, last remaining element, or a reduction
/// that would orphan the crash/fault schedule).
#[must_use]
pub fn apply_step(plan: &ScenarioPlan, step: &WorkloadStep) -> Option<ScenarioPlan> {
    let mut out = plan.clone();
    match step {
        WorkloadStep::DropCrash(i) => {
            if *i >= out.crashes.len() {
                return None;
            }
            out.crashes.remove(*i);
        }
        WorkloadStep::DropFault(i) => {
            if *i >= out.faults.len() {
                return None;
            }
            out.faults.remove(*i);
        }
        WorkloadStep::DropTopAction(i) => {
            if out.top.len() < 2 || *i >= out.top.len() {
                return None;
            }
            // The crash schedules index the top-level sequence; a
            // reduction must never silently retarget one.
            if out.crashes.iter().any(|c| c.top_action as usize == *i) {
                return None;
            }
            for crash in &mut out.crashes {
                if crash.top_action as usize > *i {
                    crash.top_action -= 1;
                }
            }
            out.top.remove(*i);
        }
        WorkloadStep::DropLastThread => {
            if out.threads < 2 {
                return None;
            }
            let t = out.threads - 1;
            if out.crashes.iter().any(|c| c.thread == t)
                || out.faults.iter().any(|f| f.src == Some(t))
            {
                return None;
            }
            for action in &mut out.top {
                strip_thread(action, t);
            }
            out.threads = t;
        }
        WorkloadStep::DropRaise { action } => {
            find_action_mut(&mut out, action)?.raise.take()?;
        }
        WorkloadStep::DropRaiser { action, raiser } => {
            let raise = find_action_mut(&mut out, action)?.raise.as_mut()?;
            if raise.raisers.len() < 2 || *raiser >= raise.raisers.len() {
                return None;
            }
            raise.raisers.remove(*raiser);
        }
        WorkloadStep::DropPhase { action, phase } => {
            let action = find_action_mut(&mut out, action)?;
            if *phase >= action.phases.len() {
                return None;
            }
            action.phases.remove(*phase);
        }
        WorkloadStep::DropChild {
            action,
            phase,
            child,
        } => {
            let action = find_action_mut(&mut out, action)?;
            let Phase::Nested { children } = action.phases.get_mut(*phase)? else {
                return None;
            };
            if children.len() < 2 || *child >= children.len() {
                return None;
            }
            children.remove(*child);
        }
        WorkloadStep::DropObjectOp { action, phase, op } => {
            let action = find_action_mut(&mut out, action)?;
            let Phase::Compute { object_ops, .. } = action.phases.get_mut(*phase)? else {
                return None;
            };
            if *op >= object_ops.len() {
                return None;
            }
            object_ops.remove(*op);
        }
    }
    Some(out)
}

/// Replays a recorded step sequence. Returns `None` when any step no
/// longer applies (the recorded reduction and the plan have diverged).
#[must_use]
pub fn apply_steps(plan: &ScenarioPlan, steps: &[WorkloadStep]) -> Option<ScenarioPlan> {
    let mut out = plan.clone();
    for step in steps {
        out = apply_step(&out, step)?;
    }
    Some(out)
}

/// Every reduction step applicable to `plan`, in the fixed greedy order:
/// chaos schedule first (crash, faults), then coarse structure (top
/// actions, the last thread), then per-action fine structure in preorder
/// (raises, raisers, phases, children, object operations). Coarse-first
/// ordering makes the greedy loop converge in few probes: one accepted
/// `drop-top` removes whole subtrees the fine steps would otherwise
/// shrink one element at a time.
fn workload_candidates(plan: &ScenarioPlan) -> Vec<WorkloadStep> {
    let mut out = Vec::new();
    for i in 0..plan.crashes.len() {
        out.push(WorkloadStep::DropCrash(i));
    }
    for i in 0..plan.faults.len() {
        out.push(WorkloadStep::DropFault(i));
    }
    if plan.top.len() > 1 {
        for i in 0..plan.top.len() {
            out.push(WorkloadStep::DropTopAction(i));
        }
    }
    if plan.threads > 1 {
        out.push(WorkloadStep::DropLastThread);
    }
    for action in plan.actions() {
        if let Some(raise) = &action.raise {
            out.push(WorkloadStep::DropRaise {
                action: action.name.clone(),
            });
            if raise.raisers.len() > 1 {
                for raiser in 0..raise.raisers.len() {
                    out.push(WorkloadStep::DropRaiser {
                        action: action.name.clone(),
                        raiser,
                    });
                }
            }
        }
        for (p, phase) in action.phases.iter().enumerate() {
            out.push(WorkloadStep::DropPhase {
                action: action.name.clone(),
                phase: p,
            });
            match phase {
                Phase::Nested { children } if children.len() > 1 => {
                    for child in 0..children.len() {
                        out.push(WorkloadStep::DropChild {
                            action: action.name.clone(),
                            phase: p,
                            child,
                        });
                    }
                }
                Phase::Compute { object_ops, .. } => {
                    for op in 0..object_ops.len() {
                        out.push(WorkloadStep::DropObjectOp {
                            action: action.name.clone(),
                            phase: p,
                            op,
                        });
                    }
                }
                Phase::Nested { .. } => {}
            }
        }
    }
    out
}

/// Outcome of one workload bisection.
#[derive(Debug)]
pub struct WorkloadOutcome {
    /// The accepted reduction steps, in application order (each indexed
    /// against the plan state it was applied to — replay with
    /// [`apply_steps`]).
    pub steps: Vec<WorkloadStep>,
    /// The 1-minimal still-violating plan.
    pub plan: ScenarioPlan,
    /// How many candidate executions the bisection performed.
    pub attempts: u64,
}

/// Shrinks `plan` — workload structure *and* chaos schedule — to a
/// 1-minimal still-violating plan by greedy delta debugging over
/// [`WorkloadStep`]s: accept any single step that keeps the violation,
/// restart, stop when no step survives. Returns `None` when the full
/// plan does not violate. The fixed candidate order makes the reduction
/// deterministic for a deterministic predicate.
#[must_use]
pub fn bisect_workload(
    plan: &ScenarioPlan,
    mut still_violates: impl FnMut(&ScenarioPlan) -> bool,
) -> Option<WorkloadOutcome> {
    let mut attempts = 1;
    if !still_violates(plan) {
        return None;
    }
    let mut current = plan.clone();
    let mut steps = Vec::new();
    loop {
        let mut progressed = false;
        for step in workload_candidates(&current) {
            let Some(candidate) = apply_step(&current, &step) else {
                continue;
            };
            attempts += 1;
            if still_violates(&candidate) {
                current = candidate;
                steps.push(step);
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    Some(WorkloadOutcome {
        steps,
        plan: current,
        attempts,
    })
}

/// Persists a workload bisection outcome under `<dir>/<seed>-workload/`:
/// the parseable step sequence (`workload.txt`, [`parse_steps`]-loadable)
/// and the minimized plan's description. Returns the entry path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_workload_entry(dir: &Path, outcome: &WorkloadOutcome) -> std::io::Result<PathBuf> {
    use std::fmt::Write as _;
    let entry = dir.join(format!("{}-workload", outcome.plan.seed));
    std::fs::create_dir_all(&entry)?;
    std::fs::write(entry.join("workload.txt"), render_steps(&outcome.steps))?;
    let mut plan = outcome.plan.describe();
    plan.push('\n');
    let _ = writeln!(plan, "bisection attempts: {}", outcome.attempts);
    let _ = writeln!(plan, "reduction steps: {}", outcome.steps.len());
    std::fs::write(entry.join("plan.txt"), plan)?;
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ScenarioConfig;

    /// A seed whose generated plan has at least 2 fault rules and a crash.
    fn rich_plan() -> ScenarioPlan {
        let cfg = ScenarioConfig::default();
        for seed in 0..4000 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            if plan.faults.len() >= 2 && !plan.crashes.is_empty() {
                return plan;
            }
        }
        panic!("no seed with a rich chaos schedule in range");
    }

    #[test]
    fn bisection_minimises_against_a_synthetic_predicate() {
        let plan = rich_plan();
        // The "bug" needs exactly fault rule 1 and the crash.
        let needs = |p: &ScenarioPlan| {
            !p.crashes.is_empty()
                && p.faults
                    .iter()
                    .any(|f| plan.faults.get(1).is_some_and(|orig| f == orig))
        };
        let outcome = bisect_schedule(&plan, needs).expect("full plan violates");
        assert_eq!(outcome.schedule.fault_indices, vec![1]);
        assert_eq!(outcome.schedule.crash_indices.len(), 1);
        assert_eq!(outcome.plan.faults.len(), 1);
        assert_eq!(outcome.plan.crashes.len(), 1);
        // 1-minimality: dropping either remaining element stops the
        // violation.
        assert!(!needs(
            &Schedule {
                fault_indices: vec![],
                crash_indices: outcome.schedule.crash_indices.clone(),
            }
            .apply(&plan)
        ));
        assert!(!needs(
            &Schedule {
                fault_indices: vec![1],
                crash_indices: vec![],
            }
            .apply(&plan)
        ));
    }

    #[test]
    fn bisection_reports_nothing_for_a_passing_plan() {
        let plan = rich_plan();
        assert!(bisect_schedule(&plan, |_| false).is_none());
    }

    #[test]
    fn bisection_can_drop_everything_for_schedule_independent_bugs() {
        let plan = rich_plan();
        let outcome = bisect_schedule(&plan, |_| true).expect("always violating");
        assert!(outcome.schedule.is_empty(), "{:?}", outcome.schedule);
        assert!(outcome.plan.faults.is_empty());
        assert!(outcome.plan.crashes.is_empty());
    }

    #[test]
    fn schedule_round_trips_through_text() {
        let schedule = Schedule {
            fault_indices: vec![0, 2],
            crash_indices: vec![0, 1],
        };
        assert_eq!(Schedule::parse(&schedule.render()), Ok(schedule));
        let none = Schedule {
            fault_indices: vec![],
            crash_indices: vec![],
        };
        assert_eq!(Schedule::parse(&none.render()), Ok(none));
        assert!(Schedule::parse("nonsense").is_err());
        // Pre-multi-crash corpus entries: a bare `crash` keeps crash 0.
        assert_eq!(
            Schedule::parse("fault 1\ncrash\n"),
            Ok(Schedule {
                fault_indices: vec![1],
                crash_indices: vec![0],
            })
        );
    }

    #[test]
    fn corpus_entry_persists_the_minimized_schedule() {
        let plan = rich_plan();
        let outcome = bisect_schedule(&plan, |p| !p.crashes.is_empty()).expect("violates");
        let dir = std::env::temp_dir().join(format!("caa-bisect-test-{}", std::process::id()));
        let entry = write_corpus_entry(&dir, &outcome).expect("persist");
        let text = std::fs::read_to_string(entry.join("schedule.txt")).unwrap();
        assert_eq!(Schedule::parse(&text), Ok(outcome.schedule.clone()));
        assert!(std::fs::read_to_string(entry.join("plan.txt"))
            .unwrap()
            .contains("bisection attempts"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_predicate_accepts_clean_seeds() {
        let mut arena = ExecutionArena::new();
        let plan = ScenarioPlan::generate(3, &ScenarioConfig::default());
        assert!(!plan_violates(&plan, &mut arena), "seed 3 is clean");
    }

    /// A seed whose plan has a top-level raise by thread 0 plus plenty of
    /// reducible structure around it.
    fn raising_plan() -> ScenarioPlan {
        let cfg = ScenarioConfig::default();
        for seed in 0..4000 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            let raising = plan
                .top
                .iter()
                .any(|a| has_zero_raise(a) && !a.phases.is_empty());
            if raising && plan.threads >= 3 && plan.actions().len() >= 3 {
                return plan;
            }
        }
        panic!("no seed with a rich raising workload in range");
    }

    /// The synthetic "bug": some top-level action raises via thread 0,
    /// and at least 2 threads participate.
    fn has_zero_raise(a: &ActionPlan) -> bool {
        a.raise
            .as_ref()
            .is_some_and(|r| r.raisers.iter().any(|&(t, _)| t == 0))
    }

    fn zero_raise_bug(p: &ScenarioPlan) -> bool {
        p.threads >= 2 && p.top.iter().any(has_zero_raise)
    }

    #[test]
    fn workload_bisection_reaches_the_known_minimal_plan() {
        let plan = raising_plan();
        let outcome = bisect_workload(&plan, zero_raise_bug).expect("full plan violates");
        let min = &outcome.plan;
        // The 1-minimal plan for this predicate: one top-level action,
        // two threads, no phases, no chaos schedule, and a raise that is
        // exactly thread 0.
        assert_eq!(min.top.len(), 1, "{}", min.describe());
        assert_eq!(min.threads, 2, "{}", min.describe());
        assert!(min.crashes.is_empty());
        assert!(min.faults.is_empty());
        assert!(min.top[0].phases.is_empty(), "{}", min.describe());
        let raise = min.top[0].raise.as_ref().expect("raise survives");
        assert_eq!(raise.raisers.len(), 1);
        assert_eq!(raise.raisers[0].0, 0);
        // 1-minimality: every still-applicable step breaks the predicate.
        for step in workload_candidates(min) {
            if let Some(candidate) = apply_step(min, &step) {
                assert!(
                    !zero_raise_bug(&candidate),
                    "reduction {} kept the violation",
                    step.render()
                );
            }
        }
        // The recorded steps replay the reduction exactly.
        let replayed = apply_steps(&plan, &outcome.steps).expect("steps replay");
        assert_eq!(format!("{replayed:?}"), format!("{min:?}"));
    }

    #[test]
    fn workload_steps_round_trip_through_text() {
        let steps = vec![
            WorkloadStep::DropCrash(1),
            WorkloadStep::DropFault(2),
            WorkloadStep::DropTopAction(1),
            WorkloadStep::DropLastThread,
            WorkloadStep::DropRaise {
                action: "a0.1".into(),
            },
            WorkloadStep::DropRaiser {
                action: "a0".into(),
                raiser: 1,
            },
            WorkloadStep::DropPhase {
                action: "a1".into(),
                phase: 2,
            },
            WorkloadStep::DropChild {
                action: "a0".into(),
                phase: 1,
                child: 0,
            },
            WorkloadStep::DropObjectOp {
                action: "a0.0".into(),
                phase: 0,
                op: 2,
            },
        ];
        assert_eq!(parse_steps(&render_steps(&steps)), Ok(steps));
        assert!(WorkloadStep::parse("drop-everything").is_err());
        assert!(WorkloadStep::parse("drop-fault x").is_err());
        assert!(WorkloadStep::parse("drop-crash x").is_err());
        // The pre-multi-crash form drops the (then unique) crash 0.
        assert_eq!(
            WorkloadStep::parse("drop-crash"),
            Ok(WorkloadStep::DropCrash(0))
        );
    }

    #[test]
    fn workload_reductions_preserve_plan_validity() {
        use crate::plan::validate_plan;
        let cfg = ScenarioConfig::default();
        for seed in 0..40 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            for step in workload_candidates(&plan) {
                if let Some(reduced) = apply_step(&plan, &step) {
                    // Top-level groups must track the (possibly reduced)
                    // thread count; everything else the validator checks
                    // must survive any single reduction.
                    validate_plan(&reduced)
                        .unwrap_or_else(|e| panic!("seed {seed}, step {}: {e}", step.render()));
                }
            }
        }
    }

    #[test]
    fn workload_entry_persists_the_step_sequence() {
        let plan = raising_plan();
        let outcome = bisect_workload(&plan, zero_raise_bug).expect("violates");
        let dir = std::env::temp_dir().join(format!("caa-workload-test-{}", std::process::id()));
        let entry = write_workload_entry(&dir, &outcome).expect("persist");
        let text = std::fs::read_to_string(entry.join("workload.txt")).unwrap();
        assert_eq!(parse_steps(&text), Ok(outcome.steps.clone()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
