//! Automatic fault-schedule bisection for a violating seed.
//!
//! A violating seed's plan typically carries more chaos than the bug
//! needs: several loss/corruption rules plus a crash-stop, of which only
//! one or two actually matter. This module shrinks the plan's **fault and
//! crash schedule** to a minimal still-violating subset by greedy delta
//! debugging: repeatedly drop one fault rule (or the crash-stop) and keep
//! the removal whenever the violation survives, until the schedule is
//! 1-minimal — removing any single remaining element makes the violation
//! disappear. Everything else about the plan (topology, workload, timing)
//! is untouched, so the minimized plan replays deterministically.
//!
//! The result persists next to the seed's corpus entry
//! ([`write_corpus_entry`]) as a parseable [`Schedule`], so a minimized
//! repro survives the session that found it:
//!
//! ```text
//! cargo run -p caa-harness --example replay -- 42 --bisect
//! ```

use std::path::{Path, PathBuf};

use crate::arena::ExecutionArena;
use crate::exec::execute_in;
use crate::oracle::check_run;
use crate::plan::ScenarioPlan;

/// Which parts of a plan's chaos schedule are kept: indices into the
/// original [`ScenarioPlan::faults`] list plus whether the crash-stop
/// (if any) is retained. Serialises to a line-oriented text form that
/// round-trips through [`Schedule::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Indices (into the *original* plan's fault list) of the rules kept.
    pub fault_indices: Vec<usize>,
    /// Whether the plan's crash-stop participant is kept.
    pub keep_crash: bool,
}

impl Schedule {
    /// The full schedule of `plan` (nothing dropped).
    #[must_use]
    pub fn full(plan: &ScenarioPlan) -> Schedule {
        Schedule {
            fault_indices: (0..plan.faults.len()).collect(),
            keep_crash: plan.crash.is_some(),
        }
    }

    /// Number of schedule elements (fault rules + crash).
    #[must_use]
    pub fn len(&self) -> usize {
        self.fault_indices.len() + usize::from(self.keep_crash)
    }

    /// Whether the schedule keeps nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies the schedule to `plan`: drops every fault rule not listed
    /// and the crash-stop when `keep_crash` is false.
    #[must_use]
    pub fn apply(&self, plan: &ScenarioPlan) -> ScenarioPlan {
        let mut out = plan.clone();
        out.faults = self
            .fault_indices
            .iter()
            .filter_map(|&i| plan.faults.get(i).cloned())
            .collect();
        if !self.keep_crash {
            out.crash = None;
        }
        out
    }

    /// The persisted line-oriented form (`fault <i>` per kept rule, then
    /// `crash` or `no-crash`).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &i in &self.fault_indices {
            let _ = writeln!(out, "fault {i}");
        }
        let _ = writeln!(
            out,
            "{}",
            if self.keep_crash { "crash" } else { "no-crash" }
        );
        out
    }

    /// Parses the form written by [`Schedule::render`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending line.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut schedule = Schedule {
            fault_indices: Vec::new(),
            keep_crash: false,
        };
        for line in text.lines() {
            let line = line.trim();
            match line {
                "" => {}
                "crash" => schedule.keep_crash = true,
                "no-crash" => schedule.keep_crash = false,
                other => match other.strip_prefix("fault ") {
                    Some(i) => schedule.fault_indices.push(
                        i.trim()
                            .parse()
                            .map_err(|e| format!("bad fault index: {e}"))?,
                    ),
                    None => return Err(format!("unrecognised schedule line: {other:?}")),
                },
            }
        }
        Ok(schedule)
    }
}

/// Outcome of one bisection run.
#[derive(Debug)]
pub struct BisectOutcome {
    /// The minimal still-violating schedule (indices into the original
    /// plan's fault list).
    pub schedule: Schedule,
    /// The minimized plan ([`Schedule::apply`] of `schedule`).
    pub plan: ScenarioPlan,
    /// How many candidate executions the bisection performed.
    pub attempts: u64,
}

/// Shrinks `plan`'s fault/crash schedule to a minimal subset for which
/// `still_violates` holds. Returns `None` when the *full* plan does not
/// violate (nothing to bisect). The predicate is called once per
/// candidate; the greedy loop is `O(n²)` in the schedule size, which is
/// single digits for generated plans.
#[must_use]
pub fn bisect_schedule(
    plan: &ScenarioPlan,
    mut still_violates: impl FnMut(&ScenarioPlan) -> bool,
) -> Option<BisectOutcome> {
    let mut attempts = 1;
    if !still_violates(plan) {
        return None;
    }
    let mut schedule = Schedule::full(plan);
    loop {
        let mut progressed = false;
        for drop_at in 0..schedule.fault_indices.len() {
            let mut candidate = schedule.clone();
            candidate.fault_indices.remove(drop_at);
            attempts += 1;
            if still_violates(&candidate.apply(plan)) {
                schedule = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed && schedule.keep_crash {
            let mut candidate = schedule.clone();
            candidate.keep_crash = false;
            attempts += 1;
            if still_violates(&candidate.apply(plan)) {
                schedule = candidate;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let plan = schedule.apply(plan);
    Some(BisectOutcome {
        schedule,
        plan,
        attempts,
    })
}

/// The default violation predicate: execute the plan and check every
/// run oracle (the same verdicts a sweep applies, minus the replay
/// check — bisection re-executes candidates constantly, so the replay
/// oracle would double every probe for no extra signal).
#[must_use]
pub fn plan_violates(plan: &ScenarioPlan, arena: &mut ExecutionArena) -> bool {
    let artifacts = execute_in(plan, arena);
    let violating = !check_run(&artifacts).is_empty();
    arena.recycle_trace(artifacts.trace);
    violating
}

/// Persists a bisection outcome under `<dir>/<seed>-bisect/`: the
/// parseable minimized [`Schedule`], the minimized plan's description and
/// the minimized plan's kept fault rules (debug form). Returns the entry
/// path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_corpus_entry(dir: &Path, outcome: &BisectOutcome) -> std::io::Result<PathBuf> {
    use std::fmt::Write as _;
    let entry = dir.join(format!("{}-bisect", outcome.plan.seed));
    std::fs::create_dir_all(&entry)?;
    std::fs::write(entry.join("schedule.txt"), outcome.schedule.render())?;
    let mut plan = outcome.plan.describe();
    plan.push('\n');
    let _ = writeln!(plan, "bisection attempts: {}", outcome.attempts);
    for (i, fault) in outcome.plan.faults.iter().enumerate() {
        let _ = writeln!(plan, "kept fault {i}: {fault:?}");
    }
    match outcome.plan.crash {
        Some(c) => {
            let _ = writeln!(plan, "kept crash: {c:?}");
        }
        None => {
            let _ = writeln!(plan, "crash dropped");
        }
    }
    std::fs::write(entry.join("plan.txt"), plan)?;
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ScenarioConfig;

    /// A seed whose generated plan has at least 2 fault rules and a crash.
    fn rich_plan() -> ScenarioPlan {
        let cfg = ScenarioConfig::default();
        for seed in 0..4000 {
            let plan = ScenarioPlan::generate(seed, &cfg);
            if plan.faults.len() >= 2 && plan.crash.is_some() {
                return plan;
            }
        }
        panic!("no seed with a rich chaos schedule in range");
    }

    #[test]
    fn bisection_minimises_against_a_synthetic_predicate() {
        let plan = rich_plan();
        // The "bug" needs exactly fault rule 1 and the crash.
        let needs = |p: &ScenarioPlan| {
            p.crash.is_some()
                && p.faults
                    .iter()
                    .any(|f| plan.faults.get(1).is_some_and(|orig| f == orig))
        };
        let outcome = bisect_schedule(&plan, needs).expect("full plan violates");
        assert_eq!(outcome.schedule.fault_indices, vec![1]);
        assert!(outcome.schedule.keep_crash);
        assert_eq!(outcome.plan.faults.len(), 1);
        assert!(outcome.plan.crash.is_some());
        // 1-minimality: dropping either remaining element stops the
        // violation.
        assert!(!needs(
            &Schedule {
                fault_indices: vec![],
                keep_crash: true
            }
            .apply(&plan)
        ));
        assert!(!needs(
            &Schedule {
                fault_indices: vec![1],
                keep_crash: false
            }
            .apply(&plan)
        ));
    }

    #[test]
    fn bisection_reports_nothing_for_a_passing_plan() {
        let plan = rich_plan();
        assert!(bisect_schedule(&plan, |_| false).is_none());
    }

    #[test]
    fn bisection_can_drop_everything_for_schedule_independent_bugs() {
        let plan = rich_plan();
        let outcome = bisect_schedule(&plan, |_| true).expect("always violating");
        assert!(outcome.schedule.is_empty(), "{:?}", outcome.schedule);
        assert!(outcome.plan.faults.is_empty());
        assert!(outcome.plan.crash.is_none());
    }

    #[test]
    fn schedule_round_trips_through_text() {
        let schedule = Schedule {
            fault_indices: vec![0, 2],
            keep_crash: true,
        };
        assert_eq!(Schedule::parse(&schedule.render()), Ok(schedule));
        let none = Schedule {
            fault_indices: vec![],
            keep_crash: false,
        };
        assert_eq!(Schedule::parse(&none.render()), Ok(none));
        assert!(Schedule::parse("nonsense").is_err());
    }

    #[test]
    fn corpus_entry_persists_the_minimized_schedule() {
        let plan = rich_plan();
        let outcome = bisect_schedule(&plan, |p| p.crash.is_some()).expect("violates");
        let dir = std::env::temp_dir().join(format!("caa-bisect-test-{}", std::process::id()));
        let entry = write_corpus_entry(&dir, &outcome).expect("persist");
        let text = std::fs::read_to_string(entry.join("schedule.txt")).unwrap();
        assert_eq!(Schedule::parse(&text), Ok(outcome.schedule.clone()));
        assert!(std::fs::read_to_string(entry.join("plan.txt"))
            .unwrap()
            .contains("bisection attempts"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_predicate_accepts_clean_seeds() {
        let mut arena = ExecutionArena::new();
        let plan = ScenarioPlan::generate(3, &ScenarioConfig::default());
        assert!(!plan_violates(&plan, &mut arena), "seed 3 is clean");
    }
}
