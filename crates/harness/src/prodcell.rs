//! The FZI production cell (§4) re-expressed as a harness scenario: seeded
//! device-fault schedules, trace recording and the generic oracles, plus
//! the cell's own plate-conservation audit.

use std::sync::Arc;

use caa_prodcell::{
    spawn_controller, Audit, CellFaultScripts, ControllerConfig, DeviceFault, FaultScript,
    ProductionCell,
};
use caa_runtime::{System, SystemReport};

use crate::oracle::{check_invariants, check_replay, Violation};
use crate::rng::Rng;
use crate::trace::{Trace, TraceRecorder};

/// Device faults random schedules may inject — Figure 7's nine primitives
/// minus `LostMessage`, which is injected at the network layer instead.
pub const INJECTABLE: [DeviceFault; 8] = [
    DeviceFault::VerticalMotorStop,
    DeviceFault::RotationMotorStop,
    DeviceFault::VerticalMotorNoMove,
    DeviceFault::RotationMotorNoMove,
    DeviceFault::SensorStuck,
    DeviceFault::LostPlate,
    DeviceFault::ControlSoftwareFault,
    DeviceFault::RuntimeException,
];

/// One production-cell run driven by a seed.
#[derive(Debug)]
pub struct ProdcellRun {
    /// The generating seed.
    pub seed: u64,
    /// Production cycles attempted.
    pub cycles: u32,
    /// The cell after the run (metrics, audit, device states).
    pub cell: ProductionCell,
    /// The system report.
    pub report: SystemReport,
    /// The canonical trace.
    pub trace: Trace,
    /// Oracle violations (empty = passed).
    pub violations: Vec<Violation>,
}

fn random_script(rng: &mut Rng, max_op: u64) -> FaultScript {
    let mut script = FaultScript::new();
    for _ in 0..rng.below(3) {
        let op = rng.range(1, max_op);
        let fault = INJECTABLE[rng.below(INJECTABLE.len() as u64) as usize];
        script.schedule(op, fault);
    }
    script
}

fn scripts_for(seed: u64) -> CellFaultScripts {
    // Faults target the table, robot and press — §4's Figure 7 fault
    // surface; the belts stay fault-free so the audit's inserted count is
    // exact.
    let mut rng = Rng::new(seed ^ 0x70d0_ce11);
    CellFaultScripts {
        table: random_script(&mut rng, 14),
        robot: random_script(&mut rng, 22),
        press: random_script(&mut rng, 8),
        ..CellFaultScripts::default()
    }
}

fn execute(seed: u64, cycles: u32) -> (ProductionCell, SystemReport, Trace) {
    let cell = ProductionCell::new(scripts_for(seed));
    let config = ControllerConfig {
        cycles,
        seed,
        ..ControllerConfig::default()
    };
    let recorder = TraceRecorder::new();
    let mut sys = System::builder()
        .latency(config.latency)
        .seed(config.seed)
        .resolution_delay(config.resolution_delay)
        .observer(Arc::clone(&recorder) as _)
        .tap(Arc::clone(&recorder) as _)
        .build();
    spawn_controller(&mut sys, &cell, &config);
    let report = sys.run();
    (cell, report, recorder.take_trace())
}

/// Runs the production cell under a seeded device-fault schedule, checks
/// the generic oracles plus the cell's plate-conservation audit, and
/// (optionally) the deterministic-replay oracle.
#[must_use]
pub fn run_seed(seed: u64, cycles: u32, replay: bool) -> ProdcellRun {
    let (cell, report, trace) = execute(seed, cycles);
    let mut violations = check_invariants(&report, &trace);

    let audit: Audit = cell.audit_committed();
    if !audit.is_consistent() {
        violations.push(Violation::ThreadFailure {
            thread: "audit".into(),
            error: format!("plate conservation violated: {audit:?}"),
        });
    }
    if audit.inserted != cycles {
        violations.push(Violation::ThreadFailure {
            thread: "audit".into(),
            error: format!("expected {cycles} inserted blanks, audit says {audit:?}"),
        });
    }

    if replay {
        // Shared-object acquisition is arbitrated deterministically through
        // the simulation (see `caa_runtime::objects`), so the cell's full
        // trace — timings, network sends and object acquisitions included —
        // must be byte-identical across replays.
        let (second_cell, _, second) = execute(seed, cycles);
        if let Some(v) = check_replay(&trace, &second) {
            violations.push(v);
        }
        if second_cell.audit_committed() != cell.audit_committed() {
            violations.push(Violation::ThreadFailure {
                thread: "audit".into(),
                error: "replay reached a different committed cell state".into(),
            });
        }
    }

    ProdcellRun {
        seed,
        cycles,
        cell,
        report,
        trace,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_seedless_baseline_passes() {
        // Seed 2 of the xor stream has no scheduled faults for any device
        // only by chance; instead assert the generic contract on a couple
        // of seeds including replay determinism.
        for seed in [0, 1] {
            let run = run_seed(seed, 2, true);
            assert!(
                run.violations.is_empty(),
                "seed {seed}: {:?}\ntrace:\n{}",
                run.violations,
                run.trace.render()
            );
            assert!(run.cell.audit_committed().is_consistent());
        }
    }

    #[test]
    fn scripts_are_deterministic_per_seed() {
        assert_eq!(scripts_for(9), scripts_for(9));
        assert_ne!(scripts_for(9), scripts_for(10));
    }
}
