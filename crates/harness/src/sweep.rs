//! Seed-sweep exploration: fan thousands of seeds across OS worker threads,
//! check every oracle on every trace, and report violating seeds for
//! one-command replay.
//!
//! Each seed is an independent, fully deterministic simulation; the sweep
//! is embarrassingly parallel and scales with the host's cores while the
//! simulated time stays virtual. A violating seed reproduces exactly with
//! [`run_seed`] (or `cargo run -p caa-harness --example replay -- <seed>`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::exec::{execute, RunArtifacts};
use crate::oracle::{check_replay, check_run, Violation};
use crate::plan::{ScenarioConfig, ScenarioPlan};

/// Configuration of one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// First seed (inclusive).
    pub start_seed: u64,
    /// Number of seeds to explore.
    pub seeds: u64,
    /// Worker OS threads; 0 = one per available core.
    pub workers: usize,
    /// Scenario-space bounds.
    pub scenario: ScenarioConfig,
    /// Execute every seed twice and require byte-identical traces.
    pub check_replay: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            start_seed: 0,
            seeds: 1000,
            workers: 0,
            scenario: ScenarioConfig::default(),
            check_replay: true,
        }
    }
}

/// The outcome of one seed.
#[derive(Debug)]
pub struct SeedResult {
    /// The seed.
    pub seed: u64,
    /// Oracle violations (empty = the seed passed).
    pub violations: Vec<Violation>,
    /// The run's artifacts (plan, trace, report).
    pub artifacts: RunArtifacts,
}

impl SeedResult {
    /// Whether every oracle passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The command reproducing this seed's run and oracle verdicts.
    ///
    /// The `replay` example regenerates the plan under the **default**
    /// [`ScenarioConfig`]; a sweep run with a custom config must instead
    /// call [`run_seed`] with that same config to reproduce the seed.
    #[must_use]
    pub fn replay_command(&self) -> String {
        format!("cargo run -p caa-harness --example replay -- {}", self.seed)
    }
}

/// Aggregated outcome of a sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Seeds explored.
    pub seeds_run: u64,
    /// Results of the seeds that violated at least one oracle.
    pub failures: Vec<SeedResult>,
    /// Total trace entries recorded across all seeds.
    pub trace_entries: u64,
    /// Total virtual time simulated across all seeds (seconds).
    pub virtual_secs: f64,
    /// Wall-clock duration of the sweep.
    pub wall: Duration,
}

impl SweepReport {
    /// Whether every explored seed passed every oracle.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// A human summary, listing replay commands for any violating seed.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "swept {} seeds in {:.2?} ({:.0} seeds/s): {} entries, {:.0}s virtual time, {} failing\n",
            self.seeds_run,
            self.wall,
            self.seeds_run as f64 / self.wall.as_secs_f64().max(1e-9),
            self.trace_entries,
            self.virtual_secs,
            self.failures.len(),
        );
        for failure in &self.failures {
            let _ = writeln!(
                out,
                "  seed {} ({}): replay with `{}`",
                failure.seed,
                failure.artifacts.plan.describe(),
                failure.replay_command(),
            );
            for violation in &failure.violations {
                let _ = writeln!(out, "    - {violation}");
            }
        }
        out
    }
}

/// Runs one seed end to end: generate the plan, execute it, check every
/// oracle — executing twice and comparing traces when `check_replay`.
#[must_use]
pub fn run_seed(seed: u64, scenario: &ScenarioConfig, check_replay_too: bool) -> SeedResult {
    let plan = ScenarioPlan::generate(seed, scenario);
    let artifacts = execute(&plan);
    let mut violations = check_run(&artifacts);
    if check_replay_too {
        let replayed = execute(&plan);
        if let Some(v) = check_replay(&artifacts.trace, &replayed.trace) {
            violations.push(v);
        }
    }
    SeedResult {
        seed,
        violations,
        artifacts,
    }
}

/// Explores `config.seeds` seeds across worker threads.
#[must_use]
pub fn sweep(config: &SweepConfig) -> SweepReport {
    let started = Instant::now();
    let workers = if config.workers == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        config.workers
    };
    let next = AtomicU64::new(0);
    let failures: Mutex<Vec<SeedResult>> = Mutex::new(Vec::new());
    let entries = AtomicU64::new(0);
    let virtual_ns = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= config.seeds {
                    return;
                }
                let seed = config.start_seed + i;
                let result = run_seed(seed, &config.scenario, config.check_replay);
                entries.fetch_add(result.artifacts.trace.len() as u64, Ordering::Relaxed);
                virtual_ns.fetch_add(
                    result.artifacts.report.elapsed.as_nanos(),
                    Ordering::Relaxed,
                );
                if !result.passed() {
                    failures.lock().expect("sweep collector").push(result);
                }
            });
        }
    });

    let mut failures = failures.into_inner().expect("sweep collector");
    failures.sort_by_key(|f| f.seed);
    SweepReport {
        seeds_run: config.seeds,
        failures,
        trace_entries: entries.into_inner(),
        virtual_secs: virtual_ns.into_inner() as f64 / 1e9,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_passes_and_reports() {
        let report = sweep(&SweepConfig {
            seeds: 16,
            workers: 2,
            check_replay: true,
            ..SweepConfig::default()
        });
        assert!(report.all_passed(), "{}", report.summary());
        assert_eq!(report.seeds_run, 16);
        assert!(report.trace_entries > 0);
        assert!(report.summary().contains("swept 16 seeds"));
    }

    #[test]
    fn run_seed_exposes_replay_command() {
        let result = run_seed(3, &ScenarioConfig::default(), false);
        assert!(result.replay_command().contains("-- 3"));
    }
}
