//! Seed-sweep exploration: fan thousands of seeds across OS worker threads,
//! check every oracle on every trace, and report violating seeds for
//! one-command replay.
//!
//! Each seed is an independent, fully deterministic simulation; the sweep
//! is embarrassingly parallel and scales with the host's cores while the
//! simulated time stays virtual. A violating seed reproduces exactly with
//! [`run_seed`] (or `cargo run -p caa-harness --example replay -- <seed>`).
//! Beyond one host, a seed range splits across processes or machines with
//! [`SweepConfig::shard`] (`--shard k/n` on the sweep CLIs): shards are
//! disjoint, deterministic and together cover the range exactly. Every
//! sweep also aggregates a [`PathCoverage`] report counting which protocol
//! paths (undo rounds, ƒ cascades, exit races, exit/resolution timeouts,
//! view changes, …) the explored traces actually hit, so untested paths
//! are visible instead of silently assumed covered.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use caa_runtime::observe::EventKind;

use crate::arena::ExecutionArena;
use crate::exec::{execute_owned, run_plan, RunArtifacts};
use crate::metrics::{metrics_json, SweepMetrics};
use crate::oracle::{check_replay, check_run, Violation};
use crate::plan::{ScenarioConfig, ScenarioPlan};
use crate::trace::Trace;

/// One shard of a deterministically split seed range: this process
/// explores the seeds whose offset into the range satisfies
/// `offset % count == index`. Every shard of the same range is disjoint,
/// and the union over `index = 0..count` covers the range exactly — so CI
/// jobs or multiple machines can split one sweep without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This process's shard number (`< count`).
    pub index: u64,
    /// Total number of shards the range is split into (≥ 1).
    pub count: u64,
}

impl Shard {
    /// Parses the `k/n` form used by the CLI flags (e.g. `--shard 2/8`).
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed value.
    pub fn parse(text: &str) -> Result<Shard, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("expected k/n, got {text:?}"))?;
        let shard = Shard {
            index: index
                .trim()
                .parse()
                .map_err(|e| format!("bad index: {e}"))?,
            count: count
                .trim()
                .parse()
                .map_err(|e| format!("bad count: {e}"))?,
        };
        if shard.count == 0 || shard.index >= shard.count {
            return Err(format!(
                "shard index {} out of range for {} shard(s)",
                shard.index, shard.count
            ));
        }
        Ok(shard)
    }
}

/// Configuration of one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// First seed (inclusive).
    pub start_seed: u64,
    /// Number of seeds in the (unsharded) range.
    pub seeds: u64,
    /// Worker OS threads; 0 = one per available core.
    pub workers: usize,
    /// Scenario-space bounds.
    pub scenario: ScenarioConfig,
    /// Execute every seed twice and require byte-identical traces.
    pub check_replay: bool,
    /// Where violating seeds persist their corpus entry
    /// (`<dir>/<seed>/` with the scenario config, plan summary, trace
    /// bytes and violations). `None` disables persistence. The default
    /// (`target/caa-corpus`, relative to the working directory) makes
    /// every violating sweep reproducible via
    /// `cargo run -p caa-harness --example replay -- --corpus <entry>`,
    /// custom [`ScenarioConfig`]s included.
    pub corpus_dir: Option<PathBuf>,
    /// Restrict this process to one shard of the seed range (`None` runs
    /// the whole range). Sharding is deterministic: the same
    /// `(start_seed, seeds, shard)` triple explores the same seeds on any
    /// machine.
    pub shard: Option<Shard>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            start_seed: 0,
            seeds: 1000,
            workers: 0,
            scenario: ScenarioConfig::default(),
            check_replay: true,
            corpus_dir: Some(PathBuf::from("target/caa-corpus")),
            shard: None,
        }
    }
}

/// The outcome of one seed.
#[derive(Debug)]
pub struct SeedResult {
    /// The seed.
    pub seed: u64,
    /// Oracle violations (empty = the seed passed).
    pub violations: Vec<Violation>,
    /// The run's artifacts (plan, trace, report).
    pub artifacts: RunArtifacts,
    /// The persisted corpus entry, when the sweep dumped one (violating
    /// seeds only, and only with [`SweepConfig::corpus_dir`] set).
    pub corpus: Option<PathBuf>,
}

impl SeedResult {
    /// Whether every oracle passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The command reproducing this seed's run and oracle verdicts.
    ///
    /// With a persisted corpus entry the command replays from it —
    /// including the sweep's (possibly non-default) [`ScenarioConfig`]
    /// and a byte-exact comparison against the recorded trace. Without
    /// one, the bare-seed form regenerates the plan under the **default**
    /// config; a sweep run with a custom config but no corpus must call
    /// [`run_seed`] with that same config to reproduce the seed.
    #[must_use]
    pub fn replay_command(&self) -> String {
        match &self.corpus {
            Some(entry) => format!(
                "cargo run -p caa-harness --example replay -- --corpus {}",
                entry.display()
            ),
            None => format!("cargo run -p caa-harness --example replay -- {}", self.seed),
        }
    }
}

/// Persists one violating seed's corpus entry under `<dir>/<seed>/`:
/// the scenario config (key=value, [`ScenarioConfig::from_kv`]-loadable),
/// the plan summary, the canonical trace bytes and the oracle verdicts.
///
/// Entries never clobber a *different* config's repro: when `<dir>/<seed>`
/// already records another config (two sweeps sharing a corpus dir), the
/// entry lands at `<dir>/<seed>-<config hash>` instead. The replay
/// example parses the seed from the leading digits, so both forms load.
fn dump_corpus(
    dir: &Path,
    scenario: &ScenarioConfig,
    result: &SeedResult,
) -> std::io::Result<PathBuf> {
    let kv = scenario.to_kv();
    let mut entry = dir.join(result.seed.to_string());
    match std::fs::read_to_string(entry.join("config.txt")) {
        Ok(existing) if existing != kv => {
            // FNV-1a over the config: a stable, collision-resistant-enough
            // discriminator for a handful of configs per corpus dir.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in kv.as_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            entry = dir.join(format!("{}-{:08x}", result.seed, hash as u32));
        }
        _ => {}
    }
    write_corpus_files(&entry, &kv, result)?;
    Ok(entry)
}

/// Writes the corpus entry's file set (config, plan summary, trace bytes,
/// oracle verdicts) into `entry`, creating it. Shared between the sweep's
/// violating-seed dumps and the fuzz loop's lineage entries (which add a
/// `lineage.txt` on top).
pub(crate) fn write_corpus_files(
    entry: &Path,
    config_kv: &str,
    result: &SeedResult,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    std::fs::create_dir_all(entry)?;
    std::fs::write(entry.join("config.txt"), config_kv)?;
    let mut plan = result.artifacts.plan.describe();
    plan.push('\n');
    std::fs::write(entry.join("plan.txt"), plan)?;
    std::fs::write(entry.join("trace.txt"), result.artifacts.trace.render())?;
    let mut verdicts = String::new();
    for violation in &result.violations {
        let _ = writeln!(verdicts, "{violation}");
    }
    std::fs::write(entry.join("violations.txt"), verdicts)?;
    Ok(())
}

/// Which protocol paths a sweep actually exercised, counted from the
/// recorded traces. Untested paths are visible as zeros: a sweep whose
/// scenario space claims to cover crashes but whose coverage shows
/// `resolution_timeouts == 0` never drove the membership extension at
/// all.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct PathCoverage {
    /// Coordinated recoveries started (RecoveryStart events).
    pub recoveries: u64,
    /// Undo rounds: µ-coordinated `SignalOutcome` conclusions.
    pub undo_outcomes: u64,
    /// ƒ conclusions (coordinated failure outcomes), the ƒ-cascade fuel:
    /// each non-top failure re-raises in the enclosing action.
    pub failure_outcomes: u64,
    /// ƒ outcomes at nesting depth > 1 — actual cascade steps.
    pub failure_cascades: u64,
    /// Exit races: an exit phase interrupted by a recovery trigger
    /// (ExitStart followed by RecoveryStart on the same thread and
    /// instance).
    pub exit_races: u64,
    /// Bounded exit waits that expired (ExitTimeout events).
    pub exit_timeouts: u64,
    /// Bounded resolution waits that expired (ResolutionTimeout events).
    pub resolution_timeouts: u64,
    /// Membership view changes observed (ViewChange events).
    pub view_changes: u64,
    /// Crash-stops observed (Crash events).
    pub crash_stops: u64,
    /// Nested-action abortions (Abort events).
    pub aborts: u64,
    /// Shared-object acquisitions (ObjectAcquired events).
    pub object_acquisitions: u64,
    /// Epoch-numbered rejoins: restarted participants readmitted into a
    /// view (joiner-side Rejoin events; every other member also observes
    /// the readmission, counted once here via the joiner's own event).
    pub rejoins: u64,
}

impl PathCoverage {
    /// Counts one run's protocol-path hits from its canonical trace.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> PathCoverage {
        use std::collections::HashSet;
        let mut coverage = PathCoverage::default();
        // Threads currently inside an exit phase of an instance.
        let mut exiting: HashSet<(u64, u32)> = HashSet::new();
        for event in trace.runtime_events() {
            let key = (event.action.serial(), event.thread.as_u32());
            match &event.kind {
                EventKind::RecoveryStart { .. } => {
                    coverage.recoveries += 1;
                    if exiting.remove(&key) {
                        coverage.exit_races += 1;
                    }
                }
                EventKind::ExitStart { .. } => {
                    exiting.insert(key);
                }
                EventKind::SignalOutcome { signal } => match signal {
                    caa_core::Signal::Undo => coverage.undo_outcomes += 1,
                    caa_core::Signal::Failure => {
                        coverage.failure_outcomes += 1;
                        // A ƒ below the top level re-raises in the
                        // enclosing action: a cascade step.
                        if event.action.depth() >= 1 {
                            coverage.failure_cascades += 1;
                        }
                    }
                    _ => {}
                },
                EventKind::ExitTimeout { .. } => coverage.exit_timeouts += 1,
                EventKind::ResolutionTimeout { .. } => coverage.resolution_timeouts += 1,
                EventKind::ViewChange { .. } => coverage.view_changes += 1,
                EventKind::Crash => coverage.crash_stops += 1,
                EventKind::Rejoin { thread, .. } if thread.as_u32() == event.thread.as_u32() => {
                    coverage.rejoins += 1;
                }
                EventKind::Abort { .. } => coverage.aborts += 1,
                EventKind::ObjectAcquired { .. } => coverage.object_acquisitions += 1,
                _ => {}
            }
        }
        coverage
    }

    /// Accumulates another run's counts into this one.
    pub fn merge(&mut self, other: &PathCoverage) {
        self.recoveries += other.recoveries;
        self.undo_outcomes += other.undo_outcomes;
        self.failure_outcomes += other.failure_outcomes;
        self.failure_cascades += other.failure_cascades;
        self.exit_races += other.exit_races;
        self.exit_timeouts += other.exit_timeouts;
        self.resolution_timeouts += other.resolution_timeouts;
        self.view_changes += other.view_changes;
        self.crash_stops += other.crash_stops;
        self.aborts += other.aborts;
        self.object_acquisitions += other.object_acquisitions;
        self.rejoins += other.rejoins;
    }

    /// Packs the run's counters into a 48-bit **protocol-path signature**:
    /// twelve 4-bit log-bucketed fields, one per counter, in the struct's
    /// declaration order. Bucketing (0, 1, 2 exact; then doubling ranges
    /// 3–4, 5–8, 9–16, … capped at bucket 15) keeps the signature space
    /// small enough that distinct signatures mean *qualitatively* different
    /// protocol behaviour — one more object acquisition in a hot loop does
    /// not mint a "novel path", but a first resolution timeout or a second
    /// cascade step does. The fuzz frontier ([`mod@crate::fuzz`]) keys novelty
    /// on this value.
    #[must_use]
    pub fn signature(&self) -> u64 {
        fn bucket(n: u64) -> u64 {
            match n {
                0..=2 => n,
                n => {
                    // 3–4 → 3, 5–8 → 4, 9–16 → 5, … (doubling ranges).
                    let bits = u64::from(64 - (n - 1).leading_zeros());
                    (bits + 1).min(15)
                }
            }
        }
        [
            self.recoveries,
            self.undo_outcomes,
            self.failure_outcomes,
            self.failure_cascades,
            self.exit_races,
            self.exit_timeouts,
            self.resolution_timeouts,
            self.view_changes,
            self.crash_stops,
            self.aborts,
            self.object_acquisitions,
            self.rejoins,
        ]
        .iter()
        .fold(0u64, |acc, &n| (acc << 4) | bucket(n))
    }

    /// One-line report, in a stable order.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "recoveries {} | undo {} | failure {} (cascaded {}) | exit races {} | \
             exit timeouts {} | resolution timeouts {} | view changes {} | \
             crashes {} | aborts {} | object acquisitions {} | rejoins {}",
            self.recoveries,
            self.undo_outcomes,
            self.failure_outcomes,
            self.failure_cascades,
            self.exit_races,
            self.exit_timeouts,
            self.resolution_timeouts,
            self.view_changes,
            self.crash_stops,
            self.aborts,
            self.object_acquisitions,
            self.rejoins,
        )
    }
}

/// How many runs hit each distinct protocol-path signature
/// ([`PathCoverage::signature`]). Ordered, so rendering and shard merging
/// are deterministic; merging sums counts per signature.
pub type SignatureMap = BTreeMap<u64, u64>;

/// Sums `other`'s per-signature run counts into `into`.
pub fn merge_signatures(into: &mut SignatureMap, other: &SignatureMap) {
    for (&signature, &count) in other {
        *into.entry(signature).or_insert(0) += count;
    }
}

/// Aggregated outcome of a sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Seeds explored (after shard filtering).
    pub seeds_run: u64,
    /// Full scenario executions performed: with
    /// [`SweepConfig::check_replay`] every seed executes **twice** (run +
    /// replay), so this is `2 × seeds_run` there — the honest denominator
    /// for throughput claims.
    pub executions_run: u64,
    /// Results of the seeds that violated at least one oracle.
    pub failures: Vec<SeedResult>,
    /// Total trace entries recorded across all seeds (primary executions
    /// only; replay traces are compared, then discarded).
    pub trace_entries: u64,
    /// Total virtual time simulated across all seeds (seconds).
    pub virtual_secs: f64,
    /// Which protocol paths the sweep hit, aggregated over every explored
    /// seed's trace.
    pub coverage: PathCoverage,
    /// Distinct protocol-path signatures hit, with per-signature run
    /// counts. Shards merge exactly: summing the maps of every shard of a
    /// range reproduces the unsharded sweep's map.
    pub signatures: SignatureMap,
    /// Protocol latency distributions (virtual time) and scheduler
    /// self-metrics, aggregated over every explored seed (see
    /// [`crate::metrics`]).
    pub metrics: SweepMetrics,
    /// Wall-clock duration of the sweep.
    pub wall: Duration,
}

impl SweepReport {
    /// Whether every explored seed passed every oracle.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Seeds explored per wall-clock second.
    #[must_use]
    pub fn seeds_per_sec(&self) -> f64 {
        self.seeds_run as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Scenario executions per wall-clock second (counts replay-check
    /// re-executions, which "seeds/s" hides).
    #[must_use]
    pub fn executions_per_sec(&self) -> f64 {
        self.executions_run as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// A human summary, listing replay commands for any violating seed.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "swept {} seeds in {:.2?} ({:.0} seeds/s, {:.0} executions/s over {} executions): \
             {} entries, {:.0}s virtual time, {} failing\n",
            self.seeds_run,
            self.wall,
            self.seeds_per_sec(),
            self.executions_per_sec(),
            self.executions_run,
            self.trace_entries,
            self.virtual_secs,
            self.failures.len(),
        );
        let _ = writeln!(out, "paths hit: {}", self.coverage.summary());
        let _ = writeln!(out, "distinct path signatures: {}", self.signatures.len());
        out.push_str(&self.metrics.summary());
        for failure in &self.failures {
            let _ = writeln!(
                out,
                "  seed {} ({}): replay with `{}`",
                failure.seed,
                failure.artifacts.plan.describe(),
                failure.replay_command(),
            );
            for violation in &failure.violations {
                let _ = writeln!(out, "    - {violation}");
            }
        }
        out
    }

    /// The sweep's `metrics.json` document: deterministic (virtual-time)
    /// metrics plus the wall-clock scheduler section. For the same seed
    /// range and scenario, the deterministic section is byte-identical on
    /// any machine; `metrics_merge` over shard documents reproduces the
    /// unsharded document's deterministic section byte-for-byte.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        metrics_json(&self.metrics, self.seeds_run, true)
    }
}

/// Runs one seed end to end: generate the plan, execute it, check every
/// oracle — executing twice and comparing traces when `check_replay`.
#[must_use]
pub fn run_seed(seed: u64, scenario: &ScenarioConfig, check_replay_too: bool) -> SeedResult {
    run_seed_in(seed, scenario, check_replay_too, &mut ExecutionArena::new())
}

/// [`run_seed`] with a trace-buffer preallocation hint (entries). Kept
/// for callers without a long-lived arena — [`run_seed_in`] is the sweep
/// path.
#[must_use]
pub fn run_seed_with_capacity(
    seed: u64,
    scenario: &ScenarioConfig,
    check_replay_too: bool,
    trace_capacity: usize,
) -> SeedResult {
    let mut arena = ExecutionArena::with_trace_capacity(trace_capacity);
    run_seed_in(seed, scenario, check_replay_too, &mut arena)
}

/// [`run_seed`] through a per-worker [`ExecutionArena`]: both executions
/// (run and replay check) recycle network storage, trace buffers and
/// resolution lattices, and the replay comparison streams line by line
/// instead of rendering two full trace strings. Allocation reuse is
/// observably free: traces stay byte-identical to arena-less runs.
#[must_use]
pub fn run_seed_in(
    seed: u64,
    scenario: &ScenarioConfig,
    check_replay_too: bool,
    arena: &mut ExecutionArena,
) -> SeedResult {
    let t = Instant::now();
    let plan = ScenarioPlan::generate(seed, scenario);
    arena
        .metrics_recorder()
        .add_wall("stage_generate_ns", wall_ns(t.elapsed()));
    run_plan_checked(plan, check_replay_too, arena)
}

/// Wall-clock duration as nanoseconds for the stage-timer counters
/// (saturating — a stage will not run for 584 years).
fn wall_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Runs an **explicit plan** end to end — execute, check every oracle,
/// optionally re-execute and compare traces — through a reusable arena.
/// This is [`run_seed_in`] minus the generation step: the fuzz loop
/// ([`mod@crate::fuzz`]) calls it with *mutated* plans no seed generates.
#[must_use]
pub fn run_plan_checked(
    plan: ScenarioPlan,
    check_replay_too: bool,
    arena: &mut ExecutionArena,
) -> SeedResult {
    let seed = plan.seed;
    let t = Instant::now();
    let artifacts = execute_owned(plan, arena);
    let execute_ns = wall_ns(t.elapsed());
    let t = Instant::now();
    let mut violations = check_run(&artifacts);
    let oracle_ns = wall_ns(t.elapsed());
    let t = Instant::now();
    arena.metrics_recorder().record_run(&artifacts);
    let metrics_ns = wall_ns(t.elapsed());
    if check_replay_too {
        // Replay wall time counts as execute; its comparison as oracle —
        // folded below so the recorder is touched once per stage.
        let t = Instant::now();
        let (replayed, _report) = run_plan(&artifacts.plan, arena);
        let replay_execute_ns = wall_ns(t.elapsed());
        let t = Instant::now();
        if let Some(v) = check_replay(&artifacts.trace, &replayed) {
            violations.push(v);
        }
        arena.recycle_trace(replayed);
        let recorder = arena.metrics_recorder();
        recorder.add_wall("stage_execute_ns", execute_ns + replay_execute_ns);
        recorder.add_wall("stage_oracle_ns", oracle_ns + wall_ns(t.elapsed()));
        recorder.add_wall("stage_metrics_ns", metrics_ns);
    } else {
        let recorder = arena.metrics_recorder();
        recorder.add_wall("stage_execute_ns", execute_ns);
        recorder.add_wall("stage_oracle_ns", oracle_ns);
        recorder.add_wall("stage_metrics_ns", metrics_ns);
    }
    SeedResult {
        seed,
        violations,
        artifacts,
        corpus: None,
    }
}

/// Explores `config.seeds` seeds across worker threads.
#[must_use]
pub fn sweep(config: &SweepConfig) -> SweepReport {
    let started = Instant::now();
    let workers = if config.workers == 0 {
        // Oversubscribe the cores 2×: a virtual-time seed serialises its
        // participant threads through futex handoffs, so a worker spends
        // a sizeable slice of its wall time blocked in wake-up latency —
        // a second worker per core overlaps those gaps. (Worker count
        // never affects traces; it only schedules which seed runs where.)
        std::thread::available_parallelism().map_or(1, |n| usize::from(n) * 2)
    } else {
        config.workers
    };
    let next = AtomicU64::new(0);
    let failures: Mutex<Vec<SeedResult>> = Mutex::new(Vec::new());
    let coverage: Mutex<PathCoverage> = Mutex::new(PathCoverage::default());
    let signatures: Mutex<SignatureMap> = Mutex::new(SignatureMap::new());
    let metrics: Mutex<SweepMetrics> = Mutex::new(SweepMetrics::default());
    let entries = AtomicU64::new(0);
    let virtual_ns = AtomicU64::new(0);
    let seeds_run = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| {
                // Per-worker arena: network storage, trace buffers and
                // resolution lattices recycle across this worker's seeds,
                // so steady-state exploration allocates almost nothing.
                let mut arena = ExecutionArena::new();
                let mut local_coverage = PathCoverage::default();
                let mut local_signatures = SignatureMap::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= config.seeds {
                        coverage
                            .lock()
                            .expect("coverage collector")
                            .merge(&local_coverage);
                        merge_signatures(
                            &mut signatures.lock().expect("signature collector"),
                            &local_signatures,
                        );
                        metrics
                            .lock()
                            .expect("metrics collector")
                            .merge(&arena.take_metrics());
                        return;
                    }
                    if let Some(shard) = config.shard {
                        if i % shard.count != shard.index {
                            continue;
                        }
                    }
                    let seed = config.start_seed + i;
                    let busy = Instant::now();
                    let result =
                        run_seed_in(seed, &config.scenario, config.check_replay, &mut arena);
                    seeds_run.fetch_add(1, Ordering::Relaxed);
                    entries.fetch_add(result.artifacts.trace.len() as u64, Ordering::Relaxed);
                    virtual_ns.fetch_add(
                        result.artifacts.report.elapsed.as_nanos(),
                        Ordering::Relaxed,
                    );
                    let run_coverage = PathCoverage::from_trace(&result.artifacts.trace);
                    *local_signatures
                        .entry(run_coverage.signature())
                        .or_insert(0) += 1;
                    local_coverage.merge(&run_coverage);
                    if result.passed() {
                        // Done with this trace: hand its buffer back.
                        arena.recycle_trace(result.artifacts.trace);
                    } else {
                        failures.lock().expect("sweep collector").push(result);
                    }
                    // Worker utilization: wall time spent on seed work
                    // (vs. blocked on the shared collectors or starved).
                    arena
                        .metrics_recorder()
                        .add_wall("worker_busy_ns", wall_ns(busy.elapsed()));
                }
            });
        }
    });

    let mut failures = failures.into_inner().expect("sweep collector");
    failures.sort_by_key(|f| f.seed);
    if let Some(dir) = &config.corpus_dir {
        for failure in &mut failures {
            match dump_corpus(dir, &config.scenario, failure) {
                Ok(entry) => failure.corpus = Some(entry),
                Err(e) => eprintln!("corpus dump for seed {} failed: {e}", failure.seed),
            }
        }
    }
    let seeds_run = seeds_run.into_inner();
    SweepReport {
        seeds_run,
        executions_run: seeds_run * if config.check_replay { 2 } else { 1 },
        failures,
        trace_entries: entries.into_inner(),
        virtual_secs: virtual_ns.into_inner() as f64 / 1e9,
        coverage: coverage.into_inner().expect("coverage collector"),
        signatures: signatures.into_inner().expect("signature collector"),
        metrics: metrics.into_inner().expect("metrics collector"),
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_passes_and_reports() {
        let report = sweep(&SweepConfig {
            seeds: 16,
            workers: 2,
            check_replay: true,
            ..SweepConfig::default()
        });
        assert!(report.all_passed(), "{}", report.summary());
        assert_eq!(report.seeds_run, 16);
        assert!(report.trace_entries > 0);
        assert!(report.summary().contains("swept 16 seeds"));
    }

    #[test]
    fn shards_partition_the_range_deterministically() {
        let base = SweepConfig {
            seeds: 30,
            workers: 2,
            check_replay: false,
            corpus_dir: None,
            ..SweepConfig::default()
        };
        let full = sweep(&base);
        assert_eq!(full.seeds_run, 30);
        let mut sharded_seeds = 0;
        let mut sharded_coverage = PathCoverage::default();
        let mut sharded_signatures = SignatureMap::new();
        for index in 0..3 {
            let report = sweep(&SweepConfig {
                shard: Some(Shard { index, count: 3 }),
                ..base.clone()
            });
            assert_eq!(report.seeds_run, 10, "shard {index} must cover a third");
            sharded_seeds += report.seeds_run;
            sharded_coverage.merge(&report.coverage);
            merge_signatures(&mut sharded_signatures, &report.signatures);
        }
        // The union of the shards is exactly the full sweep.
        assert_eq!(sharded_seeds, full.seeds_run);
        assert_eq!(
            sharded_coverage, full.coverage,
            "sharded coverage must add up to the full sweep's"
        );
        assert_eq!(
            sharded_signatures, full.signatures,
            "sharded signature maps must union to the full sweep's"
        );
    }

    #[test]
    fn signatures_bucket_counts_logarithmically() {
        let a = PathCoverage::default();
        let mut b = PathCoverage::default();
        assert_eq!(a.signature(), b.signature());
        // Doubling-range buckets: 3 and 4 coincide, 4 and 5 differ.
        b.recoveries = 3;
        let sig3 = b.signature();
        b.recoveries = 4;
        assert_eq!(sig3, b.signature());
        b.recoveries = 5;
        assert_ne!(sig3, b.signature());
        // Low counts are exact and field positions are distinct.
        let one_recovery = PathCoverage {
            recoveries: 1,
            ..Default::default()
        };
        let one_abort = PathCoverage {
            aborts: 1,
            ..Default::default()
        };
        assert_ne!(one_recovery.signature(), one_abort.signature());
        assert_ne!(one_recovery.signature(), a.signature());
        // Saturation: astronomically different counts still fit 4 bits.
        let huge = PathCoverage {
            rejoins: u64::MAX,
            ..Default::default()
        };
        assert_eq!(huge.signature() & 0xf, 15);
    }

    #[test]
    fn shard_parses_the_cli_form() {
        assert_eq!(Shard::parse("2/8"), Ok(Shard { index: 2, count: 8 }));
        assert!(Shard::parse("8/8").is_err(), "index must be < count");
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("nope").is_err());
        assert!(Shard::parse("a/b").is_err());
    }

    #[test]
    fn coverage_reports_protocol_paths() {
        let report = sweep(&SweepConfig {
            seeds: 64,
            workers: 2,
            check_replay: false,
            corpus_dir: None,
            ..SweepConfig::default()
        });
        assert!(report.all_passed(), "{}", report.summary());
        let coverage = report.coverage;
        assert!(coverage.recoveries > 0);
        assert!(coverage.aborts > 0);
        assert!(
            report.summary().contains("paths hit:"),
            "{}",
            report.summary()
        );
        assert!(report.summary().contains(&coverage.summary()));
    }

    #[test]
    fn run_seed_exposes_replay_command() {
        let result = run_seed(3, &ScenarioConfig::default(), false);
        assert!(result.replay_command().contains("-- 3"));
    }

    #[test]
    fn summary_reports_both_seed_and_execution_throughput() {
        let report = sweep(&SweepConfig {
            seeds: 8,
            workers: 2,
            check_replay: true,
            ..SweepConfig::default()
        });
        // With check_replay every seed executes twice.
        assert_eq!(report.executions_run, 16);
        assert!(report.executions_per_sec() > report.seeds_per_sec());
        assert!(report.summary().contains("over 16 executions"));
    }

    #[test]
    fn violating_seeds_persist_a_loadable_corpus_entry() {
        let dir = std::env::temp_dir().join(format!("caa-corpus-test-{}", std::process::id()));
        let scenario = ScenarioConfig::object_heavy();
        // Fabricate a violation on a clean seed: corpus persistence is
        // about faithfully dumping whatever failed, not about how.
        let mut result = run_seed(5, &scenario, false);
        result.violations.push(Violation::ThreadFailure {
            thread: "T0".into(),
            error: "injected for the corpus test".into(),
        });
        let entry = dump_corpus(&dir, &scenario, &result).expect("corpus dump");
        assert_eq!(entry, dir.join("5"));

        // The config round-trips through its persisted form...
        let kv = std::fs::read_to_string(entry.join("config.txt")).unwrap();
        let loaded = ScenarioConfig::from_kv(&kv).expect("parse persisted config");
        assert_eq!(format!("{loaded:?}"), format!("{scenario:?}"));
        // ...and the recorded trace bytes reproduce exactly under it.
        let recorded = std::fs::read_to_string(entry.join("trace.txt")).unwrap();
        let replayed = run_seed(5, &loaded, false);
        assert_eq!(
            replayed.artifacts.trace.render(),
            recorded,
            "corpus trace must reproduce byte-exactly from the persisted config"
        );
        let verdicts = std::fs::read_to_string(entry.join("violations.txt")).unwrap();
        assert!(verdicts.contains("injected for the corpus test"));

        result.corpus = Some(entry);
        assert!(result.replay_command().contains("--corpus"));

        // A different config failing on the same seed must not clobber
        // the recorded repro: it lands in a discriminated sibling entry.
        let other = ScenarioConfig::default();
        let mut other_result = run_seed(5, &other, false);
        other_result.violations.push(Violation::ThreadFailure {
            thread: "T0".into(),
            error: "second config".into(),
        });
        let other_entry = dump_corpus(&dir, &other, &other_result).expect("corpus dump");
        assert_ne!(other_entry, dir.join("5"), "must not overwrite seed 5");
        assert!(other_entry
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("5-"));
        assert_eq!(
            std::fs::read_to_string(dir.join("5").join("config.txt")).unwrap(),
            scenario.to_kv(),
            "original entry untouched"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
