//! Workload-bisection corpus replay (satellite of the coverage-guided
//! fuzz subsystem): a shrunk violation's corpus entry — `workload.txt`
//! reduction steps next to the usual `config.txt`/`trace.txt` — rebuilds
//! the exact 1-minimal plan through [`load_corpus_plan`] and re-executes
//! to byte-identical trace bytes, the same `replay --corpus` path fuzz
//! lineage entries take.

use caa_harness::arena::ExecutionArena;
use caa_harness::bisect::{apply_steps, bisect_workload, write_workload_entry, WorkloadOutcome};
use caa_harness::fuzz::load_corpus_plan;
use caa_harness::plan::{ActionPlan, ScenarioConfig, ScenarioPlan};
use caa_harness::sweep::run_plan_checked;

/// A synthetic "violation": some action raises from thread 0 in a plan
/// with at least two threads. Deterministic and cheap, so minimisation
/// exercises the full candidate grammar without executing plans.
fn zero_raise(plan: &ScenarioPlan) -> bool {
    fn has(action: &ActionPlan) -> bool {
        action
            .raise
            .as_ref()
            .is_some_and(|r| r.raisers.iter().any(|&(t, _)| t == 0))
            || action.phases.iter().any(|p| match p {
                caa_harness::plan::Phase::Nested { children } => children.iter().any(has),
                caa_harness::plan::Phase::Compute { .. } => false,
            })
    }
    plan.threads >= 2 && plan.top.iter().any(has)
}

fn rich_seed(config: &ScenarioConfig) -> ScenarioPlan {
    (0..4000)
        .map(|seed| ScenarioPlan::generate(seed, config))
        .find(|p| zero_raise(p) && p.threads >= 3 && p.top.len() >= 2)
        .expect("some seed in 0..4000 exhibits the synthetic violation")
}

#[test]
fn shrunk_workload_entry_replays_byte_exactly_from_disk() {
    let config = ScenarioConfig::default();
    let plan = rich_seed(&config);
    let outcome: WorkloadOutcome =
        bisect_workload(&plan, zero_raise).expect("the violation holds on the unreduced plan");
    assert!(
        !outcome.steps.is_empty(),
        "a rich plan must admit at least one reduction"
    );
    // The recorded steps replay onto the original plan.
    let replayed = apply_steps(&plan, &outcome.steps).expect("recorded steps re-apply");
    assert_eq!(format!("{replayed:?}"), format!("{:?}", outcome.plan));

    // Persist the full entry the way `replay --bisect-workload` does:
    // steps + plan description from the bisector, then the scenario
    // config and the minimal plan's trace bytes.
    let dir = std::env::temp_dir().join(format!("caa-workload-replay-{}", std::process::id()));
    let entry = write_workload_entry(&dir, &outcome).expect("persist workload entry");
    std::fs::write(entry.join("config.txt"), config.to_kv()).expect("persist config");
    let mut arena = ExecutionArena::new();
    let recorded = run_plan_checked(outcome.plan.clone(), false, &mut arena)
        .artifacts
        .trace
        .render();
    std::fs::write(entry.join("trace.txt"), &recorded).expect("persist trace");

    // The entry alone — no in-memory state — rebuilds the minimal plan...
    let (loaded, loaded_config) = load_corpus_plan(&entry).expect("load workload entry");
    assert_eq!(format!("{loaded:?}"), format!("{:?}", outcome.plan));
    assert_eq!(loaded_config.to_kv(), config.to_kv());

    // ...and re-executes to the recorded bytes exactly.
    let replay = run_plan_checked(loaded, false, &mut arena)
        .artifacts
        .trace
        .render();
    assert!(
        replay == recorded,
        "workload entry replay diverged:\n--- recorded ---\n{recorded}\n--- replay ---\n{replay}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
