//! The crash-resolution acceptance sweep: ≥10k fresh seeds under the
//! *lifted* crash restrictions — crash-stops land in any top action
//! (earlier ones included), crash subtrees keep their raise and nested
//! phases, the dead thread runs a real workload (object traffic included)
//! up to its scheduled instant, and corruption faults coexist with
//! crashes. Every oracle must hold: resolution agreement among survivors,
//! membership view agreement with no false suspicion, bounded resolution
//! (every started recovery concludes), nesting/crash consistency, the
//! hierarchically separated exit-timeout bound, and **byte-exact** replay
//! of the crash paths — view changes, synthesized crash exceptions and
//! survivor-only exits replay identically.

use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::sweep::{sweep, SweepConfig};

const START: u64 = 30_000;
const SEEDS: u64 = 10_000;

#[test]
fn crash_resolution_sweep_10k_passes_every_oracle() {
    let scenario = ScenarioConfig::default();
    assert!(scenario.allow_crashes);

    // The lifted restrictions must actually show up in the scenario space.
    let (mut crashes, mut crash_with_raise_in_subtree, mut crash_in_earlier_action) =
        (0u64, 0u64, 0u64);
    for seed in START..START + SEEDS {
        let plan = ScenarioPlan::generate(seed, &scenario);
        let Some(&crash) = plan.crashes.first() else {
            continue;
        };
        crashes += 1;
        let action = &plan.top[crash.top_action as usize];
        if action
            .walk()
            .iter()
            .any(|a| a.raise.as_ref().is_some_and(|r| !r.raisers.is_empty()))
        {
            crash_with_raise_in_subtree += 1;
        }
        if (crash.top_action as usize) + 1 < plan.top.len() {
            crash_in_earlier_action += 1;
        }
    }
    assert!(crashes > 1000, "crash plans too rare: {crashes}/{SEEDS}");
    assert!(
        crash_with_raise_in_subtree > 400,
        "raises inside crash subtrees too rare: {crash_with_raise_in_subtree}/{crashes}"
    );
    assert!(
        crash_in_earlier_action > 200,
        "crashes in earlier top actions too rare: {crash_in_earlier_action}/{crashes}"
    );

    let report = sweep(&SweepConfig {
        start_seed: START,
        seeds: SEEDS,
        workers: 0,
        scenario,
        check_replay: true,
        ..SweepConfig::default()
    });
    assert!(
        report.all_passed(),
        "violating seeds found:\n{}",
        report.summary()
    );
    assert_eq!(report.seeds_run, SEEDS);

    // The sweep must have driven the membership machinery, not just
    // generated crash plans that died quietly.
    let coverage = report.coverage;
    assert!(
        coverage.resolution_timeouts > 100,
        "bounded resolution waits barely exercised: {}",
        coverage.summary()
    );
    assert!(
        coverage.view_changes >= coverage.resolution_timeouts,
        "every timeout initiates a view change (plus adopters): {}",
        coverage.summary()
    );
    assert!(
        coverage.crash_stops > 1000,
        "crash events missing from traces: {}",
        coverage.summary()
    );
    assert!(
        coverage.exit_timeouts > 100,
        "quiet crash actions must still conclude through the exit bound: {}",
        coverage.summary()
    );
    assert!(
        coverage.failure_cascades > 0 && coverage.exit_races > 0 && coverage.undo_outcomes > 0,
        "expected the classic paths alongside the new ones: {}",
        coverage.summary()
    );
}
