//! The acceptance sweep: ≥1000 seeds explored in well under a minute of
//! wall-clock time (virtual time is simulated), every trace passing the
//! resolution-agreement, Lemma 1, message-complexity, nesting and
//! deterministic-replay oracles, with any violation reported as a
//! replayable seed.

use std::time::Duration;

use caa_harness::sweep::{sweep, SweepConfig};

#[test]
fn thousand_seed_sweep_passes_every_oracle() {
    let report = sweep(&SweepConfig {
        start_seed: 0,
        seeds: 1000,
        workers: 0,
        check_replay: true,
        ..SweepConfig::default()
    });
    assert!(
        report.all_passed(),
        "violating seeds found:\n{}",
        report.summary()
    );
    assert_eq!(report.seeds_run, 1000);
    assert!(
        report.wall < Duration::from_secs(60),
        "sweep took {:?}, budget is 60s",
        report.wall
    );
    // The sweep must actually exercise the protocols, not trivially pass.
    assert!(
        report.trace_entries > 50_000,
        "only {} trace entries recorded",
        report.trace_entries
    );
    assert!(
        report.virtual_secs > 1000.0,
        "only {:.0}s of virtual time simulated",
        report.virtual_secs
    );
}

#[test]
fn violating_seeds_would_be_reported_with_replay_commands() {
    // Exercise the reporting path itself: the summary of a (hypothetical)
    // failure names the seed and a one-command replay. Run one seed and
    // format it as the sweep would.
    let result = caa_harness::sweep::run_seed(99, &Default::default(), false);
    let command = result.replay_command();
    assert!(command.contains("--example replay"), "{command}");
    assert!(command.ends_with("99"), "{command}");
}
