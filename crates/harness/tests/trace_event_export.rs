//! Schema validity of the Perfetto (Chrome trace-event) export:
//!
//! * the document parses under the telemetry crate's strict JSON subset
//!   (objects, arrays, strings, unsigned integers — nothing else);
//! * the trace-event envelope and per-event required fields are present
//!   (`ph`-specific: complete events carry `dur`, flow arrows carry
//!   paired `id`s with the binding point on the terminating arrow);
//! * every flow arrow pairs a start (`"s"`) with a finish (`"f"`) of the
//!   same id, start never after finish — the causal send→recv edge;
//! * the export is deterministic per seed.

use std::collections::HashMap;

use caa_harness::exec::execute;
use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::spans::trace_event_json;
use caa_telemetry::json::{parse, Value};

fn field<'a>(event: &'a Value, name: &str) -> &'a Value {
    event
        .get(name)
        .unwrap_or_else(|| panic!("event missing required field {name:?}: {event:?}"))
}

fn num(event: &Value, name: &str) -> u64 {
    field(event, name)
        .as_u64()
        .unwrap_or_else(|| panic!("field {name:?} must be an unsigned integer: {event:?}"))
}

fn text<'a>(event: &'a Value, name: &str) -> &'a str {
    match field(event, name) {
        Value::Str(s) => s,
        other => panic!("field {name:?} must be a string: {other:?}"),
    }
}

#[test]
fn export_is_schema_valid_and_flows_pair() {
    for seed in [3u64, 42, 77] {
        let artifacts = execute(&ScenarioPlan::generate(seed, &ScenarioConfig::default()));
        let doc = trace_event_json(&artifacts.trace, seed);
        let parsed = parse(&doc)
            .unwrap_or_else(|e| panic!("seed {seed}: export must parse as strict JSON: {e}"));

        // Envelope.
        assert!(matches!(
            parsed.get("displayTimeUnit"),
            Some(Value::Str(u)) if u == "ns"
        ));
        let stamped = parsed
            .get("otherData")
            .and_then(|d| d.get("seed"))
            .and_then(Value::as_u64);
        assert_eq!(stamped, Some(seed), "the document must carry its seed");
        let events = parsed
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents must be an array");
        assert!(!events.is_empty(), "seed {seed}: export must carry events");

        // Per-event required fields, by phase.
        let mut flow_starts: HashMap<u64, u64> = HashMap::new();
        let mut flow_ends: HashMap<u64, u64> = HashMap::new();
        let mut complete_events = 0u64;
        for event in events {
            let ph = text(event, "ph");
            assert!(!text(event, "name").is_empty());
            let ts = num(event, "ts");
            num(event, "pid");
            num(event, "tid");
            match ph {
                "X" => {
                    num(event, "dur");
                    complete_events += 1;
                }
                "s" => {
                    let id = num(event, "id");
                    assert!(
                        flow_starts.insert(id, ts).is_none(),
                        "flow id {id} must start once"
                    );
                }
                "f" => {
                    assert_eq!(
                        text(event, "bp"),
                        "e",
                        "finish arrows bind to the enclosing slice"
                    );
                    let id = num(event, "id");
                    assert!(
                        flow_ends.insert(id, ts).is_none(),
                        "flow id {id} must finish once"
                    );
                }
                "M" => {
                    assert!(
                        field(event, "args").get("name").is_some(),
                        "metadata events must name something"
                    );
                }
                other => panic!("unexpected event phase {other:?}"),
            }
        }
        assert!(complete_events > 0, "seed {seed}: spans must be exported");

        // Flow arrows pair exactly: same ids on both sides, start ≤ end
        // (a message is never received before it is sent).
        assert_eq!(
            flow_starts.len(),
            flow_ends.len(),
            "every flow start needs a finish"
        );
        for (id, sent_ts) in &flow_starts {
            let recv_ts = flow_ends
                .get(id)
                .unwrap_or_else(|| panic!("flow id {id} has no finish arrow"));
            assert!(
                sent_ts <= recv_ts,
                "flow id {id}: send at {sent_ts} must not follow delivery at {recv_ts}"
            );
        }
    }
}

#[test]
fn export_is_deterministic_per_seed() {
    let config = ScenarioConfig::default();
    for seed in [5u64, 42] {
        let a = trace_event_json(&execute(&ScenarioPlan::generate(seed, &config)).trace, seed);
        let b = trace_event_json(&execute(&ScenarioPlan::generate(seed, &config)).trace, seed);
        assert_eq!(a, b, "seed {seed}: export must be byte-identical");
    }
}
