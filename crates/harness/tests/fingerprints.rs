//! Streaming-fingerprint equivalence: the hash-only sweep path
//! ([`Trace::render_fingerprint`]) and the streaming replay comparison
//! ([`Trace::first_divergence`]) must agree byte-for-byte with the
//! rendered-string reference implementations across a seed sweep — they
//! are the hot paths the `trace_hashes` gate and the replay oracle stand
//! on.

use caa_harness::arena::ExecutionArena;
use caa_harness::exec::execute_in;
use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::trace::fnv1a64;

#[test]
fn streamed_fingerprint_equals_hash_of_rendered_trace_across_a_sweep() {
    let mut arena = ExecutionArena::new();
    for (config, seeds) in [
        (ScenarioConfig::default(), 0..120u64),
        (ScenarioConfig::object_heavy(), 0..40u64),
    ] {
        for seed in seeds {
            let plan = ScenarioPlan::generate(seed, &config);
            let artifacts = execute_in(&plan, &mut arena);
            assert_eq!(
                artifacts.trace.render_fingerprint(),
                fnv1a64(artifacts.trace.render().as_bytes()),
                "seed {seed}: streamed fingerprint diverges from rendered hash"
            );
            arena.recycle_trace(artifacts.trace);
        }
    }
}

#[test]
fn first_divergence_matches_the_rendered_line_diff() {
    let mut arena = ExecutionArena::new();
    let config = ScenarioConfig::default();
    for seed in 0..40u64 {
        let plan = ScenarioPlan::generate(seed, &config);
        let a = execute_in(&plan, &mut arena);
        let b = execute_in(&plan, &mut arena);
        // Same seed, two executions: renderings are byte-identical even
        // though raw action serials differ (process-global definition
        // ids) — exactly the case the structural fast path must not
        // misreport.
        assert_eq!(a.trace.render(), b.trace.render(), "seed {seed}");
        assert_eq!(a.trace.first_divergence(&b.trace), None, "seed {seed}");
        arena.recycle_trace(b.trace);
        arena.recycle_trace(a.trace);
    }
    // Different seeds: the reported line must be the first rendered
    // difference.
    let a = execute_in(&ScenarioPlan::generate(1, &config), &mut arena);
    let b = execute_in(&ScenarioPlan::generate(2, &config), &mut arena);
    let diverged = a.trace.first_divergence(&b.trace);
    let expected = a
        .trace
        .render()
        .lines()
        .zip(b.trace.render().lines())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| {
            a.trace
                .render()
                .lines()
                .count()
                .min(b.trace.render().lines().count())
        });
    assert_eq!(diverged, Some(expected));
}
