//! Determinism and merge guarantees of the sweep metrics pipeline:
//!
//! * the virtual-time (`deterministic`) section of a sweep's
//!   `metrics.json` is a pure function of the seed set — two runs of the
//!   same sweep serialize byte-identically, whatever the worker count;
//! * sharding a sweep and merging the shards' metrics reproduces the
//!   unsharded document byte for byte (the `metrics_merge` contract);
//! * with one worker, scheduler handoffs per seed stay under the CI
//!   ceiling (the ROADMAP's "~57 futex handoffs per seed" as a
//!   regression guard rather than prose).

use caa_harness::metrics::{metrics_json, parse_metrics_json, SweepMetrics};
use caa_harness::sweep::{sweep, Shard, SweepConfig, SweepReport};

/// Parks-per-seed ceiling for the default scenario at `--workers 1`.
/// Measured ~51–57 across PR 5 and PR 6; 120 leaves room for scheduler
/// jitter while still catching a lost-wakeup regression (which shows up
/// as a multi-x explosion, not a few extra parks).
const HANDOFF_CEILING: u64 = 120;

fn run(seeds: u64, workers: usize, check_replay: bool, shard: Option<Shard>) -> SweepReport {
    let report = sweep(&SweepConfig {
        start_seed: 0,
        seeds,
        workers,
        check_replay,
        shard,
        ..SweepConfig::default()
    });
    assert!(
        report.all_passed(),
        "sweep found violations:\n{}",
        report.summary()
    );
    report
}

/// The shard-stable serialization: everything but the wall-clock
/// scheduler counters, which legitimately vary run to run.
fn deterministic_json(report: &SweepReport) -> String {
    metrics_json(&report.metrics, report.seeds_run, false)
}

#[test]
fn same_seeds_serialize_byte_identically() {
    let first = run(150, 2, false, None);
    let second = run(150, 2, false, None);
    assert!(
        !first.metrics.deterministic.is_empty(),
        "sweep must have recorded virtual-time metrics"
    );
    assert_eq!(
        deterministic_json(&first),
        deterministic_json(&second),
        "two runs of the same sweep must serialize identical metrics"
    );
}

#[test]
fn worker_count_does_not_change_metrics() {
    let serial = run(150, 1, false, None);
    let parallel = run(150, 4, false, None);
    assert_eq!(
        deterministic_json(&serial),
        deterministic_json(&parallel),
        "metrics must not depend on how seeds are scheduled across workers"
    );
}

#[test]
fn four_shard_merge_equals_unsharded() {
    const SEEDS: u64 = 600;
    const SHARDS: u64 = 4;
    let whole = run(SEEDS, 2, false, None);

    let mut merged = SweepMetrics::default();
    let mut seeds_total = 0;
    for index in 0..SHARDS {
        let shard = run(
            SEEDS,
            2,
            false,
            Some(Shard {
                index,
                count: SHARDS,
            }),
        );
        merged.merge(&shard.metrics);
        seeds_total += shard.seeds_run;
    }
    assert_eq!(
        seeds_total, whole.seeds_run,
        "shards must partition the seed range"
    );
    assert_eq!(
        metrics_json(&merged, seeds_total, false),
        deterministic_json(&whole),
        "merging the four shard documents must reproduce the unsharded one"
    );
}

/// The `metrics_merge` bin's parse→merge→serialize path, in process:
/// round-tripping shard documents through the JSON interchange form and
/// merging the parsed metrics still reproduces the unsharded bytes.
#[test]
fn merge_survives_json_round_trip() {
    const SEEDS: u64 = 300;
    let whole = run(SEEDS, 2, false, None);

    let mut merged = SweepMetrics::default();
    let mut seeds_total = 0;
    for index in 0..2 {
        let shard = run(SEEDS, 2, false, Some(Shard { index, count: 2 }));
        // Serialize with the wall-clock section included, as the sweep
        // writes it; the parse side must carry it without disturbing
        // the deterministic section.
        let doc = metrics_json(&shard.metrics, shard.seeds_run, true);
        let (seeds, parsed) = parse_metrics_json(&doc).expect("shard doc must parse");
        assert_eq!(seeds, shard.seeds_run);
        merged.merge(&parsed);
        seeds_total += seeds;
    }
    assert_eq!(
        metrics_json(&merged, seeds_total, false),
        deterministic_json(&whole),
    );
}

#[test]
fn crash_and_crashfree_latency_quantiles_are_populated() {
    let report = run(400, 2, false, None);
    for label in [
        "resolution_latency_crashfree_ns",
        "resolution_latency_crash_ns",
    ] {
        let hist = report
            .metrics
            .deterministic
            .histogram_named(label)
            .unwrap_or_else(|| panic!("{label} must be registered"));
        assert!(hist.count() > 0, "{label} must have samples over 400 seeds");
        assert!(hist.quantile(50, 100) > 0, "{label} p50 must be nonzero");
        assert!(
            hist.quantile(99, 100) >= hist.quantile(50, 100),
            "{label} quantiles must be ordered"
        );
    }
}

#[test]
fn single_worker_handoffs_stay_under_ceiling() {
    let report = run(100, 1, false, None);
    let parks = report.metrics.wall_clock.counter_value("sched_parks");
    assert!(
        parks > 0,
        "a single-worker sweep must park (virtual time advances)"
    );
    let per_seed = report.metrics.parks_per_seed();
    assert!(
        per_seed <= HANDOFF_CEILING,
        "~{per_seed} parks/seed at one worker exceeds the {HANDOFF_CEILING} ceiling \
         (lost targeted wakeups?)"
    );
}
