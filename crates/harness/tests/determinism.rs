//! Determinism properties of the harness (satellite of the simulation
//! subsystem): identical seeds yield byte-identical traces across two
//! independent runs, and differing seeds explore differing scenarios and
//! fault schedules.

use caa_harness::exec::execute;
use caa_harness::plan::{ScenarioConfig, ScenarioPlan};

/// Identical seeds ⇒ byte-identical rendered traces, across independently
/// built systems (fresh networks, fresh action definitions, fresh OS
/// threads).
#[test]
fn identical_seeds_render_byte_identical_traces() {
    let cfg = ScenarioConfig::default();
    for seed in (0..100).map(|i| i * 37 + 5) {
        let plan = ScenarioPlan::generate(seed, &cfg);
        let first = execute(&plan).trace.render();
        let second = execute(&plan).trace.render();
        assert!(
            first == second,
            "seed {seed} diverged:\n--- first ---\n{first}\n--- second ---\n{second}"
        );
        assert!(!first.is_empty(), "seed {seed} recorded nothing");
    }
}

/// Differing seeds explore differing scenarios: traces differ, and the
/// fault-schedule space is actually covered (schedules differ across seeds
/// and include losses, corruptions and signalling crashes).
#[test]
fn differing_seeds_explore_differing_fault_schedules() {
    let cfg = ScenarioConfig::default();
    let mut traces = std::collections::HashSet::new();
    let mut schedules = std::collections::HashSet::new();
    let (mut losses, mut corruptions, mut crashes) = (0u32, 0u32, 0u32);
    for seed in 0..100 {
        let plan = ScenarioPlan::generate(seed, &cfg);
        for fault in &plan.faults {
            if fault.count == u64::MAX {
                crashes += 1;
            } else if fault.lose {
                losses += 1;
            } else {
                corruptions += 1;
            }
        }
        schedules.insert(format!("{:?}", plan.faults));
        traces.insert(execute(&plan).trace.render());
    }
    assert!(
        traces.len() >= 99,
        "only {} distinct traces across 100 seeds",
        traces.len()
    );
    assert!(
        schedules.len() >= 30,
        "only {} distinct fault schedules across 100 seeds",
        schedules.len()
    );
    assert!(losses > 0, "no loss rules explored");
    assert!(corruptions > 0, "no corruption rules explored");
    assert!(crashes > 0, "no signalling crashes explored");
}

/// The plan itself is a pure function of the seed.
#[test]
fn plans_are_pure_functions_of_the_seed() {
    let cfg = ScenarioConfig::default();
    for seed in 0..50 {
        let a = ScenarioPlan::generate(seed, &cfg);
        let b = ScenarioPlan::generate(seed, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
    }
}
