//! Regression for the coverage-guided loop's first real find (the PR 7
//! nightly shards): `dup_top_action`-mutated plans whose crash-stop dies
//! in an early top action, leaving the survivors to run the duplicated
//! *sequential* top actions without the dead peer. Before round-agnostic
//! suspicion, only the resolution round could evict: a post-crash action
//! that never raised stalled against the dead peer's missing signalling
//! announcements and exit votes, and the compounding recovery skew read
//! as false suspicion with divergent per-thread views. With suspicion in
//! every round, per-instance eviction accounting, and set-based view
//! agreement, the whole scenario class must hold every oracle — and a
//! minimized lineage from the class must keep replaying byte-exactly
//! through the same corpus path (`replay --corpus`) as any fuzz find.

use caa_harness::arena::ExecutionArena;
use caa_harness::exec::execute_in;
use caa_harness::fuzz::{load_corpus_plan, mutate_plan, Lineage};
use caa_harness::oracle::check_run;
use caa_harness::plan::{ScenarioConfig, ScenarioPlan};

/// The first mutation seed at or after `from` whose [`mutate_plan`]
/// applies `mutator` to `plan` — the deterministic way to steer the pure
/// mutation function onto a named edit.
fn mutation_seed_for(plan: &ScenarioPlan, mutator: &str, from: u64) -> u64 {
    (from..from + 100_000)
        .find(|&s| mutate_plan(plan, s).mutator == mutator)
        .unwrap_or_else(|| panic!("no mutation seed applying {mutator} in range"))
}

/// Whether `plan` is in the find's class: a crash-stop scheduled in a top
/// action that still has sequential successors for the survivors to run.
fn in_find_class(plan: &ScenarioPlan) -> bool {
    plan.crashes
        .iter()
        .any(|c| (c.top_action as usize) + 1 < plan.top.len())
}

#[test]
fn post_crash_sequential_top_actions_survive_every_oracle() {
    let config = ScenarioConfig::default();
    let mut arena = ExecutionArena::new();
    let mut covered = 0u64;
    for seed in 0..4000u64 {
        let base = ScenarioPlan::generate(seed, &config);
        if !in_find_class(&base) {
            continue;
        }
        // Compound the skew exactly the way the fuzzer did: duplicate top
        // actions so even more sequential recovery rounds follow the
        // crash (the mutator caps the sequence at four).
        let mut plan = base;
        let mut from = 0;
        while plan.top.len() < 4 {
            let m = mutation_seed_for(&plan, "dup_top_action", from);
            plan = mutate_plan(&plan, m).plan;
            from = m + 1;
        }
        let artifacts = execute_in(&plan, &mut arena);
        let violations = check_run(&artifacts);
        assert!(
            violations.is_empty(),
            "seed {seed} (duplicated to {} top actions): {:?}",
            artifacts.plan.top.len(),
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
        );
        arena.recycle_trace(artifacts.trace);
        covered += 1;
        if covered >= 40 {
            return;
        }
    }
    panic!("find class under-sampled: only {covered} plans in range");
}

#[test]
fn a_minimized_find_lineage_replays_byte_exactly_from_its_corpus_entry() {
    let config = ScenarioConfig::default();
    // Pin the minimal member of the class deterministically: the first
    // crash seed with a post-crash sequential action, plus one
    // `dup_top_action` mutation.
    let (seed, base) = (0..4000u64)
        .find_map(|s| {
            let p = ScenarioPlan::generate(s, &config);
            (in_find_class(&p) && p.top.len() < 4).then_some((s, p))
        })
        .expect("a find-class seed in range");
    let m = mutation_seed_for(&base, "dup_top_action", 0);
    let lineage = Lineage {
        seed,
        mutations: vec![m],
    };
    let plan = lineage.materialize(&config);
    assert!(plan.top.len() > base.top.len(), "mutation must duplicate");
    assert!(in_find_class(&plan));

    let mut arena = ExecutionArena::new();
    let artifacts = execute_in(&plan, &mut arena);
    let violations = check_run(&artifacts);
    assert!(
        violations.is_empty(),
        "the minimized lineage must be fixed: {:?}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
    );

    // Persist the entry the way the fuzz loop lays it out, then reload
    // and re-execute through the `replay --corpus` path: the re-derived
    // plan's trace must match the recorded bytes exactly.
    let dir = std::env::temp_dir().join(format!("caa-fuzz-regression-{}", std::process::id()));
    let entry = dir.join(lineage.entry_name());
    std::fs::create_dir_all(&entry).unwrap();
    std::fs::write(entry.join("config.txt"), config.to_kv()).unwrap();
    std::fs::write(entry.join("lineage.txt"), lineage.render()).unwrap();
    std::fs::write(entry.join("trace.txt"), artifacts.trace.render()).unwrap();

    let (reloaded, reloaded_config) = load_corpus_plan(&entry).expect("entry loads");
    let recorded = std::fs::read_to_string(entry.join("trace.txt")).unwrap();
    let replayed = execute_in(&reloaded, &mut ExecutionArena::new());
    assert_eq!(
        replayed.trace.render(),
        recorded,
        "corpus replay diverged for lineage {}",
        lineage.entry_name()
    );
    assert_eq!(reloaded_config.to_kv(), config.to_kv());
    std::fs::remove_dir_all(&dir).ok();
}
