//! Determinism of the derived span layer (PR 9):
//!
//! * re-executing a seed yields a byte-identical span tree and
//!   byte-identical critical paths — the layer is a pure function of the
//!   trace, and the trace is a pure function of the seed;
//! * the `critical_path` metric section is worker-count-invariant and
//!   its 4-shard merge reproduces the unsharded section byte for byte;
//! * every instance's critical-path segments are contiguous and sum
//!   exactly to its raise→resolve latency (the attribution invariant);
//! * deriving spans does not touch the trace: fingerprints before and
//!   after derivation are identical.

use caa_harness::exec::execute;
use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::spans::{build_span_tree, critical_paths, trace_event_json, SegmentClass};
use caa_harness::sweep::{sweep, Shard, SweepConfig, SweepReport};

fn run(seeds: u64, workers: usize, shard: Option<Shard>) -> SweepReport {
    let report = sweep(&SweepConfig {
        start_seed: 0,
        seeds,
        workers,
        check_replay: false,
        shard,
        ..SweepConfig::default()
    });
    assert!(report.all_passed(), "{}", report.summary());
    report
}

#[test]
fn same_seed_derives_byte_identical_spans_and_paths() {
    for seed in [0u64, 7, 42, 99] {
        let config = ScenarioConfig::default();
        let first = execute(&ScenarioPlan::generate(seed, &config));
        let second = execute(&ScenarioPlan::generate(seed, &config));
        assert_eq!(
            build_span_tree(&first.trace).render(),
            build_span_tree(&second.trace).render(),
            "seed {seed}: span trees must be byte-identical across executions"
        );
        assert_eq!(
            critical_paths(&first.trace),
            critical_paths(&second.trace),
            "seed {seed}: critical paths must be identical across executions"
        );
        assert_eq!(
            trace_event_json(&first.trace, seed),
            trace_event_json(&second.trace, seed),
            "seed {seed}: exported trace-event JSON must be byte-identical"
        );
    }
}

#[test]
fn span_derivation_leaves_the_trace_untouched() {
    let artifacts = execute(&ScenarioPlan::generate(11, &ScenarioConfig::default()));
    let before = artifacts.trace.render_fingerprint();
    let _ = build_span_tree(&artifacts.trace);
    let _ = critical_paths(&artifacts.trace);
    let _ = trace_event_json(&artifacts.trace, 11);
    assert_eq!(
        artifacts.trace.render_fingerprint(),
        before,
        "deriving spans must be a pure read of the trace"
    );
}

#[test]
fn critical_path_metrics_are_worker_count_invariant() {
    let serial = run(120, 1, None);
    let parallel = run(120, 4, None);
    assert!(
        !serial.metrics.critical_path.is_empty(),
        "sweep must have attributed critical paths"
    );
    assert_eq!(
        serial.metrics.critical_path.to_json(),
        parallel.metrics.critical_path.to_json(),
        "critical-path attribution must not depend on worker scheduling"
    );
}

#[test]
fn four_shard_merge_reproduces_critical_path_section() {
    const SEEDS: u64 = 240;
    let whole = run(SEEDS, 2, None);
    let mut merged = caa_harness::metrics::SweepMetrics::default();
    for index in 0..4 {
        let shard = run(SEEDS, 2, Some(Shard { index, count: 4 }));
        merged.merge(&shard.metrics);
    }
    assert_eq!(
        merged.critical_path.to_json(),
        whole.metrics.critical_path.to_json(),
        "merging the four shards must reproduce the unsharded critical-path section"
    );
}

#[test]
fn segments_partition_latency_across_many_seeds() {
    for seed in 0..48u64 {
        let artifacts = execute(&ScenarioPlan::generate(seed, &ScenarioConfig::default()));
        for path in critical_paths(&artifacts.trace) {
            let sum: u64 = path.segments.iter().map(|s| s.end_ns - s.start_ns).sum();
            assert_eq!(
                sum,
                path.resolved_at - path.raised_at,
                "seed {seed}: segment durations must sum exactly to the latency"
            );
            if let (Some(first), Some(last)) = (path.segments.first(), path.segments.last()) {
                assert_eq!(first.start_ns, path.raised_at);
                assert_eq!(last.end_ns, path.resolved_at);
            }
            for pair in path.segments.windows(2) {
                assert_eq!(
                    pair[0].end_ns, pair[1].start_ns,
                    "seed {seed}: segments must be contiguous"
                );
            }
            let class_sum: u64 = SegmentClass::ALL
                .iter()
                .map(|&c| path.class_total_ns(c))
                .sum();
            assert_eq!(class_sum, path.total_ns());
        }
    }
}
