//! Mutator property tests (satellite of the coverage-guided fuzz
//! subsystem): every structured mutation must leave the plan inside the
//! generator's validity envelope — [`validate_plan`]-clean — because the
//! fuzz loop executes mutated plans through the exact pipeline fresh
//! seeds use, with no second validation layer to catch a malformed one.

use std::collections::{BTreeMap, HashSet};

use caa_harness::fuzz::{mutate_plan, Lineage, MUTATORS};
use caa_harness::plan::{validate_plan, ScenarioConfig, ScenarioPlan};

/// 10 000 single mutations (200 base seeds × 50 mutation seeds): every
/// mutated plan passes the generator invariants, and the whole mutator
/// table actually fires — a mutator that never applies is dead weight
/// the reproducibility contract still has to carry forever.
#[test]
fn ten_thousand_mutations_preserve_plan_validity() {
    let config = ScenarioConfig::default();
    let mut fired: BTreeMap<&'static str, u64> = BTreeMap::new();
    for base_seed in 0..200u64 {
        let plan = ScenarioPlan::generate(base_seed, &config);
        validate_plan(&plan).expect("generated plans are valid");
        for i in 0..50u64 {
            // Decorrelate the mutation seed from the base seed the same
            // way the fuzz loop decorrelates child indices.
            let mutation_seed = (base_seed * 50 + i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mutated = mutate_plan(&plan, mutation_seed);
            if let Err(e) = validate_plan(&mutated.plan) {
                panic!(
                    "mutator {} broke validity on base seed {base_seed}, \
                     mutation seed {mutation_seed:#018x}: {e}\n{}",
                    mutated.mutator,
                    mutated.plan.describe()
                );
            }
            *fired.entry(mutated.mutator).or_default() += 1;
        }
    }
    let named: HashSet<&str> = MUTATORS.iter().map(|(name, _)| *name).collect();
    for name in &named {
        assert!(
            fired.contains_key(name),
            "mutator {name} never applied across 10k samples: {fired:?}"
        );
    }
    for name in fired.keys() {
        assert!(named.contains(name), "unknown mutator name {name}");
    }
}

/// Deep mutation chains stay valid: the fuzz frontier routinely stacks
/// dozens of mutations onto one ancestor, so validity must be closed
/// under composition, not just preserved by single steps.
#[test]
fn mutation_chains_stay_valid_at_depth() {
    let config = ScenarioConfig::default();
    for base_seed in (0..50u64).map(|i| i * 131 + 7) {
        let mut lineage = Lineage::base(base_seed);
        let mut plan = ScenarioPlan::generate(base_seed, &config);
        for depth in 0..20u64 {
            let mutation_seed = (base_seed << 8 | depth).wrapping_mul(0x2545_f491_4f6c_dd1d);
            let mutated = mutate_plan(&plan, mutation_seed);
            validate_plan(&mutated.plan).unwrap_or_else(|e| {
                panic!(
                    "chain depth {depth} (mutator {}) broke base seed {base_seed}: {e}",
                    mutated.mutator
                )
            });
            lineage = lineage.child(mutation_seed);
            plan = mutated.plan;
        }
        // The recorded lineage rebuilds the exact end-of-chain plan.
        let rebuilt = lineage.materialize(&config);
        assert_eq!(
            format!("{rebuilt:?}"),
            format!("{plan:?}"),
            "lineage materialisation diverged from the live chain at base seed {base_seed}"
        );
    }
}

/// Mutation is a pure function of `(plan, mutation_seed)` across
/// independently generated inputs — the anchor that lets a corpus entry
/// replay a find from nothing but its lineage.
#[test]
fn mutations_are_reproducible_from_the_recorded_seed() {
    let config = ScenarioConfig::default();
    for base_seed in 0..40u64 {
        let plan_a = ScenarioPlan::generate(base_seed, &config);
        let plan_b = ScenarioPlan::generate(base_seed, &config);
        for i in 0..10u64 {
            let mutation_seed = base_seed ^ (i << 32) ^ 0xCAAF;
            let a = mutate_plan(&plan_a, mutation_seed);
            let b = mutate_plan(&plan_b, mutation_seed);
            assert_eq!(a.mutator, b.mutator, "mutator choice diverged");
            assert_eq!(
                format!("{:?}", a.plan),
                format!("{:?}", b.plan),
                "seed {base_seed} mutation {mutation_seed:#x} is not reproducible"
            );
        }
    }
}
