//! Fuzz-loop determinism (satellite of the coverage-guided fuzz
//! subsystem): the whole run — mutated plans, traces, coverage
//! signatures, the rendered coverage document — is a pure function of the
//! [`FuzzConfig`], with the worker count changing wall clock only. This
//! is what makes a nightly fuzz find reportable as a `(corpus entry,
//! mutation seed)` pair instead of a flaky one-off.

use caa_harness::arena::ExecutionArena;
use caa_harness::fuzz::{fuzz, CoverageDoc, FuzzConfig, Lineage};
use caa_harness::plan::ScenarioConfig;
use caa_harness::sweep::{run_plan_checked, PathCoverage};

fn config(workers: usize) -> FuzzConfig {
    FuzzConfig {
        executions: 128,
        initial_seeds: 40,
        batch: 16,
        workers,
        compare_fresh: true,
        ..FuzzConfig::default()
    }
}

/// The same config at 1 and 4 workers produces byte-identical coverage
/// documents: identical signature maps, counters, violations, baseline.
/// Parent selection happens between generations and batch results commit
/// in child-index order, so parallelism cannot reorder the feedback loop.
#[test]
fn one_and_four_workers_render_identical_coverage_documents() {
    let one = fuzz(&config(1));
    let four = fuzz(&config(4));
    let doc_one = CoverageDoc::from_fuzz(&one).render();
    let doc_four = CoverageDoc::from_fuzz(&four).render();
    assert!(
        doc_one == doc_four,
        "worker count leaked into the coverage document:\n--- 1 worker ---\n{doc_one}\n\
         --- 4 workers ---\n{doc_four}"
    );
    assert_eq!(one.executions, 128);
    assert!(
        one.signatures.len() > 1,
        "the smoke budget must reach more than one path signature"
    );
    // Novelty accounting is part of the deterministic surface too.
    assert_eq!(one.novel_from_mutation, four.novel_from_mutation);
    assert_eq!(one.generations, four.generations);
}

/// Back-to-back runs of the same config are identical — no hidden global
/// state (thread-local RNGs, time-dependent scheduling) survives a run.
#[test]
fn repeated_runs_are_identical() {
    let a = CoverageDoc::from_fuzz(&fuzz(&config(2))).render();
    let b = CoverageDoc::from_fuzz(&fuzz(&config(2))).render();
    assert!(a == b, "two identical fuzz runs diverged:\n{a}\n---\n{b}");
}

/// A lineage's materialised plan executes to byte-identical traces across
/// independent arenas — the execution half of the reproducibility
/// contract (the mutation half lives in `fuzz_mutators.rs`).
#[test]
fn lineage_executions_render_byte_identical_traces() {
    let config = ScenarioConfig::default();
    for base_seed in [3u64, 77, 1042] {
        let mut lineage = Lineage::base(base_seed);
        for i in 0..4u64 {
            lineage = lineage.child(base_seed.wrapping_mul(0x9e37_79b9) ^ i);
        }
        let plan = lineage.materialize(&config);
        let mut arena_a = ExecutionArena::new();
        let mut arena_b = ExecutionArena::new();
        let a = run_plan_checked(plan.clone(), false, &mut arena_a);
        let b = run_plan_checked(plan, false, &mut arena_b);
        let (ta, tb) = (a.artifacts.trace.render(), b.artifacts.trace.render());
        assert!(
            ta == tb,
            "lineage {} diverged across arenas:\n{ta}\n---\n{tb}",
            lineage.entry_name()
        );
        assert_eq!(
            PathCoverage::from_trace(&a.artifacts.trace).signature(),
            PathCoverage::from_trace(&b.artifacts.trace).signature(),
            "coverage signature diverged"
        );
    }
}
