//! Golden-trace regression test: pins the byte-exact traces — and in
//! particular the `ObjectAcquired` grant order — of a fixed seed set
//! against a checked-in golden file.
//!
//! The wake-on-release arbitration refactor (and any future scheduler
//! change) must keep every one of these traces byte-identical: grant order
//! and grant *instants* are part of the public determinism contract, so a
//! silent drift here would invalidate every recorded corpus trace. The
//! golden file was generated from the pre-refactor (PR 2) scheduler and is
//! deliberately never regenerated as part of a scheduler change — only a
//! deliberate scenario-model change may re-bless it:
//!
//! ```text
//! CAA_GOLDEN_BLESS=1 cargo test -p caa-harness --test golden_traces
//! ```

use std::fmt::Write as _;

use caa_harness::exec::execute;
use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::trace::{fnv1a64 as fnv1a, Trace};

fn acquired_lines(trace: &Trace) -> Vec<String> {
    let canonical = trace.canonical_labels();
    trace
        .entries()
        .iter()
        .filter_map(|entry| match &entry.kind {
            caa_harness::trace::EntryKind::Runtime(e) => match &e.kind {
                caa_runtime::observe::EventKind::ObjectAcquired { object, .. } => Some(format!(
                    "@{} T{} A{} acquire {object}",
                    entry.at_ns,
                    entry.thread,
                    canonical[&entry.action_serial()]
                )),
                _ => None,
            },
            _ => None,
        })
        .collect()
}

/// Renders the golden report: per-seed replay hashes for the default and
/// object-heavy configurations, plus the full grant-order listing for a
/// handful of heavily contended seeds.
fn golden_report() -> String {
    let mut out = String::new();
    out.push_str("# golden traces: replay hash = fnv1a64(Trace::render())\n");

    out.push_str("[default-config]\n");
    for seed in 0..96u64 {
        let plan = ScenarioPlan::generate(seed, &ScenarioConfig::default());
        let artifacts = execute(&plan);
        let _ = writeln!(
            out,
            "seed {seed} hash {:016x} entries {} acquired {}",
            fnv1a(artifacts.trace.render().as_bytes()),
            artifacts.trace.len(),
            acquired_lines(&artifacts.trace).len(),
        );
    }

    out.push_str("[object-heavy]\n");
    let heavy = ScenarioConfig::object_heavy();
    for seed in 0..48u64 {
        let plan = ScenarioPlan::generate(seed, &heavy);
        let artifacts = execute(&plan);
        let _ = writeln!(
            out,
            "seed {seed} hash {:016x} entries {} acquired {}",
            fnv1a(artifacts.trace.render().as_bytes()),
            artifacts.trace.len(),
            acquired_lines(&artifacts.trace).len(),
        );
    }

    out.push_str("[object-heavy grant order]\n");
    for seed in 0..8u64 {
        let plan = ScenarioPlan::generate(seed, &heavy);
        let artifacts = execute(&plan);
        let _ = writeln!(out, "seed {seed}");
        for line in acquired_lines(&artifacts.trace) {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

#[test]
fn traces_match_the_checked_in_golden_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/traces.golden.txt"
    );
    let report = golden_report();
    if std::env::var_os("CAA_GOLDEN_BLESS").is_some() {
        std::fs::write(path, &report).expect("write golden file");
        eprintln!("blessed {path}");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file present (run with CAA_GOLDEN_BLESS=1 once after a deliberate scenario-model change)");
    if golden != report {
        // Line-level diff: the first divergent line tells whether timing
        // (hash) or grant order (acquire lines) drifted.
        for (i, (g, r)) in golden.lines().zip(report.lines()).enumerate() {
            assert_eq!(
                g,
                r,
                "golden trace drift at line {} (scheduler changes must keep traces byte-identical)",
                i + 1
            );
        }
        panic!(
            "golden trace drift: line counts differ ({} golden vs {} now)",
            golden.lines().count(),
            report.lines().count()
        );
    }
}
