//! The coverage-gain acceptance gate (satellite of the coverage-guided
//! fuzz subsystem): at the nightly 50k-execution budget, frontier-guided
//! mutation must reach **≥ 20 % more distinct protocol-path signatures**
//! than a fresh-seed sweep of the same budget, with both numbers in the
//! triage report. The gate runs `#[ignore]`d (the nightly job runs
//! `cargo test --release -- --ignored`); the tier-1 lane gets a small
//! sanity test over the same reporting surface — small budgets sit below
//! the mutation/fresh crossover (measured ≈ 4k executions), so the tier-1
//! test checks the accounting, not the gain sign.

use caa_harness::fuzz::{fuzz, CoverageDoc, FuzzConfig};

/// The nightly acceptance gate. Release profile, ~1 min of CPU: the
/// measured gain at 16k executions is already +50 %, so the +20 % floor
/// is the ISSUE's conservative margin, not a tight calibration.
#[test]
#[ignore = "50k-execution budget: run via `cargo test --release -- --ignored` (nightly CI)"]
fn fuzz_reaches_twenty_percent_more_signatures_than_fresh_seeds_at_50k() {
    let report = fuzz(&FuzzConfig {
        executions: 50_000,
        initial_seeds: 2_000,
        batch: 256,
        compare_fresh: true,
        ..FuzzConfig::default()
    });
    let fresh = report.fresh.as_ref().expect("baseline was requested");
    let gain = report.gain_pct().expect("baseline was requested");
    assert_eq!(fresh.executions, report.executions, "same budget");
    assert!(
        gain >= 20.0,
        "fuzzing reached {} signatures vs {} fresh ({gain:+.1}%); the ≥20% gate failed",
        report.signatures.len(),
        fresh.signatures.len(),
    );
    // Both numbers are part of the uploaded triage artifact.
    let triage = CoverageDoc::from_fuzz(&report).triage();
    assert!(
        triage.contains(&format!(
            "fuzz: {} distinct signatures over {} executions",
            report.signatures.len(),
            report.executions
        )),
        "{triage}"
    );
    assert!(
        triage.contains(&format!(
            "fresh baseline: {} distinct signatures over {} executions",
            fresh.signatures.len(),
            fresh.executions
        )),
        "{triage}"
    );
    assert!(
        triage.contains("signature gain over fresh seeds: +"),
        "{triage}"
    );
}

/// Tier-1 sanity over the same surface: the budget is honoured exactly,
/// the baseline matches it, the gain is computed, and the triage report
/// carries both signature counts.
#[test]
fn gain_accounting_is_consistent_at_a_smoke_budget() {
    let report = fuzz(&FuzzConfig {
        executions: 192,
        initial_seeds: 48,
        batch: 32,
        compare_fresh: true,
        ..FuzzConfig::default()
    });
    assert_eq!(report.executions, 192, "the budget is spent exactly");
    let fresh = report.fresh.as_ref().expect("baseline was requested");
    assert_eq!(fresh.executions, 192, "the baseline uses the same budget");
    assert!(report.gain_pct().is_some());
    assert!(!report.signatures.is_empty());
    let triage = CoverageDoc::from_fuzz(&report).triage();
    assert!(
        triage.contains("## Fuzz vs fresh-seed baseline"),
        "{triage}"
    );
    assert!(
        triage.contains(&format!(
            "fresh baseline: {} distinct signatures over 192 executions",
            fresh.signatures.len()
        )),
        "{triage}"
    );
    assert!(
        triage.contains("signature gain over fresh seeds: "),
        "{triage}"
    );
}
