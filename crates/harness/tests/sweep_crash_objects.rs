//! The crash/object acceptance sweep: ≥10k seeds whose scenario space
//! includes shared-object workloads (arbitrated deterministically through
//! the simulation) and crash-stop participants (resolved by the membership
//! extension's bounded resolution wait and the bounded exit wait), checked
//! against every oracle — resolution agreement, membership agreement,
//! message complexity, nesting/abortion/crash consistency, the
//! exit-timeout bound, and **byte-exact** replay (object acquisitions
//! included). See `sweep_crash_resolution.rs` for the sweep focused on
//! the lifted crash restrictions over a disjoint seed range.

use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::sweep::{sweep, SweepConfig};

const SEEDS: u64 = 10_000;

#[test]
fn crash_and_object_sweep_10k_passes_every_oracle() {
    let scenario = ScenarioConfig::default();
    assert!(scenario.allow_objects && scenario.allow_crashes);

    // The sweep must actually explore the new scenario features.
    let (mut with_objects, mut with_crashes, mut with_both) = (0u64, 0u64, 0u64);
    for seed in 0..SEEDS {
        let plan = ScenarioPlan::generate(seed, &scenario);
        let objects = plan.has_objects();
        let crash = !plan.crashes.is_empty();
        with_objects += u64::from(objects);
        with_crashes += u64::from(crash);
        with_both += u64::from(objects && crash);
    }
    assert!(
        with_objects > 1000,
        "only {with_objects}/{SEEDS} seeds have object workloads"
    );
    assert!(
        with_crashes > 1000,
        "only {with_crashes}/{SEEDS} seeds have crash-stop participants"
    );
    assert!(
        with_both > 100,
        "only {with_both}/{SEEDS} seeds combine objects and crashes"
    );

    let report = sweep(&SweepConfig {
        start_seed: 0,
        seeds: SEEDS,
        workers: 0,
        scenario,
        check_replay: true,
        ..SweepConfig::default()
    });
    assert!(
        report.all_passed(),
        "violating seeds found:\n{}",
        report.summary()
    );
    assert_eq!(report.seeds_run, SEEDS);
}
