//! Allocation-regression gate for the execute hot path.
//!
//! The arena / Arc-fan-out work (execution arenas, recycled trace
//! buffers, shared resolution lattices, `Arc`'d broadcast bodies,
//! interned names) exists to keep steady-state seed execution nearly
//! allocation-free. Nothing in the type system stops a future change
//! from quietly re-introducing per-seed churn, so this test pins the
//! allocation count of a fixed seed per benchmark configuration under a
//! counting global allocator: execute the seed once through a warmed
//! per-worker arena and assert the count stays under a generous ceiling
//! (~3× the measured steady state — loose enough to survive compiler and
//! library drift, tight enough that reverting any one of the arena
//! mechanisms blows through it).
//!
//! The test measures end to end (plan generation, execution, oracles, the
//! replay re-execution where the config checks it), exactly like a sweep
//! worker's per-seed loop.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use caa_harness::arena::ExecutionArena;
use caa_harness::plan::ScenarioConfig;
use caa_harness::sweep::run_seed_in;

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Counting wrapper over the system allocator: `alloc`/`realloc` bump one
// relaxed counter. Deallocations are not tracked (the gate pins churn,
// not leaks).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Executes `seed` once through a warmed arena and returns the
/// allocation count of that execution (including plan generation and
/// oracle checks — the sweep worker's whole per-seed loop).
fn allocs_for_seed(seed: u64, scenario: &ScenarioConfig, check_replay: bool) -> u64 {
    let mut arena = ExecutionArena::new();
    // Warm-up: populate the network arena, trace buffers and graph cache
    // with this exact seed's shapes.
    for _ in 0..3 {
        let result = run_seed_in(seed, scenario, check_replay, &mut arena);
        assert!(result.passed(), "gate seed must be violation-free");
        arena.recycle_trace(result.artifacts.trace);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    let result = run_seed_in(seed, scenario, check_replay, &mut arena);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(result.passed());
    arena.recycle_trace(result.artifacts.trace);
    after - before
}

/// One pinned case: a fixed seed per bench configuration, with a ceiling
/// ~3× the steady-state count measured when the gate was introduced
/// (recorded in the assertion message for recalibration).
#[test]
fn steady_state_seed_allocation_stays_bounded() {
    let cases = [
        ("default", ScenarioConfig::default(), false, 7u64, 1_500u64),
        ("default+replay", ScenarioConfig::default(), true, 7, 2_500),
        (
            "object-heavy",
            ScenarioConfig::object_heavy(),
            false,
            7,
            2_500,
        ),
    ];
    for (name, scenario, check_replay, seed, ceiling) in cases {
        let allocs = allocs_for_seed(seed, &scenario, check_replay);
        assert!(
            allocs <= ceiling,
            "config {name}, seed {seed}: {allocs} allocations in one warmed \
             execution exceed the pinned ceiling {ceiling} — the arena / \
             Arc-fan-out machinery regressed (or a legitimate change needs \
             this gate recalibrated; ceilings are ~3× the steady state \
             measured at introduction)"
        );
        // The gate must also stay meaningful: a ceiling orders of
        // magnitude above reality would never catch anything.
        assert!(
            allocs * 20 >= ceiling,
            "config {name}: measured {allocs} allocations are far below the \
             ceiling {ceiling}; tighten the gate so regressions stay visible"
        );
    }
}

/// Arena reuse must not change behaviour: the warmed execution renders
/// the byte-identical trace a cold one renders. (The cheap companion of
/// the 12k-seed pre/post hash gate, kept next to the allocation pin so
/// both halves of the arena contract are asserted together.)
#[test]
fn warmed_arena_renders_identical_traces() {
    let scenario = ScenarioConfig::default();
    let mut arena = ExecutionArena::new();
    let cold = run_seed_in(7, &scenario, false, &mut arena);
    let cold_render = cold.artifacts.trace.render();
    arena.recycle_trace(cold.artifacts.trace);
    for _ in 0..2 {
        let warm = run_seed_in(7, &scenario, false, &mut arena);
        assert_eq!(
            warm.artifacts.trace.render(),
            cold_render,
            "arena reuse changed a trace"
        );
        arena.recycle_trace(warm.artifacts.trace);
    }
}
