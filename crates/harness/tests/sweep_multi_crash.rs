//! The multi-crash / rejoin acceptance sweep: ≥10k fresh seeds whose
//! scenario space includes plans with **several** crash-stops (distinct
//! threads, any top actions) and **epoch-numbered rejoins** (a crashed
//! participant restarts after a generated delay and asks the survivors to
//! readmit it). Every oracle must hold under the crash-relaxed rules:
//! survivors' removed **sets** form an inclusion chain (set-based
//! convergent membership), no live thread is presumed crashed unless it
//! rejoined or failed, every started recovery concludes, and the whole
//! run **byte-replays** — join requests, grants, view growth and
//! catch-up included.

use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::sweep::{sweep, SweepConfig};

const START: u64 = 40_000;
const SEEDS: u64 = 10_000;

#[test]
fn multi_crash_rejoin_sweep_10k_passes_every_oracle() {
    let scenario = ScenarioConfig::default();
    assert!(scenario.allow_crashes);

    // The widened scenario space must actually materialize: plans with a
    // second crash-stop, plans that schedule a rejoin, and both at once.
    let (mut multi_crash, mut with_rejoin, mut multi_with_rejoin) = (0u64, 0u64, 0u64);
    for seed in START..START + SEEDS {
        let plan = ScenarioPlan::generate(seed, &scenario);
        let multi = plan.crashes.len() >= 2;
        let rejoin = plan.crashes.iter().any(|c| c.rejoin_delay_ns.is_some());
        multi_crash += u64::from(multi);
        with_rejoin += u64::from(rejoin);
        multi_with_rejoin += u64::from(multi && rejoin);
    }
    assert!(
        multi_crash > 200,
        "multi-crash plans too rare: {multi_crash}/{SEEDS}"
    );
    assert!(
        with_rejoin > 400,
        "rejoin plans too rare: {with_rejoin}/{SEEDS}"
    );
    assert!(
        multi_with_rejoin > 50,
        "multi-crash plans with a rejoin too rare: {multi_with_rejoin}/{SEEDS}"
    );

    let report = sweep(&SweepConfig {
        start_seed: START,
        seeds: SEEDS,
        workers: 0,
        scenario,
        check_replay: true,
        ..SweepConfig::default()
    });
    assert!(
        report.all_passed(),
        "violating seeds found:\n{}",
        report.summary()
    );
    assert_eq!(report.seeds_run, SEEDS);

    // The sweep must have driven the rejoin machinery end to end, not
    // just generated restart schedules that never re-entered a view.
    let coverage = report.coverage;
    assert!(
        coverage.rejoins > 50,
        "readmissions missing from traces: {}",
        coverage.summary()
    );
    assert!(
        coverage.crash_stops > 1000,
        "crash events missing from traces: {}",
        coverage.summary()
    );

    // And the rejoin latency metrics (restart lag and catch-up to the
    // instance's conclusion) must be populated from those same traces.
    let restarts = report
        .metrics
        .deterministic
        .histogram_named("rejoin_restart_ns")
        .map_or(0, |h| h.count());
    assert!(
        restarts > 50,
        "rejoin restart latency histogram unpopulated ({restarts} samples)"
    );
    let catchup = report
        .metrics
        .deterministic
        .histogram_named("rejoin_catchup_ns")
        .map_or(0, |h| h.count());
    assert!(
        catchup > 0,
        "rejoin catch-up histogram unpopulated ({catchup} samples)"
    );
}
