//! One-command seed replay and sharded sweeping: re-run a violating (or
//! any) seed, print the oracle verdicts and the full canonical trace — or
//! drive a whole seed range, optionally as one deterministic shard of a
//! multi-process split.
//!
//! Three forms:
//!
//! ```text
//! # Regenerate the seed under the default ScenarioConfig (`--bisect`
//! # additionally shrinks a violating seed's fault/crash schedule to a
//! # minimal still-violating subset and persists it to the corpus dir):
//! cargo run -p caa-harness --example replay -- 42 [--bisect]
//!
//! # Replay a persisted corpus entry (the sweep's exact — possibly
//! # custom — config, plus a byte-exact check against the recorded
//! # trace):
//! cargo run -p caa-harness --example replay -- --corpus target/caa-corpus/42
//!
//! # Sweep a seed range; several processes/CI jobs split it with --shard:
//! cargo run -p caa-harness --example replay -- --sweep 10000 \
//!     [--start 0] [--shard 2/8] [--metrics-out metrics.json]
//! ```
//!
//! Every form prints the run's metrics summary (virtual-time protocol
//! latency quantiles, per-class message counts, scheduler handoffs);
//! `--metrics-out` additionally writes the sweep's machine-readable
//! `metrics.json` (mergeable across shards with the `metrics_merge`
//! bench bin).

use std::path::Path;
use std::process::exit;

use caa_harness::arena::ExecutionArena;
use caa_harness::bisect::{bisect_schedule, plan_violates, write_corpus_entry};
use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::sweep::{run_seed_in, sweep, Shard, SweepConfig};

fn replay(seed: u64, config: &ScenarioConfig, recorded_trace: Option<&str>, bisect: bool) -> bool {
    let plan = ScenarioPlan::generate(seed, config);
    println!("{}", plan.describe());
    let mut arena = ExecutionArena::new();
    let result = run_seed_in(seed, config, true, &mut arena);
    println!("{}", result.artifacts.trace.render());
    print!("{}", arena.metrics().summary());
    let mut ok = true;
    if let Some(recorded) = recorded_trace {
        if result.artifacts.trace.render() == recorded {
            println!("trace matches the recorded corpus bytes exactly");
        } else {
            println!("trace DIVERGES from the recorded corpus bytes");
            ok = false;
        }
    }
    if result.passed() {
        println!("seed {seed}: every oracle passed");
        if bisect {
            println!("--bisect: nothing to bisect (no oracle violation)");
        }
    } else {
        println!("seed {seed}: {} violation(s)", result.violations.len());
        for v in &result.violations {
            println!("  - {v}");
        }
        ok = false;
        if bisect {
            run_bisection(&plan);
        }
    }
    ok
}

/// Shrinks the violating seed's fault/crash schedule to a minimal
/// still-violating subset and persists it next to the seed's corpus
/// entry.
fn run_bisection(plan: &ScenarioPlan) {
    let mut arena = ExecutionArena::new();
    let full = plan.faults.len() + usize::from(plan.crash.is_some());
    match bisect_schedule(plan, |candidate| plan_violates(candidate, &mut arena)) {
        None => println!(
            "--bisect: the violation does not reproduce deterministically \
             under the run oracles; nothing minimised"
        ),
        Some(outcome) => {
            println!(
                "--bisect: schedule minimised from {} to {} element(s) in {} execution(s)",
                full,
                outcome.schedule.len(),
                outcome.attempts,
            );
            for (i, fault) in outcome.plan.faults.iter().enumerate() {
                println!("  kept fault {i}: {fault:?}");
            }
            match outcome.plan.crash {
                Some(c) => println!("  kept crash: {c:?}"),
                None => println!("  crash dropped (or none scheduled)"),
            }
            let dir = Path::new("target/caa-corpus");
            match write_corpus_entry(dir, &outcome) {
                Ok(entry) => println!("  minimised schedule written to {}", entry.display()),
                Err(e) => eprintln!("  could not persist bisection: {e}"),
            }
        }
    }
}

fn replay_corpus(entry: &Path) -> bool {
    // Entry dirs are `<seed>` or `<seed>-<config hash>` (the sweep
    // disambiguates same-seed failures from different configs).
    let seed: u64 = entry
        .file_name()
        .and_then(|n| n.to_str())
        .map(|n| n.split('-').next().unwrap_or(n))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("corpus entry directory must be named after its seed: {entry:?}");
            exit(2);
        });
    let config_text = std::fs::read_to_string(entry.join("config.txt")).unwrap_or_else(|e| {
        eprintln!("cannot read {:?}: {e}", entry.join("config.txt"));
        exit(2);
    });
    let config = ScenarioConfig::from_kv(&config_text).unwrap_or_else(|e| {
        eprintln!("cannot parse corpus config: {e}");
        exit(2);
    });
    let recorded = std::fs::read_to_string(entry.join("trace.txt")).ok();
    println!("replaying corpus entry {} (seed {seed})", entry.display());
    replay(seed, &config, recorded.as_deref(), false)
}

fn run_sweep(args: &[String]) -> bool {
    let mut seeds: u64 = 1000;
    let mut start: u64 = 0;
    let mut shard: Option<Shard> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = args.iter();
    let usage =
        "usage: replay -- --sweep <seeds> [--start <seed>] [--shard k/n] [--metrics-out PATH]";
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{usage}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--sweep" => {
                seeds = value().parse().unwrap_or_else(|e| {
                    eprintln!("bad --sweep value: {e}");
                    exit(2);
                });
            }
            "--start" => {
                start = value().parse().unwrap_or_else(|e| {
                    eprintln!("bad --start value: {e}");
                    exit(2);
                });
            }
            "--shard" => {
                shard = Some(Shard::parse(&value()).unwrap_or_else(|e| {
                    eprintln!("bad --shard value: {e}");
                    exit(2);
                }));
            }
            "--metrics-out" => metrics_out = Some(value()),
            other => {
                eprintln!("unknown argument {other}\n{usage}");
                exit(2);
            }
        }
    }
    let report = sweep(&SweepConfig {
        start_seed: start,
        seeds,
        shard,
        check_replay: true,
        ..SweepConfig::default()
    });
    print!("{}", report.summary());
    if let Some(path) = metrics_out {
        match std::fs::write(&path, report.metrics_json()) {
            Ok(()) => println!("metrics written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                exit(2);
            }
        }
    }
    if let Some(shard) = shard {
        println!(
            "(shard {}/{} of seeds {start}..{})",
            shard.index,
            shard.count,
            start + seeds
        );
    }
    report.all_passed()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ok = match args.first().map(String::as_str) {
        Some("--corpus") => {
            let entry = args.get(1).unwrap_or_else(|| {
                eprintln!("usage: replay -- --corpus <dir>/<seed>");
                exit(2);
            });
            replay_corpus(Path::new(entry))
        }
        Some("--sweep") => run_sweep(&args),
        Some(seed) => {
            let seed: u64 = seed.parse().unwrap_or_else(|_| {
                eprintln!(
                    "usage: replay -- <seed> [--bisect] | --corpus <dir>/<seed> | --sweep <seeds>"
                );
                exit(2);
            });
            let bisect = args.iter().any(|a| a == "--bisect");
            replay(seed, &ScenarioConfig::default(), None, bisect)
        }
        None => replay(0, &ScenarioConfig::default(), None, false),
    };
    if !ok {
        exit(1);
    }
}
