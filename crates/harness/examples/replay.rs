//! One-command seed replay and sharded sweeping: re-run a violating (or
//! any) seed, print the oracle verdicts and the full canonical trace — or
//! drive a whole seed range, optionally as one deterministic shard of a
//! multi-process split.
//!
//! Three forms:
//!
//! ```text
//! # Regenerate the seed under the default ScenarioConfig. `--bisect`
//! # additionally shrinks a violating seed's fault/crash schedule to a
//! # minimal still-violating subset; `--bisect-workload` shrinks the
//! # whole plan (top actions, phases, raises, participants) to a
//! # 1-minimal scenario. Both persist to the corpus dir. `--spans-out`
//! # additionally exports the run's derived span timeline as Chrome
//! # trace-event JSON (spans, causal-message flow arrows, critical-path
//! # lanes) — open it at https://ui.perfetto.dev:
//! cargo run -p caa-harness --example replay -- 42 [--bisect] [--bisect-workload] \
//!     [--spans-out trace.json]
//!
//! # Replay a persisted corpus entry (the sweep's exact — possibly
//! # custom — config, plus a byte-exact check against the recorded
//! # trace). Fuzz entries carry a lineage.txt; the recorded mutation
//! # seeds re-derive the exact mutated plan before the comparison:
//! cargo run -p caa-harness --example replay -- --corpus target/caa-corpus/42
//!
//! # Sweep a seed range; several processes/CI jobs split it with --shard:
//! cargo run -p caa-harness --example replay -- --sweep 10000 \
//!     [--start 0] [--shard 2/8] [--metrics-out metrics.json]
//! ```
//!
//! Every form prints the run's metrics summary (virtual-time protocol
//! latency quantiles, per-class message counts, scheduler handoffs);
//! `--metrics-out` additionally writes the sweep's machine-readable
//! `metrics.json` (mergeable across shards with the `metrics_merge`
//! bench bin).

use std::path::Path;
use std::process::exit;

use caa_harness::arena::ExecutionArena;
use caa_harness::bisect::{
    bisect_schedule, bisect_workload, plan_violates, write_corpus_entry, write_workload_entry,
};
use caa_harness::fuzz::load_corpus_plan;
use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::spans::trace_event_json;
use caa_harness::sweep::{run_plan_checked, sweep, Shard, SweepConfig};

/// Which minimisations to run on a violating plan.
#[derive(Clone, Copy, Default)]
struct BisectFlags {
    schedule: bool,
    workload: bool,
}

fn replay_plan(
    plan: &ScenarioPlan,
    config: &ScenarioConfig,
    lineage: Option<&str>,
    recorded_trace: Option<&str>,
    bisect: BisectFlags,
    spans_out: Option<&str>,
) -> bool {
    let seed = plan.seed;
    println!("{}", plan.describe());
    let mut arena = ExecutionArena::new();
    let result = run_plan_checked(plan.clone(), true, &mut arena);
    println!("{}", result.artifacts.trace.render());
    print!("{}", arena.metrics().summary());
    let mut ok = true;
    if let Some(path) = spans_out {
        match std::fs::write(path, trace_event_json(&result.artifacts.trace, seed)) {
            Ok(()) => println!("span timeline written to {path} (open at https://ui.perfetto.dev)"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                ok = false;
            }
        }
    }
    if let Some(recorded) = recorded_trace {
        if result.artifacts.trace.render() == recorded {
            println!("trace matches the recorded corpus bytes exactly");
        } else {
            println!("trace DIVERGES from the recorded corpus bytes");
            ok = false;
        }
    }
    if result.passed() {
        println!("seed {seed}: every oracle passed");
        if bisect.schedule || bisect.workload {
            println!("--bisect: nothing to bisect (no oracle violation)");
        }
    } else {
        println!("seed {seed}: {} violation(s)", result.violations.len());
        for v in &result.violations {
            println!("  - {v}");
        }
        ok = false;
        if bisect.schedule {
            run_bisection(plan);
        }
        if bisect.workload {
            run_workload_bisection(plan, config, lineage);
        }
    }
    ok
}

/// Shrinks the violating seed's fault/crash schedule to a minimal
/// still-violating subset and persists it next to the seed's corpus
/// entry.
fn run_bisection(plan: &ScenarioPlan) {
    let mut arena = ExecutionArena::new();
    let full = plan.faults.len() + plan.crashes.len();
    match bisect_schedule(plan, |candidate| plan_violates(candidate, &mut arena)) {
        None => println!(
            "--bisect: the violation does not reproduce deterministically \
             under the run oracles; nothing minimised"
        ),
        Some(outcome) => {
            println!(
                "--bisect: schedule minimised from {} to {} element(s) in {} execution(s)",
                full,
                outcome.schedule.len(),
                outcome.attempts,
            );
            for (i, fault) in outcome.plan.faults.iter().enumerate() {
                println!("  kept fault {i}: {fault:?}");
            }
            if outcome.plan.crashes.is_empty() {
                println!("  crash dropped (or none scheduled)");
            } else {
                for (i, c) in outcome.plan.crashes.iter().enumerate() {
                    println!("  kept crash {i}: {c:?}");
                }
            }
            let dir = Path::new("target/caa-corpus");
            match write_corpus_entry(dir, &outcome) {
                Ok(entry) => println!("  minimised schedule written to {}", entry.display()),
                Err(e) => eprintln!("  could not persist bisection: {e}"),
            }
        }
    }
}

/// Shrinks the whole violating plan (workload structure and chaos
/// schedule) to a 1-minimal still-violating scenario and persists the
/// reduction steps next to the seed's corpus entry — together with the
/// scenario config and the minimal plan's trace bytes, so the shrunk
/// violation rechecks byte-exactly via `replay --corpus <entry>`.
fn run_workload_bisection(plan: &ScenarioPlan, config: &ScenarioConfig, lineage: Option<&str>) {
    let mut arena = ExecutionArena::new();
    match bisect_workload(plan, |candidate| plan_violates(candidate, &mut arena)) {
        None => println!(
            "--bisect-workload: the violation does not reproduce deterministically \
             under the run oracles; nothing minimised"
        ),
        Some(outcome) => {
            println!(
                "--bisect-workload: plan minimised via {} reduction step(s) in {} execution(s)",
                outcome.steps.len(),
                outcome.attempts,
            );
            for step in &outcome.steps {
                println!("  {}", step.render());
            }
            println!("minimal plan:\n{}", outcome.plan.describe());
            let dir = Path::new("target/caa-corpus");
            match write_workload_entry(dir, &outcome) {
                Ok(entry) => {
                    let minimal = run_plan_checked(outcome.plan.clone(), false, &mut arena);
                    let persisted = std::fs::write(entry.join("config.txt"), config.to_kv())
                        .and_then(|()| {
                            // A fuzz find's steps shrink the *mutated* plan,
                            // so the entry must re-derive it the same way.
                            match lineage {
                                Some(text) => std::fs::write(entry.join("lineage.txt"), text),
                                None => Ok(()),
                            }
                        })
                        .and_then(|()| {
                            std::fs::write(
                                entry.join("trace.txt"),
                                minimal.artifacts.trace.render(),
                            )
                        });
                    match persisted {
                        Ok(()) => println!("  minimised workload written to {}", entry.display()),
                        Err(e) => eprintln!("  could not persist minimal trace: {e}"),
                    }
                }
                Err(e) => eprintln!("  could not persist workload bisection: {e}"),
            }
        }
    }
}

fn replay_corpus(entry: &Path, bisect: BisectFlags, spans_out: Option<&str>) -> bool {
    // `load_corpus_plan` understands both entry layouts: plain sweep
    // entries (`<seed>[-<config hash>]`, plan regenerated from the seed)
    // and fuzz entries (a `lineage.txt` whose recorded mutation seeds
    // re-derive the exact mutated plan).
    let (plan, config) = load_corpus_plan(entry).unwrap_or_else(|e| {
        eprintln!("cannot load corpus entry {entry:?}: {e}");
        exit(2);
    });
    let recorded = std::fs::read_to_string(entry.join("trace.txt")).ok();
    let lineage = std::fs::read_to_string(entry.join("lineage.txt")).ok();
    println!(
        "replaying corpus entry {} (seed {})",
        entry.display(),
        plan.seed
    );
    replay_plan(
        &plan,
        &config,
        lineage.as_deref(),
        recorded.as_deref(),
        bisect,
        spans_out,
    )
}

/// The value following `name` in `args`, if both are present.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run_sweep(args: &[String]) -> bool {
    let mut seeds: u64 = 1000;
    let mut start: u64 = 0;
    let mut shard: Option<Shard> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = args.iter();
    let usage =
        "usage: replay -- --sweep <seeds> [--start <seed>] [--shard k/n] [--metrics-out PATH]";
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{usage}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--sweep" => {
                seeds = value().parse().unwrap_or_else(|e| {
                    eprintln!("bad --sweep value: {e}");
                    exit(2);
                });
            }
            "--start" => {
                start = value().parse().unwrap_or_else(|e| {
                    eprintln!("bad --start value: {e}");
                    exit(2);
                });
            }
            "--shard" => {
                shard = Some(Shard::parse(&value()).unwrap_or_else(|e| {
                    eprintln!("bad --shard value: {e}");
                    exit(2);
                }));
            }
            "--metrics-out" => metrics_out = Some(value()),
            other => {
                eprintln!("unknown argument {other}\n{usage}");
                exit(2);
            }
        }
    }
    let report = sweep(&SweepConfig {
        start_seed: start,
        seeds,
        shard,
        check_replay: true,
        ..SweepConfig::default()
    });
    print!("{}", report.summary());
    if let Some(path) = metrics_out {
        match std::fs::write(&path, report.metrics_json()) {
            Ok(()) => println!("metrics written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                exit(2);
            }
        }
    }
    if let Some(shard) = shard {
        println!(
            "(shard {}/{} of seeds {start}..{})",
            shard.index,
            shard.count,
            start + seeds
        );
    }
    report.all_passed()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ok = match args.first().map(String::as_str) {
        Some("--corpus") => {
            let entry = args.get(1).unwrap_or_else(|| {
                eprintln!(
                    "usage: replay -- --corpus <dir>/<seed> [--bisect] [--bisect-workload] \
                     [--spans-out PATH]"
                );
                exit(2);
            });
            let bisect = BisectFlags {
                schedule: args.iter().any(|a| a == "--bisect"),
                workload: args.iter().any(|a| a == "--bisect-workload"),
            };
            replay_corpus(Path::new(entry), bisect, flag_value(&args, "--spans-out"))
        }
        Some("--sweep") => run_sweep(&args),
        Some(seed) => {
            let seed: u64 = seed.parse().unwrap_or_else(|_| {
                eprintln!(
                    "usage: replay -- <seed> [--bisect] [--bisect-workload] [--spans-out PATH] \
                     | --corpus <dir>/<seed> | --sweep <seeds>"
                );
                exit(2);
            });
            let bisect = BisectFlags {
                schedule: args.iter().any(|a| a == "--bisect"),
                workload: args.iter().any(|a| a == "--bisect-workload"),
            };
            let config = ScenarioConfig::default();
            let plan = ScenarioPlan::generate(seed, &config);
            replay_plan(
                &plan,
                &config,
                None,
                None,
                bisect,
                flag_value(&args, "--spans-out"),
            )
        }
        None => replay_plan(
            &ScenarioPlan::generate(0, &ScenarioConfig::default()),
            &ScenarioConfig::default(),
            None,
            None,
            BisectFlags::default(),
            None,
        ),
    };
    if !ok {
        exit(1);
    }
}
