//! One-command seed replay: re-run a violating (or any) seed, print the
//! oracle verdicts and the full canonical trace.
//!
//! ```text
//! cargo run -p caa-harness --example replay -- 42
//! ```

use caa_harness::plan::{ScenarioConfig, ScenarioPlan};
use caa_harness::sweep::run_seed;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let plan = ScenarioPlan::generate(seed, &ScenarioConfig::default());
    println!("{}", plan.describe());
    let result = run_seed(seed, &ScenarioConfig::default(), true);
    println!("{}", result.artifacts.trace.render());
    if result.passed() {
        println!("seed {seed}: every oracle passed");
    } else {
        println!("seed {seed}: {} violation(s)", result.violations.len());
        for v in &result.violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}
