//! Property tests for the telemetry primitives (via the offline
//! `proptest` shim): exact-merge algebra, quantile error bounds, and
//! JSON round-tripping — the invariants the sharded-sweep merge story
//! rests on.

use proptest::prelude::*;

use caa_telemetry::{Histogram, MetricSet};

/// Log-uniform-ish `u64` samples: a uniform draw shifted right by a
/// uniform amount, so tiny exact-bucket values, mid-range values and
/// near-`u64::MAX` values all appear with similar frequency.
fn sample() -> impl Strategy<Value = u64> {
    (0u32..=63, any::<u64>()).prop_map(|(shift, raw)| raw >> shift)
}

fn samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(sample(), 0..=max_len)
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// A small random `MetricSet`: counters and histograms drawn from a
/// fixed label pool (overlapping labels across sets exercise the
/// merge-by-label path; disjoint ones exercise adoption).
fn metric_set() -> impl Strategy<Value = MetricSet> {
    let counter_labels = prop::collection::btree_map(
        prop::sample::select(vec!["alpha", "beta", "gamma", "delta"]),
        // `>> 2`: three of these must sum without overflowing the u64
        // counter in the associativity property.
        any::<u64>().prop_map(|n| n >> 2),
        0..=4,
    );
    let hist_labels = prop::collection::btree_map(
        prop::sample::select(vec!["lat_a", "lat_b", "lat_c"]),
        samples(12),
        0..=3,
    );
    (counter_labels, hist_labels).prop_map(|(counters, hists)| {
        let mut set = MetricSet::new();
        for (label, n) in counters {
            let handle = set.counter(label);
            set.add(handle, n);
        }
        for (label, values) in hists {
            let handle = set.histogram(label);
            for v in values {
                set.record(handle, v);
            }
        }
        set
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn count_sum_min_max_are_exact(values in samples(64)) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
        prop_assert_eq!(h.min(), values.iter().copied().min().unwrap_or(0));
        prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn histogram_merge_is_commutative(a in samples(48), b in samples(48)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(a in samples(32), b in samples(32), c in samples(32)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn sharded_merge_equals_single_recorder(values in samples(64), shards in 1usize..=5) {
        let whole = hist_of(&values);
        let mut parts = vec![Histogram::new(); shards];
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut merged = parts.remove(0);
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged, whole);
    }

    /// The documented error contract: `quantile(num, den)` never reads
    /// below the rank sample and overshoots it by at most 12.5 %
    /// (values below 2^3 are bucketed exactly).
    #[test]
    fn quantile_error_is_bounded(values in samples(64), num in 0u64..=100) {
        if !values.is_empty() {
            let h = hist_of(&values);
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = (u128::from(h.count()) * u128::from(num))
                .div_ceil(100)
                .clamp(1, u128::from(h.count()));
            let truth = sorted[rank as usize - 1];
            let q = h.quantile(num, 100);
            prop_assert!(q >= truth, "quantile {q} under rank sample {truth}");
            prop_assert!(
                q - truth <= truth / 8,
                "quantile {q} overshoots rank sample {truth} by more than 12.5 %"
            );
        }
    }

    #[test]
    fn single_sample_quantiles_are_exact(v in sample(), num in 0u64..=100) {
        let mut h = Histogram::new();
        h.record(v);
        prop_assert_eq!(h.quantile(num, 100), v);
    }

    #[test]
    fn histogram_json_round_trips(values in samples(48)) {
        let h = hist_of(&values);
        let rebuilt =
            Histogram::from_buckets(h.nonzero_buckets(), h.min(), h.max(), h.sum()).unwrap();
        prop_assert_eq!(rebuilt, h);
    }

    #[test]
    fn set_merge_is_commutative_in_bytes(a in metric_set(), b in metric_set()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn set_merge_is_associative_in_bytes(
        a in metric_set(),
        b in metric_set(),
        c in metric_set(),
    ) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.to_json(), right.to_json());
    }

    #[test]
    fn set_json_round_trips_byte_exactly(set in metric_set()) {
        let doc = set.to_json();
        let parsed = MetricSet::from_json(&doc).unwrap();
        prop_assert_eq!(parsed.to_json(), doc);
    }
}
