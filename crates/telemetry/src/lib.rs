//! Deterministic, mergeable metrics primitives for the CA-action
//! simulation stack.
//!
//! The harness proves protocol *correctness* with oracles and *message
//! complexity* with counters; this crate adds the third axis the
//! production-transport and cluster-scale roadmap items need:
//! **distributions** — how long coordinated recovery takes under
//! contention, phase by phase. Three building blocks:
//!
//! * [`Histogram`] — a log-bucketed value histogram (8 sub-buckets per
//!   octave, ≤ 12.5 % relative bucket error) with exact
//!   [`Histogram::merge`], exact `count`/`sum`/`min`/`max`, and
//!   integer-only quantile math, so p50/p90/p99 read off a merged shard
//!   union exactly equal the unsharded run's.
//! * [`MetricSet`] — counters and histograms keyed by label, addressed on
//!   the hot path through pre-registered handles ([`CounterHandle`],
//!   [`HistogramHandle`]) so recording is an index + add, never a map
//!   lookup or an allocation.
//! * [`json`] — a dependency-free serializer/parser pair for the
//!   `metrics.json` interchange format: serialization is canonical
//!   (sorted labels, integer-only values), which is what makes
//!   "merge of shards k/n == unsharded run" a *byte* equality, the same
//!   guarantee `trace_hashes --shard` gives for trace fingerprints.
//!
//! # Determinism contract
//!
//! Nothing in this crate reads wall clocks, system randomness or global
//! state: a metric set is a pure fold over the values recorded into it,
//! and [`MetricSet::merge`] is associative and commutative (bucket sums,
//! counter sums, min/max). Callers that record only *virtual-time*
//! quantities therefore get byte-deterministic serialized metrics per
//! seed set. Wall-clock quantities (e.g. scheduler park/wake handoffs)
//! belong in a separate set that is reported but excluded from
//! byte-identity claims — see `caa-harness`'s sweep metrics for the
//! split.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]

mod hist;
pub mod json;
mod set;
mod span;

pub use hist::Histogram;
pub use set::{CounterHandle, HistogramHandle, MetricSet};
pub use span::{Span, SpanTree};
