//! Log-bucketed histograms with exact merge.

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error
/// by `2^-SUB_BITS` (12.5 %).
const SUB_BITS: u32 = 3;

/// Values below `2^SUB_BITS` get one exact bucket each.
const EXACT: u64 = 1 << SUB_BITS;

/// Total bucket count for the full `u64` domain. The index function below
/// maps `u64::MAX` to `((63 - SUB_BITS + 1) << SUB_BITS) + (2^SUB_BITS - 1)
/// = 495`, so 496 buckets cover every representable value — there is no
/// saturating overflow bucket that would make `merge` lossy.
const BUCKETS: usize = (((63 - SUB_BITS + 1) << SUB_BITS) + EXACT as u32) as usize;

/// Maps a value to its bucket index (monotone, total over `u64`).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let group = msb - SUB_BITS + 1;
        let sub = (v >> (msb - SUB_BITS)) & (EXACT - 1);
        ((group << SUB_BITS) + sub as u32) as usize
    }
}

/// Inclusive `(low, high)` value range of bucket `i` — the inverse of
/// [`bucket_index`].
fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < EXACT {
        (i, i)
    } else {
        let group = (i >> SUB_BITS) as u32;
        let sub = i & (EXACT - 1);
        let shift = group - 1;
        let low = (EXACT + sub) << shift;
        // `(1 << shift) - 1` before adding: the top bucket's width term
        // alone would overflow u64.
        (low, low + ((1u64 << shift) - 1))
    }
}

/// A log-bucketed histogram over `u64` samples (typically virtual-time
/// nanoseconds), built for *exact, order-independent merging*: two
/// histograms recorded on different shards merge bucket-wise into exactly
/// the histogram a single process would have recorded, so quantiles read
/// off the merged form are identical to the unsharded run's.
///
/// `count`, `sum`, `min` and `max` are exact; quantiles are
/// bucket-resolved with ≤ 12.5 % relative error (8 sub-buckets per
/// octave) and computed with integer math only, so they are
/// platform-deterministic.
///
/// # Examples
///
/// ```
/// use caa_telemetry::Histogram;
///
/// let mut a = Histogram::new();
/// let mut b = Histogram::new();
/// for v in 1..=700u64 {
///     if v % 2 == 0 { a.record(v) } else { b.record(v) }
/// }
/// let mut merged = a.clone();
/// merged.merge(&b);
/// assert_eq!(merged.count(), 700);
/// assert_eq!(merged.max(), 700);
/// // p50 lands in the bucket containing 350, within 12.5 %.
/// let p50 = merged.quantile(50, 100);
/// assert!((320..=384).contains(&p50), "{p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    /// `u128`: summing virtual-time nanoseconds across thousands of seeds
    /// overflows `u64` for long-timeout scenarios.
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. Allocates its (fixed-size) bucket table once;
    /// recording never allocates.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of value `v` (the bulk form used when merging
    /// parsed bucket lists).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, rounded down (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            u64::try_from(self.sum / u128::from(self.count)).unwrap_or(u64::MAX)
        }
    }

    /// The `num/den` quantile (e.g. `quantile(99, 100)` for p99), resolved
    /// to its bucket's upper bound and clamped to the exact observed
    /// `[min, max]` range. Integer math only — platform-deterministic.
    /// Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// When `den` is 0.
    #[must_use]
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0, "quantile denominator must be positive");
        if self.count == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based: ceil(count * num / den),
        // clamped into [1, count].
        let rank = (u128::from(self.count) * u128::from(num)).div_ceil(u128::from(den));
        let rank = rank.clamp(1, u128::from(self.count));
        let mut cumulative: u128 = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += u128::from(n);
            if cumulative >= rank {
                let (_, high) = bucket_bounds(i);
                return high.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Accumulates `other` into `self`. Exact: bucket-wise sums plus
    /// min/max/count/sum folds, so merging is associative, commutative,
    /// and yields the histogram a single recorder would have produced.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to empty, keeping the bucket table allocation.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// The non-empty buckets as `(index, count)` pairs in index order —
    /// the sparse interchange form used by the JSON serialization.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    /// Reconstructs a histogram from its sparse `(index, count)` bucket
    /// pairs plus the exact `min`/`max`/`sum` the interchange format
    /// carries alongside them (the JSON parser's path). A serialized
    /// histogram round-trips exactly: buckets bucket-wise, the three
    /// exact aggregates verbatim.
    ///
    /// # Errors
    ///
    /// A human-readable message when a bucket index is out of range.
    pub fn from_buckets(
        pairs: impl IntoIterator<Item = (usize, u64)>,
        min: u64,
        max: u64,
        sum: u128,
    ) -> Result<Histogram, String> {
        let mut h = Histogram::new();
        for (i, n) in pairs {
            if i >= BUCKETS {
                return Err(format!("bucket index {i} out of range (< {BUCKETS})"));
            }
            h.buckets[i] += n;
            h.count += n;
        }
        if h.count > 0 {
            h.min = min;
            h.max = max;
            h.sum = sum;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..EXACT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_invert_it() {
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|shift| [0u64, 1, 3].map(|nudge| (1u64 << shift).saturating_add(nudge)))
            .collect();
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i >= prev, "index must not decrease at {v}");
            prev = i;
            let (low, high) = bucket_bounds(i);
            assert!(
                (low..=high).contains(&v),
                "{v} not within bucket {i} bounds [{low}, {high}]"
            );
            assert!(i < BUCKETS);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let (_, top) = bucket_bounds(BUCKETS - 1);
        assert_eq!(top, u64::MAX, "top bucket must close the u64 domain");
    }

    #[test]
    fn quantiles_on_tiny_samples_are_exact() {
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.quantile(50, 100), 7);
        assert_eq!(h.quantile(99, 100), 7);
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 7);
        assert_eq!(h.mean(), 7);
    }

    #[test]
    fn empty_histogram_reads_zero_everywhere() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(50, 100), 0);
    }

    #[test]
    fn huge_values_stay_exact_in_min_max_sum() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), u64::MAX - 1);
        assert_eq!(h.sum(), 2 * u128::from(u64::MAX) - 1);
        assert_eq!(h.quantile(99, 100), u64::MAX);
    }

    #[test]
    fn merge_equals_single_recorder() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [0u64, 1, 9, 1_000, 12_345, 1 << 40, u64::MAX] {
            whole.record(v);
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn sparse_buckets_round_trip() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 900, 1 << 50] {
            h.record(v);
        }
        let rebuilt =
            Histogram::from_buckets(h.nonzero_buckets(), h.min(), h.max(), h.sum()).unwrap();
        assert_eq!(rebuilt, h);
        assert!(Histogram::from_buckets([(BUCKETS, 1)], 0, 0, 0).is_err());
    }
}
