//! Labeled metric sets with pre-registered handles and canonical JSON.

use std::collections::HashMap;

use crate::hist::Histogram;
use crate::json::{self, Value};

/// Handle to a registered counter — an index, so hot-path increments are
/// array adds, never map lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

/// A set of counters and histograms keyed by label.
///
/// Register every hot-path metric once (at worker/arena construction) and
/// record through the returned handles; labels first seen at runtime (e.g.
/// per-message-class counters) use the `*_named` forms, which allocate
/// only on first sight of a label. Serialization is **canonical** — labels
/// sorted, integers only — so two sets holding the same data serialize to
/// the same bytes regardless of registration order, and
/// [`MetricSet::merge`] over shards reproduces the unsharded bytes
/// exactly.
///
/// # Examples
///
/// ```
/// use caa_telemetry::MetricSet;
///
/// let mut set = MetricSet::new();
/// let seeds = set.counter("seeds");
/// let lat = set.histogram("latency_ns");
/// set.add(seeds, 2);
/// set.record(lat, 1_500);
/// set.record(lat, 2_500);
/// assert_eq!(set.counter_value("seeds"), 2);
/// assert_eq!(set.histogram_named("latency_ns").unwrap().count(), 2);
/// let json = set.to_json();
/// let back = MetricSet::from_json(&json).unwrap();
/// assert_eq!(back.to_json(), json);
/// ```
#[derive(Debug, Default, Clone)]
pub struct MetricSet {
    counters: Vec<(String, u64)>,
    hists: Vec<(String, Histogram)>,
    counter_index: HashMap<String, usize>,
    hist_index: HashMap<String, usize>,
}

impl MetricSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// Registers (or finds) the counter labeled `name`.
    pub fn counter(&mut self, name: &str) -> CounterHandle {
        if let Some(&i) = self.counter_index.get(name) {
            return CounterHandle(i);
        }
        let i = self.counters.len();
        self.counters.push((name.to_owned(), 0));
        self.counter_index.insert(name.to_owned(), i);
        CounterHandle(i)
    }

    /// Registers (or finds) the histogram labeled `name`.
    pub fn histogram(&mut self, name: &str) -> HistogramHandle {
        if let Some(&i) = self.hist_index.get(name) {
            return HistogramHandle(i);
        }
        let i = self.hists.len();
        self.hists.push((name.to_owned(), Histogram::new()));
        self.hist_index.insert(name.to_owned(), i);
        HistogramHandle(i)
    }

    /// Adds `n` to a registered counter.
    #[inline]
    pub fn add(&mut self, handle: CounterHandle, n: u64) {
        self.counters[handle.0].1 += n;
    }

    /// Records one histogram sample.
    #[inline]
    pub fn record(&mut self, handle: HistogramHandle, v: u64) {
        self.hists[handle.0].1.record(v);
    }

    /// Adds `n` to the counter labeled `name`, registering it on first
    /// sight (the cold path for labels not known at registration time).
    pub fn add_named(&mut self, name: &str, n: u64) {
        let handle = self.counter(name);
        self.add(handle, n);
    }

    /// The value of the counter labeled `name` (0 if unregistered).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter_index
            .get(name)
            .map_or(0, |&i| self.counters[i].1)
    }

    /// The histogram labeled `name`, if registered.
    #[must_use]
    pub fn histogram_named(&self, name: &str) -> Option<&Histogram> {
        self.hist_index.get(name).map(|&i| &self.hists[i].1)
    }

    /// The histogram behind a handle.
    #[must_use]
    pub fn histogram_at(&self, handle: HistogramHandle) -> &Histogram {
        &self.hists[handle.0].1
    }

    /// Iterates `(label, value)` over all counters in label order.
    pub fn counters_sorted(&self) -> Vec<(&str, u64)> {
        let mut out: Vec<(&str, u64)> = self
            .counters
            .iter()
            .map(|(name, v)| (name.as_str(), *v))
            .collect();
        out.sort_unstable_by_key(|&(name, _)| name);
        out
    }

    /// Iterates `(label, histogram)` over all histograms in label order.
    pub fn histograms_sorted(&self) -> Vec<(&str, &Histogram)> {
        let mut out: Vec<(&str, &Histogram)> = self
            .hists
            .iter()
            .map(|(name, h)| (name.as_str(), h))
            .collect();
        out.sort_unstable_by_key(|&(name, _)| name);
        out
    }

    /// Whether no counter was ever incremented and no histogram recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0) && self.hists.iter().all(|(_, h)| h.count() == 0)
    }

    /// Accumulates `other` into `self`, by label: counters sum, histograms
    /// merge bucket-exactly, labels unknown on either side are adopted.
    /// Associative and commutative — shard order never matters.
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, v) in &other.counters {
            let handle = self.counter(name);
            self.add(handle, *v);
        }
        for (name, h) in &other.hists {
            let handle = self.histogram(name);
            self.hists[handle.0].1.merge(h);
        }
    }

    /// Serializes canonically (sorted labels, integers only) with a
    /// two-space indent under `prefix` — the exact bytes
    /// [`MetricSet::from_json`] parses and the shard-merge byte-identity
    /// guarantee is stated over.
    pub fn write_json(&self, out: &mut String, prefix: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "{prefix}{{");
        let _ = writeln!(out, "{prefix}  \"counters\": {{");
        let counters = self.counters_sorted();
        for (i, (name, v)) in counters.iter().enumerate() {
            let comma = if i + 1 < counters.len() { "," } else { "" };
            let _ = write!(out, "{prefix}    ");
            json::write_str(out, name);
            let _ = writeln!(out, ": {v}{comma}");
        }
        let _ = writeln!(out, "{prefix}  }},");
        let _ = writeln!(out, "{prefix}  \"histograms\": {{");
        let hists = self.histograms_sorted();
        for (i, (name, h)) in hists.iter().enumerate() {
            let comma = if i + 1 < hists.len() { "," } else { "" };
            let _ = write!(out, "{prefix}    ");
            json::write_str(out, name);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(50, 100),
                h.quantile(90, 100),
                h.quantile(99, 100),
            );
            for (j, (bucket, n)) in h.nonzero_buckets().enumerate() {
                let comma = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{comma}[{bucket}, {n}]");
            }
            let _ = writeln!(out, "]}}{comma}");
        }
        let _ = writeln!(out, "{prefix}  }}");
        let _ = write!(out, "{prefix}}}");
    }

    /// [`MetricSet::write_json`] into a fresh string at top level.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, "");
        out.push('\n');
        out
    }

    /// Parses a serialized set (see [`MetricSet::to_json`]).
    ///
    /// # Errors
    ///
    /// A human-readable message when the text is not the expected shape.
    pub fn from_json(text: &str) -> Result<MetricSet, String> {
        Self::from_json_value(&json::parse(text)?)
    }

    /// Builds a set from an already-parsed [`Value`] (the path for
    /// documents embedding metric sets in larger reports).
    ///
    /// # Errors
    ///
    /// A human-readable message when the value is not a serialized set.
    pub fn from_json_value(value: &Value) -> Result<MetricSet, String> {
        let mut set = MetricSet::new();
        let counters = value
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or("missing \"counters\" object")?;
        for (name, v) in counters {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("counter {name:?} is not a u64"))?;
            set.add_named(name, n);
        }
        let hists = value
            .get("histograms")
            .and_then(Value::as_obj)
            .ok_or("missing \"histograms\" object")?;
        for (name, v) in hists {
            let field = |key: &str| {
                v.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("histogram {name:?} missing u64 {key:?}"))
            };
            let sum = v
                .get("sum")
                .and_then(Value::as_u128)
                .ok_or_else(|| format!("histogram {name:?} missing \"sum\""))?;
            let buckets = v
                .get("buckets")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("histogram {name:?} missing \"buckets\""))?;
            let pairs: Vec<(usize, u64)> = buckets
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("histogram {name:?}: bucket is not a pair"))?;
                    let index = pair[0]
                        .as_u64()
                        .ok_or_else(|| format!("histogram {name:?}: bad bucket index"))?;
                    let count = pair[1]
                        .as_u64()
                        .ok_or_else(|| format!("histogram {name:?}: bad bucket count"))?;
                    Ok((index as usize, count))
                })
                .collect::<Result<_, String>>()?;
            let hist = Histogram::from_buckets(pairs, field("min")?, field("max")?, sum)
                .map_err(|e| format!("histogram {name:?}: {e}"))?;
            if hist.count() != field("count")? {
                return Err(format!(
                    "histogram {name:?}: bucket counts sum to {}, \"count\" says {}",
                    hist.count(),
                    field("count")?
                ));
            }
            let handle = set.histogram(name);
            set.hists[handle.0].1 = hist;
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> MetricSet {
        let mut set = MetricSet::new();
        let c = set.counter("zeta");
        let h = set.histogram("alpha_ns");
        set.add(c, 3);
        set.add_named("beta", 9);
        for v in [10u64, 900, 12, 1 << 33] {
            set.record(h, v);
        }
        set
    }

    #[test]
    fn json_round_trips_byte_exactly() {
        let set = sample_set();
        let json = set.to_json();
        let back = MetricSet::from_json(&json).expect("parse own serialization");
        assert_eq!(back.to_json(), json);
        assert_eq!(back.counter_value("zeta"), 3);
        assert_eq!(back.counter_value("beta"), 9);
        assert_eq!(back.histogram_named("alpha_ns").unwrap().count(), 4);
        assert_eq!(back.histogram_named("alpha_ns").unwrap().max(), 1 << 33);
    }

    #[test]
    fn serialization_is_canonical_across_registration_orders() {
        let mut other = MetricSet::new();
        // Register in a different order than sample_set.
        other.histogram("alpha_ns");
        other.counter("beta");
        other.counter("zeta");
        other.add_named("zeta", 3);
        other.add_named("beta", 9);
        let h = other.histogram("alpha_ns");
        for v in [10u64, 900, 12, 1 << 33] {
            other.record(h, v);
        }
        assert_eq!(other.to_json(), sample_set().to_json());
    }

    #[test]
    fn merge_is_by_label_and_adopts_unknowns() {
        let mut a = sample_set();
        let mut b = MetricSet::new();
        b.add_named("zeta", 7);
        b.add_named("new", 1);
        let h = b.histogram("alpha_ns");
        b.record(h, 11);
        a.merge(&b);
        assert_eq!(a.counter_value("zeta"), 10);
        assert_eq!(a.counter_value("new"), 1);
        assert_eq!(a.histogram_named("alpha_ns").unwrap().count(), 5);
    }

    #[test]
    fn empty_set_serializes_and_parses() {
        let set = MetricSet::new();
        let back = MetricSet::from_json(&set.to_json()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let json = r#"{"counters": {}, "histograms":
            {"x": {"count": 5, "sum": 0, "min": 0, "max": 0, "buckets": [[0, 1]]}}}"#;
        assert!(MetricSet::from_json(json).unwrap_err().contains("count"));
    }
}
