//! Spans: named virtual-time intervals with parent links.
//!
//! A [`Span`] is the timeline primitive the harness derives *post-run*
//! from a recorded trace (see `caa-harness`'s `spans` module): a named
//! interval of virtual time on one thread, attributed to one action
//! instance, optionally nested under a parent span. A [`SpanTree`] owns a
//! run's spans in a flat arena — children are pushed after their parents
//! and refer to them by index, so construction is a single forward pass
//! and rendering never chases pointers.
//!
//! Like everything in this crate, spans are pure data derived from
//! virtual-time facts: the same trace yields byte-identical
//! [`SpanTree::render`] output on any machine, which is what the harness's
//! span-determinism tests assert.

use std::fmt::Write as _;

/// A named virtual-time interval on one thread, attributed to one action
/// instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// What the interval covers (e.g. `action:payment`, `resolution:r1`,
    /// `object-wait:ledger`).
    pub name: String,
    /// Virtual start, nanoseconds.
    pub start_ns: u64,
    /// Virtual end, nanoseconds (`>= start_ns`).
    pub end_ns: u64,
    /// The thread the interval belongs to.
    pub thread: u32,
    /// Canonical (run-independent) action-instance label — the `A<n>`
    /// number of the harness's trace rendering, *not* the raw serial.
    pub instance: u64,
    /// Index of the enclosing span in the owning [`SpanTree`], if any.
    pub parent: Option<u32>,
}

impl Span {
    /// The interval's duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A run's spans in push order, parents before children.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    spans: Vec<Span>,
}

impl SpanTree {
    /// An empty tree.
    #[must_use]
    pub fn new() -> SpanTree {
        SpanTree::default()
    }

    /// Appends a span and returns its index (usable as a child's
    /// [`Span::parent`]).
    pub fn push(&mut self, span: Span) -> u32 {
        let index = u32::try_from(self.spans.len()).expect("span count fits u32");
        debug_assert!(span.parent.is_none_or(|p| p < index), "parent before child");
        self.spans.push(span);
        index
    }

    /// Closes the span at `index`: sets its end time.
    pub fn set_end(&mut self, index: u32, end_ns: u64) {
        self.spans[index as usize].end_ns = end_ns;
    }

    /// The spans, in push order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the tree holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Nesting depth of the span at `index` (0 = root).
    #[must_use]
    pub fn depth(&self, index: u32) -> usize {
        let mut depth = 0;
        let mut at = index;
        while let Some(parent) = self.spans[at as usize].parent {
            depth += 1;
            at = parent;
        }
        depth
    }

    /// Deterministic text form: one line per span in push order, indented
    /// by nesting depth. Byte-identical across replays of the same run —
    /// the form span-determinism tests compare.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.spans.len() * 48);
        for (i, span) in self.spans.iter().enumerate() {
            let index = u32::try_from(i).expect("span count fits u32");
            for _ in 0..self.depth(index) {
                out.push_str("  ");
            }
            let _ = writeln!(
                out,
                "{} A{} T{} [{}..{}] {}ns",
                span.name,
                span.instance,
                span.thread,
                span.start_ns,
                span.end_ns,
                span.duration_ns(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_set_end_and_depth() {
        let mut tree = SpanTree::new();
        let root = tree.push(Span {
            name: "action:a".into(),
            start_ns: 0,
            end_ns: 0,
            thread: 0,
            instance: 0,
            parent: None,
        });
        let child = tree.push(Span {
            name: "resolution:r1".into(),
            start_ns: 10,
            end_ns: 40,
            thread: 0,
            instance: 0,
            parent: Some(root),
        });
        tree.set_end(root, 100);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.spans()[root as usize].end_ns, 100);
        assert_eq!(tree.spans()[child as usize].duration_ns(), 30);
        assert_eq!(tree.depth(root), 0);
        assert_eq!(tree.depth(child), 1);
    }

    #[test]
    fn render_is_indented_and_stable() {
        let mut tree = SpanTree::new();
        let root = tree.push(Span {
            name: "action:a".into(),
            start_ns: 0,
            end_ns: 50,
            thread: 1,
            instance: 2,
            parent: None,
        });
        tree.push(Span {
            name: "handler:x".into(),
            start_ns: 5,
            end_ns: 25,
            thread: 1,
            instance: 2,
            parent: Some(root),
        });
        let text = tree.render();
        assert_eq!(
            text,
            "action:a A2 T1 [0..50] 50ns\n  handler:x A2 T1 [5..25] 20ns\n"
        );
        assert_eq!(text, tree.clone().render());
    }
}
