//! A dependency-free JSON subset: the interchange layer under
//! `metrics.json`.
//!
//! The build environment vendors no serde, so this module hand-rolls the
//! little JSON the metrics pipeline needs: objects, arrays, strings,
//! **unsigned integers only** (every metric is a count or a nanosecond
//! value; floats would reintroduce platform-dependent formatting and
//! break the byte-identity guarantee shard merging relies on), plus
//! `true`/`false`/`null` for forward compatibility. Parsing is strict —
//! anything outside the subset is a descriptive `Err`, not a silent
//! coercion.

use std::fmt::Write as _;

/// A parsed JSON value (unsigned-integer subset — see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An unsigned integer (the only number form metrics use).
    Num(u128),
    /// A string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (serialization sorts keys; parsing
    /// preserves whatever order the document had).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a number that fits.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `u128`, if it is a number.
    #[must_use]
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document of the supported subset.
///
/// # Errors
///
/// A message naming the byte offset and what was expected.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            char::from(want),
            pos,
            bytes.get(*pos).map(|&b| char::from(b)),
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_num(bytes, pos),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b'-') => Err(format!(
            "negative number at byte {pos}: metrics JSON carries unsigned integers only"
        )),
        other => Err(format!(
            "expected a value at byte {pos} (found {:?})",
            other.map(|&b| char::from(b))
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit:?} at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(format!(
            "non-integer number at byte {start}: metrics JSON carries integers only"
        ));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .expect("digits are ASCII")
        .parse::<u128>()
        .map(Value::Num)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escape = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("\\u{code:04x} is not a scalar value"))?,
                        );
                    }
                    other => {
                        return Err(format!("unsupported escape \\{}", char::from(*other)));
                    }
                }
            }
            Some(_) => {
                // Consume one (possibly multi-byte) UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("nonempty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {pos} (found {:?})",
                    other.map(|&b| char::from(b))
                ));
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {pos} (found {:?})",
                    other.map(|&b| char::from(b))
                ));
            }
        }
    }
}

/// Checks a parsed document's `"schema"` tag against the expected value —
/// the shared guard every canonical-document parser (`metrics.json`,
/// `coverage.json`) runs before reading any field.
///
/// # Errors
///
/// A message naming the found tag (or its absence) when it is not `want`.
pub fn expect_schema(doc: &Value, want: &str) -> Result<(), String> {
    match doc.get("schema") {
        Some(Value::Str(s)) if s == want => Ok(()),
        other => Err(format!("unsupported schema (want {want:?}): {other:?}")),
    }
}

/// Parsed command line of a canonical-document merge CLI (`metrics_merge`,
/// `coverage_merge`): input paths, the `--out` destination, and any
/// tool-specific value flags. The read/parse/fold/emit plumbing those
/// tools used to duplicate lives here once.
#[derive(Debug, Default, Clone)]
pub struct MergeCli {
    /// Input document paths, in command-line order.
    pub inputs: Vec<String>,
    /// `--out PATH` destination; `None` writes the merged document to
    /// stdout.
    pub out: Option<String>,
    /// Tool-specific `--flag value` pairs (the flags listed in
    /// [`MergeCli::parse`]'s `value_flags`), in command-line order.
    pub extra: Vec<(String, String)>,
}

impl MergeCli {
    /// Parses `<input>... [--out PATH]` plus the tool's own `value_flags`
    /// (each expecting one value). Unknown `--flags` and a missing value
    /// are errors; callers print the message with their usage line and
    /// exit 2.
    ///
    /// # Errors
    ///
    /// A message naming the offending argument.
    pub fn parse(
        args: impl Iterator<Item = String>,
        value_flags: &[&str],
    ) -> Result<MergeCli, String> {
        let mut cli = MergeCli::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match arg.as_str() {
                "--out" => cli.out = Some(value("--out")?),
                flag if value_flags.contains(&flag) => {
                    let v = value(flag)?;
                    cli.extra.push((flag.to_owned(), v));
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown argument {other}"));
                }
                path => cli.inputs.push(path.to_owned()),
            }
        }
        Ok(cli)
    }

    /// The last value given for a tool-specific flag, if any.
    #[must_use]
    pub fn extra_value(&self, flag: &str) -> Option<&str> {
        self.extra
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    /// Reads every input, parses it with `parse`, and folds the documents
    /// with `merge` (first document is the accumulator). Errors carry the
    /// offending path.
    ///
    /// # Errors
    ///
    /// When there are no inputs, a file cannot be read, or `parse`
    /// rejects a document.
    pub fn fold<D>(
        &self,
        mut parse: impl FnMut(&str) -> Result<D, String>,
        mut merge: impl FnMut(&mut D, D),
    ) -> Result<D, String> {
        let mut merged: Option<D> = None;
        for path in &self.inputs {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let doc = parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
            match &mut merged {
                None => merged = Some(doc),
                Some(into) => merge(into, doc),
            }
        }
        merged.ok_or_else(|| "no input documents".to_owned())
    }

    /// Writes the merged document to `--out` (reporting the destination on
    /// stderr) or prints it to stdout.
    ///
    /// # Errors
    ///
    /// When the `--out` file cannot be written.
    pub fn emit(&self, doc: &str) -> Result<(), String> {
        match &self.out {
            Some(path) => {
                std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("merged {} document(s) into {path}", self.inputs.len());
            }
            None => print!("{doc}"),
        }
        Ok(())
    }
}

/// Appends `text` as a JSON string literal (with the escapes the parser
/// understands).
pub fn write_str(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_metrics_shapes() {
        let doc = r#"{"seeds": 12, "hist": {"buckets": [[3, 2], [17, 1]], "max": 900},
                      "labels": ["a", "b\n"], "flag": true, "none": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("seeds").and_then(Value::as_u64), Some(12));
        let hist = v.get("hist").unwrap();
        let buckets = hist.get("buckets").and_then(Value::as_arr).unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].as_arr().unwrap()[0].as_u64(), Some(3));
        assert_eq!(
            v.get("labels").and_then(Value::as_arr).unwrap()[1],
            Value::Str("b\n".into())
        );
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn rejects_what_metrics_never_emit() {
        assert!(parse("-3").unwrap_err().contains("unsigned"));
        assert!(parse("1.5").unwrap_err().contains("integers only"));
        assert!(parse("{\"a\": 1} junk").unwrap_err().contains("trailing"));
        assert!(parse("{\"a\"").is_err());
        assert!(parse("[1, ]").is_err());
    }

    #[test]
    fn u128_sums_survive() {
        let big = u128::from(u64::MAX) * 7;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u128(), Some(big));
    }

    #[test]
    fn expect_schema_guards_documents() {
        let doc = parse(r#"{"schema": "caa-metrics/v1", "seeds": 1}"#).unwrap();
        assert!(expect_schema(&doc, "caa-metrics/v1").is_ok());
        let err = expect_schema(&doc, "caa-coverage/v1").unwrap_err();
        assert!(err.contains("caa-coverage/v1"), "{err}");
        assert!(expect_schema(&parse("{}").unwrap(), "x").is_err());
    }

    #[test]
    fn merge_cli_parses_folds_and_reports_errors() {
        let cli = MergeCli::parse(
            ["a.json", "--out", "m.json", "--triage", "t.md", "b.json"]
                .iter()
                .map(|s| (*s).to_owned()),
            &["--triage"],
        )
        .unwrap();
        assert_eq!(cli.inputs, vec!["a.json", "b.json"]);
        assert_eq!(cli.out.as_deref(), Some("m.json"));
        assert_eq!(cli.extra_value("--triage"), Some("t.md"));
        assert!(MergeCli::parse(["--bogus".to_owned()].into_iter(), &[]).is_err());
        assert!(MergeCli::parse(["--out".to_owned()].into_iter(), &[]).is_err());

        // fold: reads real files, parses, folds; errors carry the path.
        let dir = std::env::temp_dir().join(format!("caa-merge-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (pa, pb) = (dir.join("a.json"), dir.join("b.json"));
        std::fs::write(&pa, "3").unwrap();
        std::fs::write(&pb, "4").unwrap();
        let files = MergeCli {
            inputs: vec![
                pa.to_string_lossy().into_owned(),
                pb.to_string_lossy().into_owned(),
            ],
            ..MergeCli::default()
        };
        let sum = files
            .fold(
                |text| parse(text)?.as_u64().ok_or_else(|| "not a number".into()),
                |a, b| *a += b,
            )
            .unwrap();
        assert_eq!(sum, 7);
        let missing = MergeCli {
            inputs: vec![dir.join("nope.json").to_string_lossy().into_owned()],
            ..MergeCli::default()
        };
        let err = missing.fold(|_| Ok(0u64), |_, _| {}).unwrap_err();
        assert!(err.contains("nope.json"), "{err}");
        assert!(MergeCli::default()
            .fold(|_| Ok(0u64), |_, _| {})
            .unwrap_err()
            .contains("no input"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_str_escapes_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back, Value::Str("a\"b\\c\nd\u{1}".into()));
    }
}
