//! A dependency-free JSON subset: the interchange layer under
//! `metrics.json`.
//!
//! The build environment vendors no serde, so this module hand-rolls the
//! little JSON the metrics pipeline needs: objects, arrays, strings,
//! **unsigned integers only** (every metric is a count or a nanosecond
//! value; floats would reintroduce platform-dependent formatting and
//! break the byte-identity guarantee shard merging relies on), plus
//! `true`/`false`/`null` for forward compatibility. Parsing is strict —
//! anything outside the subset is a descriptive `Err`, not a silent
//! coercion.

use std::fmt::Write as _;

/// A parsed JSON value (unsigned-integer subset — see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An unsigned integer (the only number form metrics use).
    Num(u128),
    /// A string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (serialization sorts keys; parsing
    /// preserves whatever order the document had).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a number that fits.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `u128`, if it is a number.
    #[must_use]
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document of the supported subset.
///
/// # Errors
///
/// A message naming the byte offset and what was expected.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            char::from(want),
            pos,
            bytes.get(*pos).map(|&b| char::from(b)),
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_num(bytes, pos),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b'-') => Err(format!(
            "negative number at byte {pos}: metrics JSON carries unsigned integers only"
        )),
        other => Err(format!(
            "expected a value at byte {pos} (found {:?})",
            other.map(|&b| char::from(b))
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit:?} at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(format!(
            "non-integer number at byte {start}: metrics JSON carries integers only"
        ));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .expect("digits are ASCII")
        .parse::<u128>()
        .map(Value::Num)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escape = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("\\u{code:04x} is not a scalar value"))?,
                        );
                    }
                    other => {
                        return Err(format!("unsupported escape \\{}", char::from(*other)));
                    }
                }
            }
            Some(_) => {
                // Consume one (possibly multi-byte) UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("nonempty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {pos} (found {:?})",
                    other.map(|&b| char::from(b))
                ));
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {pos} (found {:?})",
                    other.map(|&b| char::from(b))
                ));
            }
        }
    }
}

/// Appends `text` as a JSON string literal (with the escapes the parser
/// understands).
pub fn write_str(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_metrics_shapes() {
        let doc = r#"{"seeds": 12, "hist": {"buckets": [[3, 2], [17, 1]], "max": 900},
                      "labels": ["a", "b\n"], "flag": true, "none": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("seeds").and_then(Value::as_u64), Some(12));
        let hist = v.get("hist").unwrap();
        let buckets = hist.get("buckets").and_then(Value::as_arr).unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].as_arr().unwrap()[0].as_u64(), Some(3));
        assert_eq!(
            v.get("labels").and_then(Value::as_arr).unwrap()[1],
            Value::Str("b\n".into())
        );
        assert_eq!(v.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn rejects_what_metrics_never_emit() {
        assert!(parse("-3").unwrap_err().contains("unsigned"));
        assert!(parse("1.5").unwrap_err().contains("integers only"));
        assert!(parse("{\"a\": 1} junk").unwrap_err().contains("trailing"));
        assert!(parse("{\"a\"").is_err());
        assert!(parse("[1, ]").is_err());
    }

    #[test]
    fn u128_sums_survive() {
        let big = u128::from(u64::MAX) * 7;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u128(), Some(big));
    }

    #[test]
    fn write_str_escapes_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back, Value::Str("a\"b\\c\nd\u{1}".into()));
    }
}
