//! Property-based protocol agreement: for random group sizes, raiser sets,
//! raise times and latencies, every participant handles the *same*
//! resolving exception, that exception covers every raised one, and the
//! §3.3.3 message count holds whenever the raises were truly concurrent.

use std::sync::{Arc, Mutex};

use caa_core::exception::{Exception, ExceptionId};
use caa_core::outcome::HandlerVerdict;
use caa_core::time::secs;
use caa_exgraph::generate::conjunction_lattice;
use caa_runtime::{ActionDef, System};
use caa_simnet::LatencyModel;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    n: u32,
    /// (thread, raise-delay-seconds); empty slots never raise.
    raisers: Vec<(u32, f64)>,
    t_mmax: f64,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2u32..=6, 0.05f64..1.5, any::<u64>()).prop_flat_map(|(n, t_mmax, seed)| {
        prop::collection::btree_map(0..n, 0.0f64..2.0, 1..=n as usize).prop_map(move |raisers| {
            Scenario {
                n,
                raisers: raisers.into_iter().collect(),
                t_mmax,
                seed,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn all_participants_handle_one_covering_exception(sc in scenario()) {
        let prims: Vec<ExceptionId> =
            (0..sc.n).map(|i| ExceptionId::new(format!("e{i}"))).collect();
        let graph = conjunction_lattice(&prims, prims.len()).unwrap();
        let graph_for_check = graph.clone();

        let handled: Arc<Mutex<Vec<ExceptionId>>> = Arc::new(Mutex::new(Vec::new()));
        let mut builder = ActionDef::builder("prop");
        for i in 0..sc.n {
            builder = builder.role(format!("r{i}"), i);
        }
        builder = builder.graph(graph);
        for i in 0..sc.n {
            let log = Arc::clone(&handled);
            builder = builder.fallback_handler(format!("r{i}"), move |hc| {
                log.lock().unwrap().push(hc.handling().unwrap().clone());
                Ok(HandlerVerdict::Recovered)
            });
        }
        let action = builder.build().unwrap();

        let mut sys = System::builder()
            .latency(LatencyModel::UniformUpTo(secs(sc.t_mmax)))
            .seed(sc.seed)
            .build();
        for i in 0..sc.n {
            let a = action.clone();
            let delay = sc
                .raisers
                .iter()
                .find(|(t, _)| *t == i)
                .map(|(_, d)| *d);
            sys.spawn(format!("T{i}"), move |ctx| {
                ctx.enter(&a, &format!("r{i}"), |rc| {
                    match delay {
                        Some(d) => {
                            rc.work(secs(d))?;
                            rc.raise(Exception::new(format!("e{i}")))?;
                            Ok(())
                        }
                        None => rc.work(secs(30.0)),
                    }
                })
                .map(|_| ())
            });
        }
        let report = sys.run();
        prop_assert!(report.is_ok(), "{:?}", report.results);

        let handled = handled.lock().unwrap().clone();
        // Agreement: every participant handled exactly once, all the same.
        prop_assert_eq!(handled.len(), sc.n as usize);
        let first = &handled[0];
        prop_assert!(handled.iter().all(|h| h == first), "disagreement: {handled:?}");

        // Soundness: the resolving exception covers at least the earliest
        // raised exception (later raisers may have been suspended before
        // their raise); every exception that *was* part of the recovery is
        // covered by construction, so check cover of the resolved set via
        // the Exception messages actually sent.
        let earliest = sc
            .raisers
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(t, _)| ExceptionId::new(format!("e{t}")))
            .unwrap();
        prop_assert!(
            graph_for_check.covers(first, &earliest),
            "{first} does not cover the earliest raised {earliest}"
        );

        // Liveness bound sanity: exactly one resolution per recovery.
        prop_assert_eq!(report.runtime_stats.resolutions_invoked, 1);

        // §3.3.3: the resolution-message total is (N+1)(N-1) whenever the
        // protocol ran (independent of the raiser count).
        let n = u64::from(sc.n);
        let total = report.net_stats.sent("Exception")
            + report.net_stats.sent("Suspended")
            + report.net_stats.sent("Commit");
        prop_assert_eq!(total, (n + 1) * (n - 1), "message-count theorem violated");
    }
}
