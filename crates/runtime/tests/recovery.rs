//! End-to-end tests of the resolution algorithm (§3.3.2) inside the full
//! runtime: raising, informing, suspending, resolving and handling.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use caa_core::exception::{Exception, ExceptionId};
use caa_core::outcome::{ActionOutcome, HandlerVerdict};
use caa_core::time::secs;
use caa_exgraph::ExceptionGraphBuilder;
use caa_runtime::{ActionDef, System};
use caa_simnet::LatencyModel;

fn two_exc_graph() -> caa_exgraph::ExceptionGraph {
    ExceptionGraphBuilder::new()
        .resolves("e1∩e2", ["e1", "e2"])
        .build()
        .unwrap()
}

#[test]
fn solo_action_completes() {
    let mut sys = System::builder().build();
    let action = ActionDef::builder("solo")
        .role("only", 0u32)
        .build()
        .unwrap();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&action, "only", |rc| rc.work(secs(1.0)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    assert!(report.elapsed_secs() >= 1.0);
    assert_eq!(report.runtime_stats.recoveries, 0);
}

#[test]
fn solo_action_raise_resolves_to_itself() {
    let handled: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let log = Arc::clone(&handled);
    let graph = ExceptionGraphBuilder::new()
        .primitive("oops")
        .build()
        .unwrap();
    let action = ActionDef::builder("solo")
        .role("only", 0u32)
        .graph(graph)
        .handler("only", "oops", move |ctx| {
            log.lock().unwrap().push(format!(
                "handling {} in {}",
                ctx.handling().unwrap(),
                ctx.action_name().unwrap()
            ));
            Ok(HandlerVerdict::Recovered)
        })
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&action, "only", |rc| rc.raise(Exception::new("oops")))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.run().expect_ok();
    assert_eq!(
        handled.lock().unwrap().as_slice(),
        ["handling oops in solo"]
    );
}

#[test]
fn peer_is_informed_and_both_handle_same_exception() {
    let handled = Arc::new(Mutex::new(Vec::new()));
    let (l0, l1) = (Arc::clone(&handled), Arc::clone(&handled));
    let graph = ExceptionGraphBuilder::new()
        .primitive("e1")
        .build()
        .unwrap();
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph)
        .handler("a", "e1", move |_| {
            l0.lock().unwrap().push("a");
            Ok(HandlerVerdict::Recovered)
        })
        .handler("b", "e1", move |_| {
            l1.lock().unwrap().push("b");
            Ok(HandlerVerdict::Recovered)
        })
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "a", |rc| {
            rc.work(secs(0.1))?;
            rc.raise(Exception::new("e1"))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        // The body would run for 100 virtual seconds; the peer's exception
        // interrupts it at the next poll point.
        let outcome = ctx.enter(&action, "b", |rc| {
            for _ in 0..1000 {
                rc.work(secs(0.1))?;
            }
            Ok(())
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    let mut log = handled.lock().unwrap().clone();
    log.sort_unstable();
    assert_eq!(log, ["a", "b"], "both roles must run their handler");
    assert!(
        report.elapsed_secs() < 50.0,
        "T1 must have been interrupted early, elapsed {}",
        report.elapsed_secs()
    );
    assert_eq!(report.runtime_stats.recoveries, 2);
    assert_eq!(report.runtime_stats.resolutions_invoked, 1);
}

#[test]
fn concurrent_exceptions_resolve_to_covering_exception() {
    let handled = Arc::new(Mutex::new(Vec::new()));
    let (l0, l1) = (Arc::clone(&handled), Arc::clone(&handled));
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(two_exc_graph())
        .handler("a", "e1∩e2", move |_| {
            l0.lock().unwrap().push("a:e1∩e2");
            Ok(HandlerVerdict::Recovered)
        })
        .handler("b", "e1∩e2", move |_| {
            l1.lock().unwrap().push("b:e1∩e2");
            Ok(HandlerVerdict::Recovered)
        })
        .build()
        .unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.2)))
        .build();
    let a = action.clone();
    // Both raise at (nearly) the same time: neither can see the other's
    // exception before raising its own.
    sys.spawn("T0", move |ctx| {
        ctx.enter(&a, "a", |rc| {
            rc.work(secs(0.1))?;
            rc.raise(Exception::new("e1"))
        })
        .map(|_| ())
    });
    sys.spawn("T1", move |ctx| {
        ctx.enter(&action, "b", |rc| {
            rc.work(secs(0.1))?;
            rc.raise(Exception::new("e2"))
        })
        .map(|_| ())
    });
    let report = sys.run();
    report.expect_ok();
    let mut log = handled.lock().unwrap().clone();
    log.sort_unstable();
    assert_eq!(
        log,
        ["a:e1∩e2", "b:e1∩e2"],
        "both must handle the resolving exception, not their own"
    );
    assert_eq!(report.runtime_stats.resolutions_invoked, 1);
}

#[test]
fn three_threads_mixed_raise_and_suspend() {
    let handled = Arc::new(AtomicU32::new(0));
    let graph = ExceptionGraphBuilder::new()
        .resolves("both", ["x", "y"])
        .build()
        .unwrap();
    let mut builder = ActionDef::builder("trio")
        .role("r0", 0u32)
        .role("r1", 1u32)
        .role("r2", 2u32)
        .graph(graph);
    for role in ["r0", "r1", "r2"] {
        let h = Arc::clone(&handled);
        builder = builder.handler(role, "both", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
            Ok(HandlerVerdict::Recovered)
        });
    }
    let action = builder.build().unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(0.5)))
        .seed(11)
        .build();
    let (a0, a1, a2) = (action.clone(), action.clone(), action);
    sys.spawn("T0", move |ctx| {
        ctx.enter(&a0, "r0", |rc| {
            rc.work(secs(0.2))?;
            rc.raise(Exception::new("x"))
        })
        .map(|_| ())
    });
    sys.spawn("T1", move |ctx| {
        ctx.enter(&a1, "r1", |rc| {
            rc.work(secs(30.0)) // bystander: suspended by the others
        })
        .map(|_| ())
    });
    sys.spawn("T2", move |ctx| {
        ctx.enter(&a2, "r2", |rc| {
            rc.work(secs(0.2))?;
            rc.raise(Exception::new("y"))
        })
        .map(|_| ())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(handled.load(Ordering::SeqCst), 3);
    assert_eq!(report.runtime_stats.resolutions_invoked, 1);
    assert_eq!(report.runtime_stats.recoveries, 3);
}

#[test]
fn resolution_delay_is_charged_once() {
    // Treso = 5s; one recovery must cost one Treso on the critical path.
    let graph = ExceptionGraphBuilder::new().primitive("e").build().unwrap();
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph)
        .handler("a", "e", |_| Ok(HandlerVerdict::Recovered))
        .handler("b", "e", |_| Ok(HandlerVerdict::Recovered))
        .build()
        .unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.01)))
        .resolution_delay(secs(5.0))
        .build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        ctx.enter(&a, "a", |rc| rc.raise(Exception::new("e")))
            .map(|_| ())
    });
    sys.spawn("T1", move |ctx| {
        ctx.enter(&action, "b", |rc| rc.work(secs(60.0)))
            .map(|_| ())
    });
    let report = sys.run();
    report.expect_ok();
    assert!(
        report.elapsed_secs() >= 5.0 && report.elapsed_secs() < 11.0,
        "one Treso on the critical path, got {}",
        report.elapsed_secs()
    );
}

#[test]
fn unhandled_exception_is_signalled_to_the_caller() {
    // No handler for "e": the default policy propagates it (§2.1), so the
    // top-level outcome is Signalled(e).
    let graph = ExceptionGraphBuilder::new().primitive("e").build().unwrap();
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph)
        .interface(["e"])
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "a", |rc| rc.raise(Exception::new("e")))?;
        assert_eq!(outcome, ActionOutcome::Signalled(ExceptionId::new("e")));
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "b", |rc| rc.work(secs(10.0)))?;
        assert_eq!(outcome, ActionOutcome::Signalled(ExceptionId::new("e")));
        Ok(())
    });
    sys.run().expect_ok();
}

#[test]
fn undeclared_exception_resolves_to_universal_and_undoes() {
    // "other undefined exceptions will not be resolved and simply lead to
    // the raising of the universal exception" (§4); with no universal
    // handler the default verdict is Undo, so the action reports µ.
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "a", |rc| rc.raise(Exception::new("never_declared")))?;
        assert_eq!(outcome, ActionOutcome::Undone);
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "b", |rc| rc.work(secs(10.0)))?;
        assert_eq!(outcome, ActionOutcome::Undone);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(report.runtime_stats.undo_rounds, 2);
}

#[test]
fn exception_during_exit_vote_window_still_recovers() {
    // T0 finishes its body immediately and votes to leave; T1 raises while
    // T0 waits. T0 must join the recovery and handle the exception.
    let handled = Arc::new(AtomicU32::new(0));
    let (h0, h1) = (Arc::clone(&handled), Arc::clone(&handled));
    let graph = ExceptionGraphBuilder::new()
        .primitive("late")
        .build()
        .unwrap();
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph)
        .handler("a", "late", move |_| {
            h0.fetch_add(1, Ordering::SeqCst);
            Ok(HandlerVerdict::Recovered)
        })
        .handler("b", "late", move |_| {
            h1.fetch_add(1, Ordering::SeqCst);
            Ok(HandlerVerdict::Recovered)
        })
        .build()
        .unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.1)))
        .build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        // Empty body: votes for exit immediately.
        let outcome = ctx.enter(&a, "a", |_| Ok(()))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "b", |rc| {
            rc.work(secs(2.0))?;
            rc.raise(Exception::new("late"))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(handled.load(Ordering::SeqCst), 2);
}

#[test]
fn repeated_action_instances_are_isolated() {
    // The same definition entered in a loop: each iteration is a fresh
    // instance; recovery in one must not leak into the next.
    let graph = ExceptionGraphBuilder::new()
        .primitive("glitch")
        .build()
        .unwrap();
    let action = ActionDef::builder("loop")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph)
        .handler("a", "glitch", |_| Ok(HandlerVerdict::Recovered))
        .handler("b", "glitch", |_| Ok(HandlerVerdict::Recovered))
        .build()
        .unwrap();
    let iterations = 5u32;
    let mut sys = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(0.2)))
        .seed(3)
        .build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        for i in 0..iterations {
            let outcome = ctx.enter(&a, "a", |rc| {
                rc.work(secs(0.1))?;
                if i % 2 == 0 {
                    rc.raise(Exception::new("glitch"))?;
                }
                Ok(())
            })?;
            assert_eq!(outcome, ActionOutcome::Success);
        }
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        for _ in 0..iterations {
            let outcome = ctx.enter(&action, "b", |rc| rc.work(secs(0.3)))?;
            assert_eq!(outcome, ActionOutcome::Success);
        }
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    // Three raising iterations, two participants each.
    assert_eq!(report.runtime_stats.recoveries, 6);
    assert_eq!(report.runtime_stats.resolutions_invoked, 3);
}

#[test]
fn cooperation_via_role_messages() {
    let action = ActionDef::builder("converse")
        .role("ping", 0u32)
        .role("pong", 1u32)
        .build()
        .unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.05)))
        .build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "ping", |rc| {
            rc.send_to_role("pong", "data", 21u64)?;
            let reply = rc.recv_app()?;
            assert_eq!(reply.tag, "result");
            assert_eq!(reply.payload.downcast::<u64>().unwrap(), 42);
            Ok(())
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        ctx.enter(&action, "pong", |rc| {
            let msg = rc.recv_app()?;
            let n = msg.payload.downcast::<u64>().unwrap();
            rc.send_to_role("ping", "result", n * 2)?;
            Ok(())
        })
        .map(|_| ())
    });
    sys.run().expect_ok();
}

#[test]
fn raise_outside_action_is_fatal() {
    let mut sys = System::builder().build();
    sys.spawn("T0", move |ctx| ctx.raise(Exception::new("nowhere")));
    let report = sys.run();
    assert!(!report.is_ok());
    let err = report.results[0].1.as_ref().unwrap_err();
    assert!(err.to_string().contains("requires an active CA action"));
}

#[test]
fn wrong_thread_for_role_is_fatal() {
    let action = ActionDef::builder("x").role("r", 5u32).build().unwrap();
    let mut sys = System::builder().build();
    sys.spawn("T0", move |ctx| {
        ctx.enter(&action, "r", |_| Ok(())).map(|_| ())
    });
    let report = sys.run();
    assert!(!report.is_ok());
}
