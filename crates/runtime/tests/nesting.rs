//! Nested CA actions: exception signalling over nesting levels (§3.1,
//! Figure 2) and the abortion cascade (§3.3.1, Figure 4).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use caa_core::exception::{Exception, ExceptionId};
use caa_core::outcome::{ActionOutcome, HandlerVerdict};
use caa_core::time::secs;
use caa_exgraph::ExceptionGraphBuilder;
use caa_runtime::{ActionDef, System};
use caa_simnet::LatencyModel;

/// Figure 2's shape: T1..T4 in the enclosing action; T2, T3 enter a nested
/// action; an exception raised in the nested action is handled there, or
/// signalled up and handled by all four.
#[test]
fn signalled_exception_is_raised_in_enclosing_action() {
    let enclosing_handled = Arc::new(AtomicU32::new(0));
    let graph_outer = ExceptionGraphBuilder::new()
        .primitive("NESTED_FAIL")
        .build()
        .unwrap();
    let graph_inner = ExceptionGraphBuilder::new()
        .primitive("inner_e")
        .build()
        .unwrap();

    let mut outer_builder = ActionDef::builder("outer")
        .role("t1", 0u32)
        .role("t2", 1u32)
        .role("t3", 2u32)
        .role("t4", 3u32)
        .graph(graph_outer)
        .interface(["OUTER_GAVE_UP"]);
    for role in ["t1", "t2", "t3", "t4"] {
        let h = Arc::clone(&enclosing_handled);
        outer_builder = outer_builder.handler(role, "NESTED_FAIL", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
            Ok(HandlerVerdict::Recovered)
        });
    }
    let outer = outer_builder.build().unwrap();

    // The nested action's handler cannot recover: it signals NESTED_FAIL.
    let nested = ActionDef::builder("nested")
        .role("n2", 1u32)
        .role("n3", 2u32)
        .graph(graph_inner)
        .interface(["NESTED_FAIL"])
        .handler("n2", "inner_e", |_| {
            Ok(HandlerVerdict::Signal(ExceptionId::new("NESTED_FAIL")))
        })
        .handler("n3", "inner_e", |_| {
            Ok(HandlerVerdict::Signal(ExceptionId::new("NESTED_FAIL")))
        })
        .build()
        .unwrap();

    let mut sys = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(0.1)))
        .seed(5)
        .build();
    let o1 = outer.clone();
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&o1, "t1", |rc| rc.work(secs(20.0)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    for (name, orole, nrole) in [("T2", "t2", "n2"), ("T3", "t3", "n3")] {
        let o = outer.clone();
        let n = nested.clone();
        let orole = orole.to_owned();
        let nrole = nrole.to_owned();
        sys.spawn(name, move |ctx| {
            let outcome = ctx.enter(&o, &orole, |rc| {
                rc.work(secs(0.5))?;
                // Entering the nested action; its failure signals
                // NESTED_FAIL, which auto-raises here — so control never
                // reaches the line after `enter` on the raising path.
                let nested_outcome = rc.enter(&n, &nrole, |nc| {
                    nc.work(secs(0.2))?;
                    if nrole == "n2" {
                        nc.raise(Exception::new("inner_e"))?;
                    } else {
                        nc.work(secs(5.0))?;
                    }
                    Ok(())
                })?;
                // Unreachable on the failure path: the signalled exception
                // is raised in this (enclosing) action instead.
                assert_eq!(nested_outcome, ActionOutcome::Success);
                Ok(())
            })?;
            assert_eq!(outcome, ActionOutcome::Success);
            Ok(())
        });
    }
    let o4 = outer;
    sys.spawn("T4", move |ctx| {
        let outcome = ctx.enter(&o4, "t4", |rc| rc.work(secs(20.0)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(
        enclosing_handled.load(Ordering::SeqCst),
        4,
        "all four enclosing roles handle the signalled exception"
    );
}

/// Figure 4's scenario: an exception in the containing action aborts the
/// nested action; the abortion handler raises E3; the resolving exception
/// covers both E1 and E3; all four threads handle it.
#[test]
fn enclosing_exception_aborts_nested_action_with_abort_exception() {
    let handled = Arc::new(Mutex::new(Vec::new()));
    let aborted = Arc::new(AtomicU32::new(0));

    let graph_outer = ExceptionGraphBuilder::new()
        .resolves("E1∩E3", ["E1", "E3"])
        .build()
        .unwrap();

    let mut outer_builder = ActionDef::builder("outer")
        .role("t1", 0u32)
        .role("t2", 1u32)
        .role("t3", 2u32)
        .role("t4", 3u32)
        .graph(graph_outer);
    for role in ["t1", "t2", "t3", "t4"] {
        let h = Arc::clone(&handled);
        let role_name = role.to_owned();
        outer_builder = outer_builder.handler(role, "E1∩E3", move |_| {
            h.lock().unwrap().push(role_name.clone());
            Ok(HandlerVerdict::Recovered)
        });
    }
    let outer = outer_builder.build().unwrap();

    let ab2 = Arc::clone(&aborted);
    let ab3 = Arc::clone(&aborted);
    let nested = ActionDef::builder("nested")
        .role("n2", 1u32)
        .role("n3", 2u32)
        // T2's abortion handler raises E3 in the containing action.
        .abort_handler("n2", move |_| {
            ab2.fetch_add(1, Ordering::SeqCst);
            Ok(Some(Exception::new("E3")))
        })
        .abort_handler("n3", move |_| {
            ab3.fetch_add(1, Ordering::SeqCst);
            Ok(None)
        })
        .build()
        .unwrap();

    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.1)))
        .build();

    // T1 raises E1 in the containing action while T2 and T3 are deep in the
    // nested action.
    let o1 = outer.clone();
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&o1, "t1", |rc| {
            rc.work(secs(1.0))?;
            rc.raise(Exception::new("E1"))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    for (name, orole, nrole) in [("T2", "t2", "n2"), ("T3", "t3", "n3")] {
        let o = outer.clone();
        let n = nested.clone();
        let orole = orole.to_owned();
        let nrole = nrole.to_owned();
        sys.spawn(name, move |ctx| {
            let outcome = ctx.enter(&o, &orole, |rc| {
                rc.work(secs(0.2))?;
                rc.enter(&n, &nrole, |nc| nc.work(secs(60.0)))?;
                Ok(())
            })?;
            assert_eq!(outcome, ActionOutcome::Success);
            Ok(())
        });
    }
    let o4 = outer;
    sys.spawn("T4", move |ctx| {
        let outcome = ctx.enter(&o4, "t4", |rc| rc.work(secs(60.0)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });

    let report = sys.run();
    report.expect_ok();
    assert_eq!(aborted.load(Ordering::SeqCst), 2, "both nested roles abort");
    let mut log = handled.lock().unwrap().clone();
    log.sort_unstable();
    assert_eq!(
        log,
        ["t1", "t2", "t3", "t4"],
        "the resolving exception covering E1 and E3 reaches every thread"
    );
    assert_eq!(report.runtime_stats.aborts, 2);
    assert!(
        report.elapsed_secs() < 30.0,
        "the nested 60 s bodies must have been aborted, elapsed {}",
        report.elapsed_secs()
    );
}

/// Two nesting levels: an exception at the top aborts both nested levels;
/// abortion handlers run innermost-first and only the outermost nested
/// action's Eab is raised in the containing action (§3.3.1).
#[test]
fn abort_cascade_runs_innermost_first_and_keeps_only_top_eab() {
    let order = Arc::new(Mutex::new(Vec::new()));
    let raised_in_outer = Arc::new(Mutex::new(Vec::new()));

    let graph_outer = ExceptionGraphBuilder::new()
        .resolves("TOP∩MID_AB", ["TOP", "MID_AB"])
        .exception("INNER_AB")
        .build()
        .unwrap();
    let mut outer_builder = ActionDef::builder("outer")
        .role("t0", 0u32)
        .role("t1", 1u32)
        .graph(graph_outer);
    for role in ["t0", "t1"] {
        let r = Arc::clone(&raised_in_outer);
        outer_builder = outer_builder.fallback_handler(role, move |ctx| {
            r.lock()
                .unwrap()
                .push(ctx.handling().unwrap().name().to_owned());
            Ok(HandlerVerdict::Recovered)
        });
    }
    let outer = outer_builder.build().unwrap();

    let o_mid = Arc::clone(&order);
    let mid = ActionDef::builder("mid")
        .role("m1", 1u32)
        .abort_handler("m1", move |_| {
            o_mid.lock().unwrap().push("mid");
            Ok(Some(Exception::new("MID_AB")))
        })
        .build()
        .unwrap();
    let o_inner = Arc::clone(&order);
    let inner = ActionDef::builder("inner")
        .role("i1", 1u32)
        .abort_handler("i1", move |_| {
            o_inner.lock().unwrap().push("inner");
            // This Eab must be superseded by the mid level's (§3.3.1:
            // "only the exception signalled by abortion handlers of action
            // Ai+1 is allowed to be raised in the containing action Ai").
            Ok(Some(Exception::new("INNER_AB")))
        })
        .build()
        .unwrap();

    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.1)))
        .build();
    let o0 = outer.clone();
    sys.spawn("T0", move |ctx| {
        ctx.enter(&o0, "t0", |rc| {
            rc.work(secs(1.0))?;
            rc.raise(Exception::new("TOP"))
        })
        .map(|_| ())
    });
    sys.spawn("T1", move |ctx| {
        ctx.enter(&outer, "t1", |rc| {
            rc.enter(&mid, "m1", |mc| {
                mc.enter(&inner, "i1", |ic| ic.work(secs(60.0)))?;
                Ok(())
            })?;
            Ok(())
        })
        .map(|_| ())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(
        order.lock().unwrap().as_slice(),
        ["inner", "mid"],
        "abortion handlers run innermost-first"
    );
    let raised = raised_in_outer.lock().unwrap().clone();
    assert_eq!(
        raised,
        ["TOP∩MID_AB", "TOP∩MID_AB"],
        "resolution must cover TOP and MID_AB (not INNER_AB): got {raised:?}"
    );
}

/// A nested action whose recovery is already in progress is still aborted
/// by an enclosing exception ("an exception in an enclosing action will
/// simply stop or abort any activity of its nested actions (including any
/// nested resolution in progress and execution of any handlers)").
#[test]
fn enclosing_exception_aborts_nested_recovery_in_progress() {
    let nested_handler_done = Arc::new(AtomicU32::new(0));
    let outer_handled = Arc::new(AtomicU32::new(0));

    let graph_outer = ExceptionGraphBuilder::new()
        .primitive("TOP")
        .build()
        .unwrap();
    let mut outer_builder = ActionDef::builder("outer")
        .role("t0", 0u32)
        .role("t1", 1u32)
        .role("t2", 2u32)
        .graph(graph_outer);
    for role in ["t0", "t1", "t2"] {
        let h = Arc::clone(&outer_handled);
        outer_builder = outer_builder.fallback_handler(role, move |_| {
            h.fetch_add(1, Ordering::SeqCst);
            Ok(HandlerVerdict::Recovered)
        });
    }
    let outer = outer_builder.build().unwrap();

    let graph_inner = ExceptionGraphBuilder::new()
        .primitive("inner_e")
        .build()
        .unwrap();
    let nh1 = Arc::clone(&nested_handler_done);
    let nh2 = Arc::clone(&nested_handler_done);
    let nested = ActionDef::builder("nested")
        .role("n1", 1u32)
        .role("n2", 2u32)
        .graph(graph_inner)
        // Nested handlers are slow: the enclosing exception lands while
        // they run and must abort them.
        .handler("n1", "inner_e", move |hc| {
            hc.work(secs(30.0))?;
            nh1.fetch_add(1, Ordering::SeqCst);
            Ok(HandlerVerdict::Recovered)
        })
        .handler("n2", "inner_e", move |hc| {
            hc.work(secs(30.0))?;
            nh2.fetch_add(1, Ordering::SeqCst);
            Ok(HandlerVerdict::Recovered)
        })
        .build()
        .unwrap();

    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.1)))
        .build();
    let o0 = outer.clone();
    sys.spawn("T0", move |ctx| {
        ctx.enter(&o0, "t0", |rc| {
            // Raise in the containing action while the nested recovery is
            // under way.
            rc.work(secs(2.0))?;
            rc.raise(Exception::new("TOP"))
        })
        .map(|_| ())
    });
    for (name, orole, nrole) in [("T1", "t1", "n1"), ("T2", "t2", "n2")] {
        let o = outer.clone();
        let n = nested.clone();
        let orole = orole.to_owned();
        let nrole = nrole.to_owned();
        sys.spawn(name, move |ctx| {
            ctx.enter(&o, &orole, |rc| {
                rc.enter(&n, &nrole, |nc| {
                    nc.work(secs(0.5))?;
                    if nrole == "n1" {
                        nc.raise(Exception::new("inner_e"))?;
                    }
                    nc.work(secs(60.0))
                })?;
                Ok(())
            })
            .map(|_| ())
        });
    }
    let report = sys.run();
    report.expect_ok();
    assert_eq!(outer_handled.load(Ordering::SeqCst), 3);
    assert_eq!(
        nested_handler_done.load(Ordering::SeqCst),
        0,
        "nested handlers must have been aborted mid-execution"
    );
    assert!(report.elapsed_secs() < 30.0);
}

/// A fully successful nested action: the enclosing action never notices.
#[test]
fn successful_nested_action_is_transparent() {
    let outer = ActionDef::builder("outer")
        .role("t0", 0u32)
        .role("t1", 1u32)
        .build()
        .unwrap();
    let nested = ActionDef::builder("nested")
        .role("n0", 0u32)
        .role("n1", 1u32)
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    for (name, orole, nrole) in [("T0", "t0", "n0"), ("T1", "t1", "n1")] {
        let o = outer.clone();
        let n = nested.clone();
        let orole = orole.to_owned();
        let nrole = nrole.to_owned();
        sys.spawn(name, move |ctx| {
            let outcome = ctx.enter(&o, &orole, |rc| {
                let inner_outcome = rc.enter(&n, &nrole, |nc| nc.work(secs(1.0)))?;
                assert_eq!(inner_outcome, ActionOutcome::Success);
                rc.work(secs(0.5))
            })?;
            assert_eq!(outcome, ActionOutcome::Success);
            Ok(())
        });
    }
    let report = sys.run();
    report.expect_ok();
    assert_eq!(report.runtime_stats.recoveries, 0);
    assert_eq!(report.runtime_stats.aborts, 0);
}

/// µ from a nested action is raised as an exception in the enclosing
/// action, whose handler can recover (e.g. by retrying differently).
#[test]
fn nested_undo_exception_is_handled_by_enclosing() {
    let outer_saw = Arc::new(Mutex::new(Vec::new()));
    let graph_outer = ExceptionGraphBuilder::new()
        .exception(ExceptionId::undo())
        .build()
        .unwrap();
    let mut outer_builder = ActionDef::builder("outer")
        .role("t0", 0u32)
        .role("t1", 1u32)
        .graph(graph_outer);
    for role in ["t0", "t1"] {
        let s = Arc::clone(&outer_saw);
        outer_builder = outer_builder.fallback_handler(role, move |ctx| {
            s.lock()
                .unwrap()
                .push(ctx.handling().unwrap().name().to_owned());
            Ok(HandlerVerdict::Recovered)
        });
    }
    let outer = outer_builder.build().unwrap();
    let graph_inner = ExceptionGraphBuilder::new()
        .primitive("broken")
        .build()
        .unwrap();
    let nested = ActionDef::builder("nested")
        .role("n0", 0u32)
        .role("n1", 1u32)
        .graph(graph_inner)
        .handler("n0", "broken", |_| Ok(HandlerVerdict::Undo))
        .handler("n1", "broken", |_| Ok(HandlerVerdict::Undo))
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    for (name, orole, nrole) in [("T0", "t0", "n0"), ("T1", "t1", "n1")] {
        let o = outer.clone();
        let n = nested.clone();
        let orole = orole.to_owned();
        let nrole = nrole.to_owned();
        sys.spawn(name, move |ctx| {
            let outcome = ctx.enter(&o, &orole, |rc| {
                rc.enter(&n, &nrole, |nc| {
                    nc.work(secs(0.1))?;
                    if nrole == "n0" {
                        nc.raise(Exception::new("broken"))?;
                    }
                    nc.work(secs(10.0))
                })?;
                Ok(())
            })?;
            assert_eq!(outcome, ActionOutcome::Success);
            Ok(())
        });
    }
    let report = sys.run();
    report.expect_ok();
    let saw = outer_saw.lock().unwrap().clone();
    assert_eq!(saw.len(), 2);
    assert!(
        saw.iter().all(|s| s == caa_core::exception::UNDO_NAME),
        "enclosing handlers must see µ: {saw:?}"
    );
}
