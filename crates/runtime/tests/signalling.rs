//! The exception-signalling algorithm (§3.4): φ/ε/µ/ƒ coordination, the
//! undo round, irreversible effects, and the lost/corrupted-message
//! extension.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use caa_core::exception::{Exception, ExceptionId};
use caa_core::ids::PartitionId;
use caa_core::outcome::{ActionOutcome, HandlerVerdict};
use caa_core::time::secs;
use caa_exgraph::ExceptionGraphBuilder;
use caa_runtime::objects::irreversible;
use caa_runtime::{ActionDef, SharedObject, System};
use caa_simnet::{FaultPlan, FaultSpec, LatencyModel};

fn graph_with(name: &str) -> caa_exgraph::ExceptionGraph {
    ExceptionGraphBuilder::new()
        .primitive(name)
        .build()
        .unwrap()
}

/// Case 1 of §3.4: no µ or ƒ — each thread signals its own exception; here
/// one signals ε and the other φ.
#[test]
fn mixed_epsilon_and_phi_signals() {
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph_with("e"))
        .interface(["EPS"])
        .handler("a", "e", |_| {
            Ok(HandlerVerdict::Signal(ExceptionId::new("EPS")))
        })
        .handler("b", "e", |_| Ok(HandlerVerdict::Recovered))
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "a", |rc| rc.raise(Exception::new("e")))?;
        assert_eq!(outcome, ActionOutcome::Signalled(ExceptionId::new("EPS")));
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "b", |rc| rc.work(secs(10.0)))?;
        // b recovered; from its side the action completed successfully.
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.run().expect_ok();
}

/// Case 2 of §3.4: one thread requests µ; all participants undo and signal
/// µ together. Objects roll back.
#[test]
fn undo_request_rolls_back_all_participants() {
    let obj_a = SharedObject::new("ledger_a", 100i64);
    let obj_b = SharedObject::new("ledger_b", 200i64);
    let action = ActionDef::builder("transfer")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph_with("insufficient"))
        .handler("a", "insufficient", |_| Ok(HandlerVerdict::Undo))
        .handler("b", "insufficient", |_| Ok(HandlerVerdict::Recovered))
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let (a, oa) = (action.clone(), obj_a.clone());
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "a", |rc| {
            rc.update(&oa, |v| *v -= 50)?;
            rc.raise(Exception::new("insufficient"))
        })?;
        assert_eq!(outcome, ActionOutcome::Undone);
        Ok(())
    });
    let ob = obj_b.clone();
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "b", |rc| {
            rc.update(&ob, |v| *v += 50)?;
            rc.work(secs(10.0))
        })?;
        assert_eq!(outcome, ActionOutcome::Undone);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(obj_a.committed(), 100, "a's debit undone");
    assert_eq!(obj_b.committed(), 200, "b's credit undone");
    assert_eq!(report.runtime_stats.undo_rounds, 2);
    assert!(!obj_a.is_tainted() && !obj_b.is_tainted());
}

/// Case 2 escalation: an undo fails (irreversible object), so ƒ — not µ —
/// is signalled by *every* participant after the second exchange.
#[test]
fn failed_undo_escalates_to_failure_for_all() {
    let reversible = SharedObject::new("memo", 0u32);
    let forged = irreversible("forge", 0u32);
    let action = ActionDef::builder("press_cycle")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph_with("jam"))
        .handler("a", "jam", |_| Ok(HandlerVerdict::Undo))
        .handler("b", "jam", |_| Ok(HandlerVerdict::Recovered))
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let (a, rev) = (action.clone(), reversible.clone());
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "a", |rc| {
            rc.update(&rev, |v| *v = 7)?;
            rc.raise(Exception::new("jam"))
        })?;
        assert_eq!(outcome, ActionOutcome::Failed, "ƒ dominates µ");
        Ok(())
    });
    let fo = forged.clone();
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "b", |rc| {
            // The forging cannot be undone.
            rc.update(&fo, |v| *v = 1)?;
            rc.work(secs(10.0))
        })?;
        assert_eq!(outcome, ActionOutcome::Failed);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    assert!(forged.is_tainted(), "ƒ leaves the forge effects visible");
    assert_eq!(forged.committed(), 1);
    assert_eq!(report.runtime_stats.undo_rounds, 2);
}

/// Case 3 of §3.4: a direct ƒ verdict dominates everything; no undo round
/// is executed.
#[test]
fn direct_failure_dominates_without_undo_round() {
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph_with("fatal"))
        .handler("a", "fatal", |_| Ok(HandlerVerdict::Fail))
        .handler("b", "fatal", |_| Ok(HandlerVerdict::Undo))
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "a", |rc| rc.raise(Exception::new("fatal")))?;
        assert_eq!(outcome, ActionOutcome::Failed);
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "b", |rc| rc.work(secs(10.0)))?;
        assert_eq!(outcome, ActionOutcome::Failed);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(
        report.runtime_stats.undo_rounds, 0,
        "ƒ present in round 1: no undo round (§3.4 case 3)"
    );
}

/// The undo hook participates in the undo round; a failing hook turns µ
/// into ƒ.
#[test]
fn undo_hook_failure_turns_undo_into_failure() {
    let hook_ran = Arc::new(AtomicU32::new(0));
    let hr = Arc::clone(&hook_ran);
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph_with("e"))
        .handler("a", "e", |_| Ok(HandlerVerdict::Undo))
        .handler("b", "e", |_| Ok(HandlerVerdict::Recovered))
        .undo_hook("b", move |_| {
            hr.fetch_add(1, Ordering::SeqCst);
            Ok(false) // compensation failed
        })
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "a", |rc| rc.raise(Exception::new("e")))?;
        assert_eq!(outcome, ActionOutcome::Failed);
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "b", |rc| rc.work(secs(10.0)))?;
        assert_eq!(outcome, ActionOutcome::Failed);
        Ok(())
    });
    sys.run().expect_ok();
    assert_eq!(hook_ran.load(Ordering::SeqCst), 1);
}

/// §3.4 extension: a lost `toBeSignalled` message is treated as the failure
/// exception when a signalling timeout is configured — "all the threads
/// that run on fault-free nodes can still signal correct, coordinated
/// exceptions".
#[test]
fn lost_signal_message_is_treated_as_failure() {
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph_with("e"))
        .interface(["EPS"])
        .signal_timeout(secs(5.0))
        .handler("a", "e", |_| {
            Ok(HandlerVerdict::Signal(ExceptionId::new("EPS")))
        })
        .handler("b", "e", |_| Ok(HandlerVerdict::Recovered))
        .build()
        .unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.1)))
        // Lose T1's toBeSignalled announcement to T0.
        .faults(
            FaultPlan::new().lose(
                FaultSpec::link(PartitionId::new(1), PartitionId::new(0))
                    .class("toBeSignalled")
                    .count(1),
            ),
        )
        .build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "a", |rc| rc.raise(Exception::new("e")))?;
        assert_eq!(
            outcome,
            ActionOutcome::Failed,
            "missing announcement must be treated as ƒ"
        );
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        // T1's own exchange completes (it received T0's announcement), but
        // T0 times out and announces nothing further; T1 sees a clean
        // round and reports its own signal. Fault-free coordination of the
        // *victim* side is what the extension guarantees.
        let outcome = ctx.enter(&action, "b", |rc| rc.work(secs(10.0)))?;
        assert!(
            matches!(outcome, ActionOutcome::Success | ActionOutcome::Failed),
            "unexpected outcome {outcome}"
        );
        Ok(())
    });
    sys.run().expect_ok();
}

/// A corrupted message delivered during normal computation raises the
/// action's corruption exception (Figure 7's `l_mes`).
#[test]
fn corrupted_app_message_raises_l_mes() {
    let handled = Arc::new(AtomicU32::new(0));
    let (h0, h1) = (Arc::clone(&handled), Arc::clone(&handled));
    let action = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .graph(graph_with("l_mes"))
        .handler("a", "l_mes", move |_| {
            h0.fetch_add(1, Ordering::SeqCst);
            Ok(HandlerVerdict::Recovered)
        })
        .handler("b", "l_mes", move |_| {
            h1.fetch_add(1, Ordering::SeqCst);
            Ok(HandlerVerdict::Recovered)
        })
        .build()
        .unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.1)))
        .faults(FaultPlan::new().corrupt(FaultSpec::any().class("App").count(1)))
        .build();
    let a = action.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&a, "a", |rc| {
            rc.send_to_role("b", "reading", 3u8)?;
            rc.work(secs(10.0))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("T1", move |ctx| {
        let outcome = ctx.enter(&action, "b", |rc| {
            let _msg = rc.recv_app()?;
            rc.work(secs(10.0))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(handled.load(Ordering::SeqCst), 2);
    assert_eq!(report.net_stats.corrupted("App"), 1);
}

/// Competing actions serialize on a shared object: the second action waits
/// until the first commits.
#[test]
fn competing_actions_serialize_on_shared_objects() {
    let resource = SharedObject::new("resource", Vec::<u32>::new());
    let action_a = ActionDef::builder("writer_a")
        .role("w", 0u32)
        .build()
        .unwrap();
    let action_b = ActionDef::builder("writer_b")
        .role("w", 1u32)
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let ra = resource.clone();
    sys.spawn("T0", move |ctx| {
        ctx.enter(&action_a, "w", |rc| {
            rc.update(&ra, |v| v.push(1))?;
            rc.work(secs(5.0))?; // hold the object for 5 s
            rc.update(&ra, |v| v.push(2))?;
            Ok(())
        })
        .map(|_| ())
    });
    let rb = resource.clone();
    sys.spawn("T1", move |ctx| {
        ctx.enter(&action_b, "w", |rc| {
            rc.work(secs(1.0))?; // start after T0 acquired
            rc.update(&rb, |v| v.push(3))?;
            Ok(())
        })
        .map(|_| ())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(
        resource.committed(),
        vec![1, 2, 3],
        "B's write must wait for A's action to commit"
    );
}

/// Undone actions must also release shared objects so others can proceed.
#[test]
fn undone_action_releases_objects() {
    let resource = SharedObject::new("resource", 0u32);
    let graph = graph_with("e");
    let failing = ActionDef::builder("failing")
        .role("w", 0u32)
        .graph(graph)
        .handler("w", "e", |_| Ok(HandlerVerdict::Undo))
        .build()
        .unwrap();
    let succeeding = ActionDef::builder("succeeding")
        .role("w", 1u32)
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let ra = resource.clone();
    sys.spawn("T0", move |ctx| {
        let outcome = ctx.enter(&failing, "w", |rc| {
            rc.update(&ra, |v| *v = 99)?;
            rc.raise(Exception::new("e"))
        })?;
        assert_eq!(outcome, ActionOutcome::Undone);
        Ok(())
    });
    let rb = resource.clone();
    sys.spawn("T1", move |ctx| {
        ctx.enter(&succeeding, "w", |rc| {
            rc.work(secs(1.0))?;
            rc.update(&rb, |v| *v += 1)?;
            Ok(())
        })
        .map(|_| ())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(
        resource.committed(),
        1,
        "undo then the successful increment"
    );
}
