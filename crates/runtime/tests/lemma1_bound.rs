//! Property-based verification of Lemma 1 / Theorem 1: a thread that
//! reaches the exceptional or suspended state completes exception handling
//! within
//!
//! `T ≤ (2·nmax + 3)·Tmmax + nmax·Tabort + (nmax + 1)·(Treso + ∆max)`
//!
//! and, consequently, the algorithm is deadlock-free (the virtual-time
//! scheduler *detects* global deadlocks, so a protocol deadlock would fail
//! these tests rather than hang them).

use std::sync::{Arc, Mutex};

use caa_core::exception::Exception;
use caa_core::exception::ExceptionId;
use caa_core::outcome::HandlerVerdict;
use caa_core::time::{secs, VirtualInstant};
use caa_exgraph::generate::conjunction_lattice;
use caa_runtime::{ActionDef, System};
use caa_simnet::LatencyModel;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Params {
    n: u32,
    raisers: Vec<u32>,
    t_mmax: f64,
    t_reso: f64,
    delta: f64,
    seed: u64,
}

fn params() -> impl Strategy<Value = Params> {
    (
        2u32..=5,
        0.05f64..1.0,
        0.0f64..0.5,
        0.0f64..0.5,
        any::<u64>(),
    )
        .prop_flat_map(|(n, t_mmax, t_reso, delta, seed)| {
            prop::collection::vec(0..n, 1..=n as usize).prop_map(move |mut raisers| {
                raisers.sort_unstable();
                raisers.dedup();
                Params {
                    n,
                    raisers,
                    t_mmax,
                    t_reso,
                    delta,
                    seed,
                }
            })
        })
}

/// Runs a flat (nmax = 0) scenario and returns
/// `(first_raise_at, last_handler_done_at)` in seconds.
fn run_flat(p: &Params) -> (f64, f64) {
    let prims: Vec<ExceptionId> = (0..p.n)
        .map(|i| ExceptionId::new(format!("e{i}")))
        .collect();
    let graph = conjunction_lattice(&prims, prims.len()).unwrap();

    let raise_at: Arc<Mutex<Option<VirtualInstant>>> = Arc::new(Mutex::new(None));
    let done_at: Arc<Mutex<Vec<VirtualInstant>>> = Arc::new(Mutex::new(Vec::new()));

    let mut builder = ActionDef::builder("bounded");
    for i in 0..p.n {
        builder = builder.role(format!("r{i}"), i);
    }
    builder = builder.graph(graph);
    let delta = p.delta;
    for i in 0..p.n {
        let done = Arc::clone(&done_at);
        builder = builder.fallback_handler(format!("r{i}"), move |hc| {
            hc.work(secs(delta))?;
            done.lock().unwrap().push(hc.now());
            Ok(HandlerVerdict::Recovered)
        });
    }
    let action = builder.build().unwrap();

    let mut sys = System::builder()
        .latency(LatencyModel::UniformUpTo(secs(p.t_mmax)))
        .seed(p.seed)
        .resolution_delay(secs(p.t_reso))
        .build();
    for i in 0..p.n {
        let a = action.clone();
        let raises = p.raisers.contains(&i);
        let raise_clock = Arc::clone(&raise_at);
        sys.spawn(format!("T{i}"), move |ctx| {
            ctx.enter(&a, &format!("r{i}"), |rc| {
                rc.work(secs(0.5))?;
                if raises {
                    let mut at = raise_clock.lock().unwrap();
                    let now = rc.now();
                    *at = Some(at.map_or(now, |prev| prev.min(now)));
                    drop(at);
                    rc.raise(Exception::new(format!("e{i}")))?;
                }
                rc.work(secs(120.0))
            })
            .map(|_| ())
        });
    }
    sys.run().expect_ok();

    let raised = raise_at.lock().unwrap().expect("at least one raiser");
    let done = done_at.lock().unwrap();
    assert_eq!(done.len(), p.n as usize, "every thread must handle");
    let last = done.iter().max().copied().unwrap();
    (raised.as_secs_f64(), last.as_secs_f64())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Flat actions (nmax = 0): T ≤ 3·Tmmax + Treso + ∆max.
    #[test]
    fn flat_recovery_respects_lemma1_bound(p in params()) {
        let (raised, done) = run_flat(&p);
        let measured = done - raised;
        let bound = 3.0 * p.t_mmax + p.t_reso + p.delta;
        // Virtual-time rounding and the interruption poll granularity are
        // sub-microsecond; allow a hair of slack.
        prop_assert!(
            measured <= bound + 1e-6,
            "measured {measured:.6}s exceeds Lemma 1 bound {bound:.6}s (params {p:?})"
        );
    }
}

/// Nested scenario (nmax = 1), deterministic sweep: Figure 4's shape with
/// the abortion handler raising a second exception.
#[test]
fn nested_recovery_respects_lemma1_bound() {
    for (t_mmax, t_abort, t_reso, delta, seed) in [
        (0.2, 0.1, 0.3, 0.05, 1u64),
        (0.5, 0.2, 0.1, 0.2, 2),
        (1.0, 0.5, 0.5, 0.5, 3),
        (0.1, 0.0, 0.0, 0.0, 4),
    ] {
        let graph = caa_exgraph::ExceptionGraphBuilder::new()
            .resolves("both", ["E1", "E3"])
            .build()
            .unwrap();
        let raise_at: Arc<Mutex<Option<VirtualInstant>>> = Arc::new(Mutex::new(None));
        let done_at: Arc<Mutex<Vec<VirtualInstant>>> = Arc::new(Mutex::new(Vec::new()));

        let mut builder = ActionDef::builder("outer")
            .role("r0", 0u32)
            .role("r1", 1u32)
            .role("r2", 2u32)
            .graph(graph);
        for r in ["r0", "r1", "r2"] {
            let done = Arc::clone(&done_at);
            builder = builder.fallback_handler(r, move |hc| {
                hc.work(secs(delta))?;
                done.lock().unwrap().push(hc.now());
                Ok(HandlerVerdict::Recovered)
            });
        }
        let outer = builder.build().unwrap();
        let nested = ActionDef::builder("nested")
            .role("n1", 1u32)
            .role("n2", 2u32)
            .abort_handler("n1", move |ac| {
                ac.work(secs(t_abort))?;
                Ok(Some(Exception::new("E3")))
            })
            .abort_handler("n2", move |ac| {
                ac.work(secs(t_abort))?;
                Ok(None)
            })
            .build()
            .unwrap();

        let mut sys = System::builder()
            .latency(LatencyModel::UniformUpTo(secs(t_mmax)))
            .seed(seed)
            .resolution_delay(secs(t_reso))
            .build();
        let o0 = outer.clone();
        let rc0 = Arc::clone(&raise_at);
        sys.spawn("T0", move |ctx| {
            ctx.enter(&o0, "r0", |rc| {
                rc.work(secs(0.5))?;
                *rc0.lock().unwrap() = Some(rc.now());
                rc.raise(Exception::new("E1"))
            })
            .map(|_| ())
        });
        for (name, orole, nrole) in [("T1", "r1", "n1"), ("T2", "r2", "n2")] {
            let o = outer.clone();
            let n = nested.clone();
            let orole = orole.to_owned();
            let nrole = nrole.to_owned();
            sys.spawn(name, move |ctx| {
                ctx.enter(&o, &orole, |rc| {
                    rc.enter(&n, &nrole, |nc| nc.work(secs(300.0)))?;
                    Ok(())
                })
                .map(|_| ())
            });
        }
        sys.run().expect_ok();
        let raised = raise_at.lock().unwrap().unwrap().as_secs_f64();
        let done = done_at
            .lock()
            .unwrap()
            .iter()
            .max()
            .copied()
            .unwrap()
            .as_secs_f64();
        let measured = done - raised;
        let nmax = 1.0f64;
        let bound = (2.0 * nmax + 3.0) * t_mmax + nmax * t_abort + (nmax + 1.0) * (t_reso + delta);
        assert!(
            measured <= bound + 1e-6,
            "measured {measured:.6}s exceeds bound {bound:.6}s \
             (Tmmax={t_mmax}, Tabort={t_abort}, Treso={t_reso}, ∆={delta}, seed={seed})"
        );
    }
}
