//! Empirical verification of the message-complexity results of §3.3.3:
//!
//! * one exception, no nesting: `(N−1)` Exception + `(N−1)²` Suspended +
//!   `(N−1)` Commit = `(N+1)(N−1)` messages;
//! * all N threads raise simultaneously: `N(N−1)` Exception + `(N−1)`
//!   Commit = `(N+1)(N−1)` messages — independent of the number of
//!   concurrent exceptions;
//! * the resolution procedure runs exactly once per recovery.

use caa_core::exception::Exception;
use caa_core::exception::ExceptionId;
use caa_core::outcome::HandlerVerdict;
use caa_core::time::secs;
use caa_exgraph::generate::conjunction_lattice;
use caa_runtime::{ActionDef, System, SystemReport};
use caa_simnet::LatencyModel;

/// Runs one N-thread action where threads in `raisers` raise distinct
/// exceptions at t=0.1s and everyone else computes.
fn run_scenario(n: u32, raisers: &[u32]) -> SystemReport {
    let prims: Vec<ExceptionId> = (0..n).map(|i| ExceptionId::new(format!("e{i}"))).collect();
    let graph = conjunction_lattice(&prims, prims.len()).unwrap();
    let mut builder = ActionDef::builder("measured");
    for i in 0..n {
        builder = builder.role(format!("r{i}"), i);
    }
    builder = builder.graph(graph);
    for i in 0..n {
        builder = builder.fallback_handler(format!("r{i}"), |_| Ok(HandlerVerdict::Recovered));
    }
    let action = builder.build().unwrap();

    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.05)))
        .build();
    for i in 0..n {
        let a = action.clone();
        let raises = raisers.contains(&i);
        sys.spawn(format!("T{i}"), move |ctx| {
            ctx.enter(&a, &format!("r{i}"), |rc| {
                rc.work(secs(0.1))?;
                if raises {
                    rc.raise(Exception::new(format!("e{i}")))?;
                }
                rc.work(secs(30.0))
            })
            .map(|_| ())
        });
    }
    let report = sys.run();
    report.expect_ok();
    report
}

fn resolution_messages(report: &SystemReport) -> u64 {
    report.net_stats.sent("Exception")
        + report.net_stats.sent("Suspended")
        + report.net_stats.sent("Commit")
}

#[test]
fn single_exception_message_counts_match_theorem() {
    for n in [2u32, 3, 4, 5, 6] {
        let report = run_scenario(n, &[0]);
        let n64 = u64::from(n);
        assert_eq!(
            report.net_stats.sent("Exception"),
            n64 - 1,
            "N={n}: (N-1) Exception broadcasts"
        );
        assert_eq!(
            report.net_stats.sent("Suspended"),
            (n64 - 1) * (n64 - 1),
            "N={n}: (N-1)^2 Suspended messages"
        );
        assert_eq!(
            report.net_stats.sent("Commit"),
            n64 - 1,
            "N={n}: (N-1) Commit messages"
        );
        assert_eq!(
            resolution_messages(&report),
            (n64 + 1) * (n64 - 1),
            "N={n}: total (N+1)(N-1)"
        );
        assert_eq!(report.runtime_stats.resolutions_invoked, 1);
    }
}

#[test]
fn all_raise_message_counts_match_theorem() {
    for n in [2u32, 3, 4, 5] {
        let raisers: Vec<u32> = (0..n).collect();
        let report = run_scenario(n, &raisers);
        let n64 = u64::from(n);
        assert_eq!(
            report.net_stats.sent("Exception"),
            n64 * (n64 - 1),
            "N={n}: every thread broadcasts its exception"
        );
        assert_eq!(
            report.net_stats.sent("Suspended"),
            0,
            "N={n}: nobody suspends when everyone raises"
        );
        assert_eq!(report.net_stats.sent("Commit"), n64 - 1);
        assert_eq!(
            resolution_messages(&report),
            (n64 + 1) * (n64 - 1),
            "N={n}: the count is independent of how many exceptions were raised"
        );
        assert_eq!(report.runtime_stats.resolutions_invoked, 1);
    }
}

#[test]
fn message_count_is_independent_of_raiser_count() {
    // §3.3.3: "the number of messages is in fact independent of the number
    // of concurrent exceptions".
    let n = 5u32;
    let totals: Vec<u64> = [1usize, 2, 3, 5]
        .iter()
        .map(|&k| {
            let raisers: Vec<u32> = (0..k as u32).collect();
            resolution_messages(&run_scenario(n, &raisers))
        })
        .collect();
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "totals must all equal (N+1)(N-1): {totals:?}"
    );
    assert_eq!(totals[0], u64::from(n + 1) * u64::from(n - 1));
}

#[test]
fn signalling_simple_case_uses_n_times_n_minus_1_messages() {
    // §3.4: "in these simple cases just N × (N–1) messages are required".
    for n in [2u32, 3, 4] {
        let report = run_scenario(n, &[0]); // handler verdict: Recovered (φ)
        let n64 = u64::from(n);
        assert_eq!(
            report.net_stats.sent("toBeSignalled"),
            n64 * (n64 - 1),
            "N={n}: one announcement from each thread to each other"
        );
    }
}

#[test]
fn signalling_undo_case_uses_2n_times_n_minus_1_messages() {
    // §3.4 worst case: µ requested, two exchanges: 2N(N-1) messages.
    let n = 3u32;
    let graph = caa_exgraph::ExceptionGraphBuilder::new()
        .primitive("e")
        .build()
        .unwrap();
    let mut builder = ActionDef::builder("undoing");
    for i in 0..n {
        builder = builder.role(format!("r{i}"), i);
    }
    builder = builder.graph(graph);
    builder = builder.handler("r0", "e", |_| Ok(HandlerVerdict::Undo));
    for i in 1..n {
        builder = builder.handler(format!("r{i}"), "e", |_| Ok(HandlerVerdict::Recovered));
    }
    let action = builder.build().unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.05)))
        .build();
    for i in 0..n {
        let a = action.clone();
        sys.spawn(format!("T{i}"), move |ctx| {
            ctx.enter(&a, &format!("r{i}"), |rc| {
                rc.work(secs(0.1))?;
                if i == 0 {
                    rc.raise(Exception::new("e"))?;
                }
                rc.work(secs(30.0))
            })
            .map(|_| ())
        });
    }
    let report = sys.run();
    report.expect_ok();
    let n64 = u64::from(n);
    assert_eq!(
        report.net_stats.sent("toBeSignalled"),
        2 * n64 * (n64 - 1),
        "two full exchanges in the undo case"
    );
    assert_eq!(report.runtime_stats.undo_rounds, n64);
}

#[test]
fn nested_recovery_worst_case_is_bounded_by_nmax_n_squared() {
    // Theorem 2: with nesting, at most nmax × (N² − 1) messages. Build a
    // 3-thread outer action with a 2-thread nested action; the outer
    // exception aborts the nested one (nmax = 1 abort level exercised).
    let n: u64 = 3;
    let nmax: u64 = 2;
    let graph = caa_exgraph::ExceptionGraphBuilder::new()
        .resolves("both", ["outer_e", "ab_e"])
        .build()
        .unwrap();
    let outer = ActionDef::builder("outer")
        .role("r0", 0u32)
        .role("r1", 1u32)
        .role("r2", 2u32)
        .graph(graph)
        .fallback_handler("r0", |_| Ok(HandlerVerdict::Recovered))
        .fallback_handler("r1", |_| Ok(HandlerVerdict::Recovered))
        .fallback_handler("r2", |_| Ok(HandlerVerdict::Recovered))
        .build()
        .unwrap();
    let nested = ActionDef::builder("nested")
        .role("n1", 1u32)
        .role("n2", 2u32)
        .abort_handler("n1", |_| Ok(Some(Exception::new("ab_e"))))
        .build()
        .unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.05)))
        .build();
    let o0 = outer.clone();
    sys.spawn("T0", move |ctx| {
        ctx.enter(&o0, "r0", |rc| {
            rc.work(secs(1.0))?;
            rc.raise(Exception::new("outer_e"))
        })
        .map(|_| ())
    });
    for (name, orole, nrole) in [("T1", "r1", "n1"), ("T2", "r2", "n2")] {
        let o = outer.clone();
        let ne = nested.clone();
        let orole = orole.to_owned();
        let nrole = nrole.to_owned();
        sys.spawn(name, move |ctx| {
            ctx.enter(&o, &orole, |rc| {
                rc.enter(&ne, &nrole, |nc| nc.work(secs(60.0)))?;
                Ok(())
            })
            .map(|_| ())
        });
    }
    let report = sys.run();
    report.expect_ok();
    let total = resolution_messages(&report);
    assert!(
        total <= nmax * (n * n - 1),
        "Theorem 2 bound violated: {total} > {}",
        nmax * (n * n - 1)
    );
    assert!(report.runtime_stats.aborts == 2);
}
