//! Exit-protocol liveness under crash-stop faults: round-agnostic
//! suspicion in `run_exit`. A participant that crash-stops before voting
//! must not deadlock the surviving group — the bounded exit wait expires,
//! the survivors suspect the silent peer, remove it from the membership
//! view and conclude the action among themselves, within the configured
//! exit-timeout bound.

use caa_core::outcome::ActionOutcome;
use caa_core::time::{secs, VirtualDuration};
use caa_runtime::{ActionDef, RuntimeError, SharedObject, System};

const EXIT_TIMEOUT: f64 = 5.0;

fn two_party(exit_timeout: Option<VirtualDuration>) -> ActionDef {
    let mut def = ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .signal_timeout(secs(30.0));
    if let Some(t) = exit_timeout {
        def = def.exit_timeout(t);
    }
    def.build().unwrap()
}

/// The survivor reaches its exit, waits for the crashed peer's vote, times
/// out, suspects it, and concludes the action over the shrunken view —
/// with its own clean outcome, within the bound.
#[test]
fn crash_stop_mid_exit_evicts_the_peer_within_bound() {
    let def = two_party(Some(secs(EXIT_TIMEOUT)));
    let mut sys = System::builder().build();
    let d = def.clone();
    sys.spawn("survivor", move |ctx| {
        let before = ctx.now();
        let outcome = ctx.enter(&d, "a", |rc| rc.work(secs(0.1)))?;
        assert_eq!(
            outcome,
            ActionOutcome::Success,
            "the exit concludes among the survivors once the dead peer is evicted"
        );
        let elapsed = ctx.now().duration_since(before).as_secs_f64();
        assert!(
            elapsed <= 0.1 + EXIT_TIMEOUT + 1e-6,
            "exit must terminate within the timeout bound, took {elapsed}s"
        );
        Ok(())
    });
    sys.spawn("crasher", move |ctx| {
        // Crash while the survivor is already waiting in the exit protocol.
        ctx.enter(&def, "b", |rc| {
            rc.work(secs(1.0))?;
            rc.crash_stop()
        })
        .map(|_| ())
    });
    let report = sys.run();
    let errors: Vec<_> = report
        .results
        .iter()
        .map(|(name, r)| (name.as_str(), r.clone()))
        .collect();
    assert_eq!(errors[0].1, Ok(()), "survivor must complete: {errors:?}");
    assert_eq!(
        errors[1].1,
        Err(RuntimeError::Crashed),
        "crash-stop is reported as an injected fault"
    );
    assert_eq!(report.runtime_stats.exit_timeouts, 1);
    assert_eq!(
        report.runtime_stats.view_changes, 1,
        "exit suspicion initiates a membership view change"
    );
}

/// Without an exit timeout the crashed peer's missing vote is a genuine
/// deadlock — detected and reported by the virtual-time scheduler, which is
/// exactly the gap the bounded wait closes.
#[test]
fn without_exit_timeout_a_crashed_peer_deadlocks_the_exit() {
    let def = two_party(None);
    let mut sys = System::builder().build();
    let d = def.clone();
    sys.spawn("survivor", move |ctx| {
        ctx.enter(&d, "a", |rc| rc.work(secs(0.1))).map(|_| ())
    });
    sys.spawn("crasher", move |ctx| {
        ctx.enter(&def, "b", |rc| {
            rc.work(secs(1.0))?;
            rc.crash_stop()
        })
        .map(|_| ())
    });
    let report = sys.run();
    assert!(
        matches!(report.results[0].1, Err(RuntimeError::Deadlock(_))),
        "unbounded exit wait must deadlock: {:?}",
        report.results[0].1
    );
}

/// A crash-stop breaks the crashed thread's transaction layers: objects it
/// held are rolled back so other actions can acquire them, while survivors
/// evict the dead peer and commit their own effects cleanly.
#[test]
fn crash_stop_releases_objects_and_survivors_commit_theirs() {
    let survivor_obj = SharedObject::new("survivor_obj", 0u32);
    let crasher_obj = SharedObject::new("crasher_obj", 0u32);
    let def = two_party(Some(secs(EXIT_TIMEOUT)));
    let mut sys = System::builder().build();
    let d = def.clone();
    let so = survivor_obj.clone();
    sys.spawn("survivor", move |ctx| {
        let outcome = ctx.enter(&d, "a", |rc| {
            rc.update(&so, |v| *v = 7)?;
            rc.work(secs(0.1))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let co = crasher_obj.clone();
    sys.spawn("crasher", move |ctx| {
        ctx.enter(&def, "b", |rc| {
            rc.update(&co, |v| *v = 9)?;
            rc.work(secs(1.0))?;
            rc.crash_stop()
        })
        .map(|_| ())
    });
    let report = sys.run();
    assert_eq!(report.results[1].1, Err(RuntimeError::Crashed));
    // The crashed thread's layer was discarded: state rolled back, free.
    assert_eq!(crasher_obj.committed(), 0);
    assert!(!crasher_obj.is_tainted());
    // The survivor evicted the dead peer and committed cleanly.
    assert_eq!(survivor_obj.committed(), 7);
    assert!(!survivor_obj.is_tainted());
    // And the freed object is immediately acquirable by a fresh action.
    let solo = ActionDef::builder("solo").role("s", 0u32).build().unwrap();
    let mut sys2 = System::builder().build();
    let co = crasher_obj.clone();
    sys2.spawn("later", move |ctx| {
        ctx.enter(&solo, "s", |rc| {
            rc.update(&co, |v| *v += 1)?;
            Ok(())
        })
        .map(|_| ())
    });
    sys2.run().expect_ok();
    assert_eq!(crasher_obj.committed(), 1);
}

/// A slow-but-alive peer whose votes arrive in time does not trip the
/// bounded wait: the action still succeeds.
#[test]
fn exit_timeout_does_not_misfire_on_slow_peers() {
    let def = two_party(Some(secs(EXIT_TIMEOUT)));
    let mut sys = System::builder().build();
    let d = def.clone();
    sys.spawn("fast", move |ctx| {
        let outcome = ctx.enter(&d, "a", |rc| rc.work(secs(0.1)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("slow", move |ctx| {
        // Slower than `fast` by less than the exit timeout.
        let outcome = ctx.enter(&def, "b", |rc| rc.work(secs(EXIT_TIMEOUT - 1.0)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.run().expect_ok();
}
