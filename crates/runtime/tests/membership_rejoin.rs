//! Epoch-numbered rejoin and multi-crash membership: a crash-stopped
//! participant may restart, ask a survivor for the current view
//! (`JoinRequest`/`JoinGrant`) and re-enter the action at the grant's
//! epoch — and the suspicion facility shared by the resolution,
//! signalling and exit rounds lets the group survive more than one crash
//! in a single action, shrinking the view one epoch per suspicion round.

use std::sync::Mutex;

use caa_core::exception::Exception;
use caa_core::ids::ThreadId;
use caa_core::outcome::{ActionOutcome, HandlerVerdict};
use caa_core::time::{secs, VirtualDuration};
use caa_exgraph::ExceptionGraphBuilder;
use caa_runtime::observe::{Event, EventKind, Observer};
use caa_runtime::{ActionDef, RuntimeError, SharedObject, System};
use caa_simnet::LatencyModel;

const EXIT_TIMEOUT: f64 = 5.0;

/// Collects every observed event for post-run assertions.
#[derive(Default)]
struct Collector {
    events: Mutex<Vec<Event>>,
}

impl Observer for Collector {
    fn on_event(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

impl Collector {
    fn kinds(&self) -> Vec<EventKind> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .map(|e| e.kind.clone())
            .collect()
    }
}

fn pair() -> ActionDef {
    ActionDef::builder("pair")
        .role("a", 0u32)
        .role("b", 1u32)
        .signal_timeout(secs(30.0))
        .exit_timeout(secs(EXIT_TIMEOUT))
        .build()
        .unwrap()
}

/// A participant that restarts before any survivor's bounded wait expires
/// re-enters the *same* view (no eviction ever happens): the join grant
/// carries epoch 0, the rejoiner votes in the current exit round, and the
/// action succeeds for everyone with no timeouts at all.
#[test]
fn rejoin_before_detection_preserves_the_view_and_succeeds() {
    let def = pair();
    let mut sys = System::builder().build();
    let d = def.clone();
    sys.spawn("survivor", move |ctx| {
        let outcome = ctx.enter(&d, "a", |rc| rc.work(secs(0.1)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("phoenix", move |ctx| {
        let crashed = ctx.enter(&def, "b", |rc| {
            rc.work(secs(1.0))?;
            rc.crash_stop()
        });
        match crashed {
            Err(flow) if flow.is_crash() => {
                // Restart immediately: the survivor is parked in its exit
                // wait and has not yet suspected anyone.
                let outcome = ctx.rejoin(&def, "b")?;
                assert_eq!(
                    outcome,
                    Some(ActionOutcome::Success),
                    "a pre-detection rejoin must conclude with the group"
                );
                Ok(())
            }
            other => panic!("expected a crash flow, got {other:?}"),
        }
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(report.runtime_stats.rejoins, 1);
    assert_eq!(
        report.runtime_stats.exit_timeouts, 0,
        "the rejoiner's vote arrives before the survivor's bounded wait expires"
    );
    assert_eq!(
        report.runtime_stats.view_changes, 0,
        "nobody was ever suspected"
    );
}

/// A restart that comes back after the survivors already evicted the
/// crashed thread and concluded the action finds nobody to grant its join:
/// the bounded join window expires and `rejoin` reports `None` — a clean
/// give-up, not an error.
#[test]
fn rejoin_after_the_group_concluded_gives_up_cleanly() {
    let def = pair();
    let mut sys = System::builder().build();
    let d = def.clone();
    sys.spawn("survivor", move |ctx| {
        let outcome = ctx.enter(&d, "a", |rc| rc.work(secs(0.1)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("latecomer", move |ctx| {
        let crashed = ctx.enter(&def, "b", |rc| {
            rc.work(secs(1.0))?;
            rc.crash_stop()
        });
        match crashed {
            Err(flow) if flow.is_crash() => {
                // Stay down past the survivor's exit timeout: by the time
                // the restart asks for the view, the action is long over.
                ctx.work(secs(3.0 * EXIT_TIMEOUT))?;
                let outcome = ctx.rejoin(&def, "b")?;
                assert_eq!(outcome, None, "no survivor is left to grant the join");
                Ok(())
            }
            other => panic!("expected a crash flow, got {other:?}"),
        }
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(report.runtime_stats.rejoins, 0);
    assert_eq!(
        report.runtime_stats.exit_timeouts, 1,
        "the survivor's bounded wait evicted the crashed peer"
    );
}

/// Rejoin with more than one granter: every survivor with the frame open
/// answers the broadcast `JoinRequest` independently; the first grant
/// readmits the joiner, the duplicates are dropped, and the rejoin is
/// counted exactly once. The rejoiner's pre-crash object updates stay
/// rolled back while the survivors' effects commit.
#[test]
fn duplicate_grants_are_idempotent_and_state_stays_rolled_back() {
    let obj_survivor = SharedObject::new("obj_survivor", 0u32);
    let obj_phoenix = SharedObject::new("obj_phoenix", 0u32);
    let def = ActionDef::builder("trio")
        .role("a", 0u32)
        .role("b", 1u32)
        .role("c", 2u32)
        .signal_timeout(secs(30.0))
        .exit_timeout(secs(EXIT_TIMEOUT))
        .build()
        .unwrap();
    let mut sys = System::builder().build();
    let d = def.clone();
    let so = obj_survivor.clone();
    sys.spawn("survivor-a", move |ctx| {
        let outcome = ctx.enter(&d, "a", |rc| {
            rc.update(&so, |v| *v = 7)?;
            rc.work(secs(0.1))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let d = def.clone();
    sys.spawn("survivor-b", move |ctx| {
        let outcome = ctx.enter(&d, "b", |rc| rc.work(secs(0.1)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let po = obj_phoenix.clone();
    sys.spawn("phoenix", move |ctx| {
        let crashed = ctx.enter(&def, "c", |rc| {
            rc.update(&po, |v| *v = 9)?;
            rc.work(secs(1.0))?;
            rc.crash_stop()
        });
        match crashed {
            Err(flow) if flow.is_crash() => {
                ctx.work(secs(1.0))?;
                let outcome = ctx.rejoin(&def, "c")?;
                assert_eq!(outcome, Some(ActionOutcome::Success));
                Ok(())
            }
            other => panic!("expected a crash flow, got {other:?}"),
        }
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(
        report.runtime_stats.rejoins, 1,
        "two grants arrive but the rejoin is counted once"
    );
    assert_eq!(report.runtime_stats.exit_timeouts, 0);
    assert_eq!(obj_survivor.committed(), 7);
    // The crash broke the phoenix's transaction layer; the rejoin does not
    // resurrect it (state restoration is the restart's job, per §6).
    assert_eq!(obj_phoenix.committed(), 0);
    assert!(!obj_phoenix.is_tainted());
}

/// Two crash-stops in one action, caught by *different* rounds: the first
/// silent peer is evicted by the bounded resolution wait (epoch 1), the
/// second dies after resolution and is evicted by the signalling-round
/// suspicion (epoch 2) — the sole survivor still terminates, within
/// bounds, with the coordinated ƒ outcome the missing signal forces.
#[test]
fn double_crash_is_survived_one_epoch_per_round() {
    let collector = std::sync::Arc::new(Collector::default());
    let graph = ExceptionGraphBuilder::new()
        .resolves("r", ["e"])
        .build()
        .unwrap();
    let mut builder = ActionDef::builder("trio")
        .role("a", 0u32)
        .role("b", 1u32)
        .role("c", 2u32)
        .graph(graph)
        .resolution_timeout(secs(10.0))
        .signal_timeout(secs(10.0))
        .exit_timeout(secs(10.0));
    for role in ["a", "b", "c"] {
        builder = builder.fallback_handler(role, move |_| Ok(HandlerVerdict::Recovered));
    }
    let def = builder.build().unwrap();
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.1)))
        .observer(collector.clone() as _)
        .build();
    let d = def.clone();
    sys.spawn("early-crasher", move |ctx| {
        // Dead before the raise: never answers the resolution collect.
        ctx.enter(&d, "a", |rc| {
            rc.work(secs(0.2))?;
            rc.crash_stop()
        })
        .map(|_| ())
    });
    let d = def.clone();
    sys.spawn("late-crasher", move |ctx| {
        // Answers the resolution (its Suspended arrives in time) but dies
        // before the resolver's timeout fires, so its §3.4 signal never
        // comes: the signalling round must run the suspicion this time.
        ctx.enter(&d, "b", |rc| {
            rc.schedule_crash(VirtualDuration::from_nanos(5_000_000_000));
            rc.work(secs(60.0))
        })
        .map(|_| ())
    });
    sys.spawn("survivor", move |ctx| {
        let before = ctx.now();
        let outcome = ctx.enter(&def, "c", |rc| {
            rc.work(secs(1.0))?;
            rc.raise(Exception::new("e"))
        })?;
        assert_eq!(
            outcome,
            ActionOutcome::Failed,
            "the second crash's missing signal forces ƒ"
        );
        let elapsed = ctx.now().duration_since(before).as_secs_f64();
        assert!(
            elapsed < 60.0,
            "two crashes must not defeat the bounded waits, took {elapsed}s"
        );
        Ok(())
    });
    let report = sys.run();
    assert_eq!(report.results[0].1, Err(RuntimeError::Crashed));
    assert_eq!(report.results[1].1, Err(RuntimeError::Crashed));
    assert_eq!(report.results[2].1, Ok(()), "{:?}", report.results);
    assert_eq!(report.runtime_stats.resolution_timeouts, 1);
    assert_eq!(
        report.runtime_stats.signal_timeouts, 1,
        "the post-resolution crash is caught by the signalling round"
    );
    let kinds = collector.kinds();
    assert!(
        kinds.iter().any(|k| matches!(
            k,
            EventKind::ViewChange { epoch: 1, removed } if removed.as_slice() == [ThreadId::new(0)]
        )),
        "epoch 1 must evict the early crasher: {kinds:?}"
    );
    assert!(
        kinds.iter().any(|k| matches!(
            k,
            EventKind::ViewChange { epoch: 2, removed } if removed.as_slice() == [ThreadId::new(1)]
        )),
        "epoch 2 must evict the late crasher: {kinds:?}"
    );
}
