//! Crash-aware resolution: the membership extension's bounded wait
//! (`ActionDefBuilder::resolution_timeout`) must turn a crashed peer's
//! silence during the §3.3.2 collection loop into a membership view change
//! plus a synthesized crash exception — and the survivors must still agree
//! on one resolving exception, complete signalling and exit among
//! themselves, and terminate within bounded virtual time. Covers the three
//! crash-vs-resolution races: a crashed bystander that never announced
//! anything, a crashed raiser that died between its broadcast and its
//! commit, and a crash racing a pair of concurrent raises into a ƒ
//! outcome.

use std::sync::Mutex;

use caa_core::exception::Exception;
use caa_core::ids::ThreadId;
use caa_core::outcome::{ActionOutcome, HandlerVerdict};
use caa_core::time::{secs, VirtualDuration};
use caa_exgraph::ExceptionGraphBuilder;
use caa_runtime::observe::{Event, EventKind, Observer};
use caa_runtime::{ActionDef, RuntimeError, System};
use caa_simnet::LatencyModel;

const RESOLUTION_TIMEOUT: f64 = 10.0;

/// Collects every observed event for post-run assertions.
#[derive(Default)]
struct Collector {
    events: Mutex<Vec<Event>>,
}

impl Observer for Collector {
    fn on_event(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

impl Collector {
    fn kinds(&self) -> Vec<EventKind> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .map(|e| e.kind.clone())
            .collect()
    }

    fn resolved_per_thread(&self) -> Vec<(u32, String)> {
        let mut out: Vec<(u32, String)> = self
            .events
            .lock()
            .unwrap()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Resolved { exception } => {
                    Some((e.thread.as_u32(), exception.name().to_owned()))
                }
                _ => None,
            })
            .collect();
        out.sort();
        out
    }
}

fn trio(verdict: HandlerVerdict, resolution_timeout: Option<f64>) -> ActionDef {
    let graph = ExceptionGraphBuilder::new()
        .resolves("both", ["e0", "e2"])
        .build()
        .unwrap();
    let mut builder = ActionDef::builder("trio")
        .role("a", 0u32)
        .role("b", 1u32)
        .role("c", 2u32)
        .graph(graph);
    if let Some(t) = resolution_timeout {
        builder = builder.resolution_timeout(secs(t));
    }
    for role in ["a", "b", "c"] {
        let verdict = verdict.clone();
        builder = builder.fallback_handler(role, move |_| Ok(verdict.clone()));
    }
    builder.build().unwrap()
}

/// A bystander crash-stops before a peer raises: the survivors' bounded
/// resolution wait removes it, resolution re-runs over the shrunken view
/// with a synthesized crash exception, and — because signalling and exit
/// also range over the view — the action still *succeeds* among the
/// survivors, with no exit-timeout ƒ.
#[test]
fn crashed_bystander_is_removed_and_survivors_succeed() {
    let collector = std::sync::Arc::new(Collector::default());
    let def = trio(HandlerVerdict::Recovered, Some(RESOLUTION_TIMEOUT));
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.1)))
        .observer(collector.clone() as _)
        .build();
    let d = def.clone();
    sys.spawn("crasher", move |ctx| {
        ctx.enter(&d, "a", |rc| {
            rc.work(secs(0.5))?;
            rc.crash_stop()
        })
        .map(|_| ())
    });
    let d = def.clone();
    sys.spawn("bystander", move |ctx| {
        let outcome = ctx.enter(&d, "b", |rc| rc.work(secs(60.0)))?;
        assert_eq!(outcome, ActionOutcome::Success, "survivors must succeed");
        Ok(())
    });
    sys.spawn("raiser", move |ctx| {
        let before = ctx.now();
        let outcome = ctx.enter(&def, "c", |rc| {
            rc.work(secs(1.0))?;
            rc.raise(Exception::new("e2"))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        let elapsed = ctx.now().duration_since(before).as_secs_f64();
        assert!(
            elapsed < 1.0 + 2.0 * RESOLUTION_TIMEOUT,
            "recovery must terminate within the bounded wait, took {elapsed}s"
        );
        Ok(())
    });
    let report = sys.run();
    assert_eq!(report.results[0].1, Err(RuntimeError::Crashed));
    assert_eq!(report.results[1].1, Ok(()), "{:?}", report.results);
    assert_eq!(report.results[2].1, Ok(()), "{:?}", report.results);
    assert_eq!(report.runtime_stats.resolution_timeouts, 1);
    assert!(
        report.runtime_stats.view_changes >= 2,
        "initiator + adopter must both count: {:?}",
        report.runtime_stats
    );
    assert_eq!(
        report.runtime_stats.exit_timeouts, 0,
        "exit must complete over the shrunken view, not time out"
    );
    // Both survivors committed to the same resolving exception.
    let resolved = collector.resolved_per_thread();
    assert_eq!(resolved.len(), 2, "{resolved:?}");
    assert_eq!(resolved[0].1, resolved[1].1, "{resolved:?}");
    // The view change removed exactly the crashed thread.
    let kinds = collector.kinds();
    assert!(
        kinds.iter().any(|k| matches!(
            k,
            EventKind::ViewChange { epoch: 1, removed } if removed == &[ThreadId::new(0)]
        )),
        "expected a v1 view change removing T0"
    );
    assert!(kinds
        .iter()
        .any(|k| matches!(k, EventKind::ResolutionTimeout { suspects } if suspects == &[ThreadId::new(0)])));
}

/// The raiser broadcasts its exception and crash-stops before committing
/// (it held the resolver election). The survivors' wait expires on the
/// missing commit, the view change re-elects a live resolver, and the dead
/// raiser's *real* exception still resolves the recovery.
#[test]
fn crashed_raiser_is_replaced_as_resolver() {
    let collector = std::sync::Arc::new(Collector::default());
    let def = trio(HandlerVerdict::Recovered, Some(RESOLUTION_TIMEOUT));
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.1)))
        .observer(collector.clone() as _)
        .build();
    let d = def.clone();
    sys.spawn("a", move |ctx| {
        let outcome = ctx.enter(&d, "a", |rc| rc.work(secs(60.0)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let d = def.clone();
    sys.spawn("b", move |ctx| {
        let outcome = ctx.enter(&d, "b", |rc| rc.work(secs(60.0)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("raiser-crasher", move |ctx| {
        ctx.enter(&def, "c", |rc| {
            // Die 50 ms after raising: the Exception broadcast is out
            // (messages leave atomically at the raise), but the peers'
            // Suspended answers — in flight for 100 ms — never arrive, so
            // the commit this thread owes as the elected resolver is never
            // sent.
            rc.schedule_crash(VirtualDuration::from_nanos(150_000_000));
            rc.work(secs(0.1))?;
            rc.raise(Exception::new("e2"))
        })
        .map(|_| ())
    });
    let report = sys.run();
    assert_eq!(report.results[0].1, Ok(()), "{:?}", report.results);
    assert_eq!(report.results[1].1, Ok(()), "{:?}", report.results);
    assert_eq!(report.results[2].1, Err(RuntimeError::Crashed));
    // Survivors agree — on the dead raiser's own exception: a recorded
    // raise is never demoted to the synthesized crash.
    let resolved = collector.resolved_per_thread();
    assert_eq!(
        resolved,
        vec![(0, "e2".to_owned()), (1, "e2".to_owned())],
        "survivors must resolve the crashed raiser's exception"
    );
    assert!(report.runtime_stats.resolution_timeouts >= 1);
    assert_eq!(report.runtime_stats.exit_timeouts, 0);
}

/// A crash races two concurrent raises: the silent thread is removed, the
/// concurrent exceptions resolve through the graph, and the handlers'
/// failure verdicts drive the survivors to a coordinated ƒ outcome.
#[test]
fn crash_racing_concurrent_raises_reaches_coordinated_failure() {
    let collector = std::sync::Arc::new(Collector::default());
    let def = trio(HandlerVerdict::Fail, Some(RESOLUTION_TIMEOUT));
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.05)))
        .observer(collector.clone() as _)
        .build();
    let d = def.clone();
    sys.spawn("raiser-0", move |ctx| {
        let outcome = ctx.enter(&d, "a", |rc| {
            rc.work(secs(0.1))?;
            rc.raise(Exception::new("e0"))
        })?;
        assert_eq!(outcome, ActionOutcome::Failed, "ƒ must dominate");
        Ok(())
    });
    let d = def.clone();
    sys.spawn("mid-crasher", move |ctx| {
        ctx.enter(&d, "b", |rc| {
            // Dead before either raiser's Exception (in flight for 50 ms
            // from t=0.1) can reach this thread: the group never hears
            // from it at all.
            rc.schedule_crash(VirtualDuration::from_nanos(120_000_000));
            rc.work(secs(60.0))
        })
        .map(|_| ())
    });
    sys.spawn("raiser-2", move |ctx| {
        let outcome = ctx.enter(&def, "c", |rc| {
            rc.work(secs(0.12))?;
            rc.raise(Exception::new("e2"))
        })?;
        assert_eq!(outcome, ActionOutcome::Failed, "ƒ must dominate");
        Ok(())
    });
    let report = sys.run();
    assert_eq!(report.results[1].1, Err(RuntimeError::Crashed));
    assert_eq!(report.results[0].1, Ok(()), "{:?}", report.results);
    assert_eq!(report.results[2].1, Ok(()), "{:?}", report.results);
    // The silent thread's synthesized crash exception joins the two real
    // raises; a graph that does not cover `__crash` escalates the
    // combination to the universal exception — on *both* survivors alike.
    let resolved = collector.resolved_per_thread();
    assert_eq!(
        resolved,
        vec![(0, "__universal".to_owned()), (2, "__universal".to_owned())],
        "the crash is resolved as a concurrent exception"
    );
    assert!(report.runtime_stats.resolution_timeouts >= 1);
}

/// Without a resolution timeout the crashed bystander's silence is a
/// genuine deadlock — detected and reported by the virtual-time scheduler.
/// This is exactly the gap the membership extension closes (and why crash
/// scenarios previously had to forbid raises near a crash).
#[test]
fn without_resolution_timeout_a_crashed_bystander_deadlocks_the_recovery() {
    let def = trio(HandlerVerdict::Recovered, None);
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(0.1)))
        .build();
    let d = def.clone();
    sys.spawn("crasher", move |ctx| {
        ctx.enter(&d, "a", |rc| {
            rc.work(secs(0.5))?;
            rc.crash_stop()
        })
        .map(|_| ())
    });
    let d = def.clone();
    sys.spawn("bystander", move |ctx| {
        ctx.enter(&d, "b", |rc| rc.work(secs(60.0))).map(|_| ())
    });
    sys.spawn("raiser", move |ctx| {
        ctx.enter(&def, "c", |rc| {
            rc.work(secs(1.0))?;
            rc.raise(Exception::new("e2"))
        })
        .map(|_| ())
    });
    let report = sys.run();
    assert!(
        matches!(report.results[2].1, Err(RuntimeError::Deadlock(_))),
        "unbounded collection must deadlock on a crashed peer: {:?}",
        report.results[2].1
    );
}

/// A slow-but-live peer whose announcements arrive within the bound is
/// not suspected: no timeout, no view change, clean success.
#[test]
fn bounded_wait_does_not_misfire_on_slow_peers() {
    let def = trio(HandlerVerdict::Recovered, Some(RESOLUTION_TIMEOUT));
    let mut sys = System::builder()
        .latency(LatencyModel::Fixed(secs(RESOLUTION_TIMEOUT / 4.0)))
        .build();
    let d = def.clone();
    sys.spawn("a", move |ctx| {
        let outcome = ctx.enter(&d, "a", |rc| rc.work(secs(60.0)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let d = def.clone();
    sys.spawn("b", move |ctx| {
        let outcome = ctx.enter(&d, "b", |rc| rc.work(secs(60.0)))?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    sys.spawn("raiser", move |ctx| {
        let outcome = ctx.enter(&def, "c", |rc| {
            rc.work(secs(0.1))?;
            rc.raise(Exception::new("e2"))
        })?;
        assert_eq!(outcome, ActionOutcome::Success);
        Ok(())
    });
    let report = sys.run();
    report.expect_ok();
    assert_eq!(report.runtime_stats.resolution_timeouts, 0);
    assert_eq!(report.runtime_stats.view_changes, 0);
}
