//! Transactional external objects (§2.2, §3.1 "External Objects") with
//! simulation-mediated, deterministic acquisition.
//!
//! Objects external to a CA action "can hence be shared with other actions
//! concurrently, must be atomic and individually responsible for their own
//! integrity". Each [`SharedObject`] therefore implements its own little
//! transaction stack:
//!
//! * the first access by an action *acquires* the object and opens a
//!   transaction layer initialised from the committed (or enclosing) state;
//! * a nested action opens a sub-layer over its parent's layer — CA actions
//!   are "a disciplined approach to using multi-threaded nested
//!   transactions";
//! * on successful completion the layer commits into its parent (or the
//!   committed state); on abort/undo the layer is discarded, restoring the
//!   prior state;
//! * when recovery begins the object is *informed of the exception*
//!   (§3.3.2: "inform external objects … of the exception") and records it;
//! * an object may be declared non-undoable, in which case rolling it back
//!   fails and the signalling algorithm converts the undo exception µ into
//!   the failure exception ƒ (§3.4).
//!
//! # Determinism
//!
//! Access arbitration is mediated through the virtual-time simulation.
//! Every access first *registers* the requesting thread in the object's
//! waiter queue; attempts happen on the requester's **quantum grid** —
//! the scheduler-visible instants `registration + k·OBJECT_QUANTUM`
//! (one millisecond of virtual time per tick), `k ≥ 1` — and a request
//! is granted only when
//!
//! 1. every open transaction layer belongs to the requester's action chain
//!    (no competing holder),
//! 2. the requester is the **minimum** waiter by
//!    `(registration virtual time, thread id)` among the waiters
//!    compatible with the open layers, and
//! 3. no grant, release or cancellation has already happened on this object
//!    at the *current* virtual instant (strict `<` gating).
//!
//! Because virtual time only advances when every participant is blocked,
//! all same-instant registrations are present in the queue before any of
//! them can be granted a quantum later, so the grant order is a pure
//! function of `(registration virtual time, participant id)` —
//! independent of wall-clock thread scheduling. Condition 3 makes decisions
//! taken at instant *t* insensitive to the wall-clock order of other
//! object operations happening at *t*: they are observed either as "still
//! pending" or as "done at *t*", and both verdicts deny the grant. The
//! access itself (the closure over the working state) executes under the
//! same lock as the grant, so no competing operation can interleave.
//!
//! ## Wake-on-release scheduling
//!
//! Conditions 1–3 only change at *arbitration events* — a grant, a layer
//! pop (release), a cancellation, or a registration. Waiters therefore do
//! **not** poll their quantum grid: they park on the simulation
//! ([`caa_simnet::Endpoint::park_wait`]) and every event recomputes the
//! one waiter that can now win — the minimum compatible waiter — and
//! schedules a doorbell ([`caa_simnet::Network::schedule_wake`]) at the
//! first tick of **that waiter's own grid** strictly after the event.
//! Every granted access is thereby granted at exactly the instant the
//! original polling design would have granted it (the winner's first
//! on-grid attempt that post-dates the enabling event), so traces are
//! byte-identical — while the per-tick retry wake-ups of every blocked
//! waiter disappear. A scheduled attempt that a later same-instant event
//! invalidates simply fails its (authoritative) `try_access` re-check and
//! re-parks; failed attempts set no gate and are invisible to traces,
//! exactly as under polling.
//!
//! Layer pops are commutative under same-instant cross-thread races: a
//! commit splices the owning action's layer out of the stack wherever it
//! sits and merges downward, and a rollback truncates the layer **and every
//! layer above it** (all necessarily descendants, whose effects §3.3.1
//! rolls back with their aborting ancestor). Every pop pair —
//! commit/commit, commit/rollback, rollback/rollback — therefore reaches
//! the same final state in either wall-clock order, so the committed state
//! is as replay-deterministic as the grant order.

use std::fmt;
use std::sync::Arc;

use caa_core::ids::{ActionId, ThreadId};
use caa_core::time::{VirtualDuration, VirtualInstant};
use parking_lot::Mutex;

/// Arbitration quantum: every access is granted on a tick of the
/// requester's quantum grid (`registration + k·OBJECT_QUANTUM`, `k ≥ 1`),
/// so every access costs at least one quantum of virtual time and all
/// grant decisions happen at scheduler-visible instants.
pub(crate) const OBJECT_QUANTUM: VirtualDuration = VirtualDuration::from_millis(1);

/// A wake-up the arbitration computed for the next eligible waiter:
/// `(thread, instant, wait epoch)`, forwarded by the caller to
/// [`caa_simnet::Network::schedule_wake`]. The epoch is the one the
/// waiter registered with ([`caa_simnet::Endpoint::begin_wait`]), so a
/// wake computed just before the waiter abandoned its request cannot
/// ring into a later, unrelated wait. `None` when no waiter can
/// currently win (the next arbitration event will recompute).
pub(crate) type Wake = Option<(ThreadId, VirtualInstant, u64)>;

/// First tick of the grid anchored at `registered_at` strictly after
/// `after` — the earliest instant the old per-quantum polling loop would
/// have attempted (and, conditions holding, been granted) an access.
fn next_attempt_tick(registered_at: VirtualInstant, after: VirtualInstant) -> VirtualInstant {
    let quantum = OBJECT_QUANTUM.as_nanos();
    let anchor = registered_at.as_nanos();
    let after = after.as_nanos();
    let k = if after <= anchor {
        1
    } else {
        (after - anchor) / quantum + 1
    };
    VirtualInstant::from_nanos(anchor.saturating_add(k.saturating_mul(quantum)))
}

/// Errors reported by object transaction control.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ObjectError {
    /// The action does not currently hold this object.
    NotAcquired {
        /// The object's name.
        object: String,
    },
    /// Rollback was requested but the object is not undoable.
    UndoImpossible {
        /// The object's name.
        object: String,
    },
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::NotAcquired { object } => {
                write!(f, "object {object} is not held by this action")
            }
            ObjectError::UndoImpossible { object } => {
                write!(f, "object {object} cannot undo its effects")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

struct TxLayer<T> {
    owner: ActionId,
    working: T,
    dirty: bool,
}

/// One pending acquisition request.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Waiter {
    /// Virtual time of registration (primary grant key; a thread has at
    /// most one outstanding request per object, so `(registered_at,
    /// thread)` identifies the request).
    registered_at: VirtualInstant,
    /// The requesting thread (tie-break for same-instant registrations).
    thread: ThreadId,
    /// The requester's action chain (outermost first, requesting action
    /// last). A waiter only competes for a grant while every open layer
    /// belongs to its chain; incompatible waiters do not block compatible
    /// ones (otherwise a competing queue-head would deadlock against the
    /// current holder's own re-accesses).
    chain: Vec<ActionId>,
    /// The wait epoch the requester parks under
    /// ([`caa_simnet::Endpoint::begin_wait`]); carried in every [`Wake`]
    /// computed for this waiter so stale wakes cannot target a later wait.
    epoch: u64,
}

impl Waiter {
    fn key(&self) -> (VirtualInstant, ThreadId) {
        (self.registered_at, self.thread)
    }
}

struct ObjectInner<T> {
    committed: T,
    layers: Vec<TxLayer<T>>,
    /// Exceptions this object has been informed of (names), most recent
    /// last. Cleared on commit of the outermost layer.
    informed: Vec<String>,
    /// Set when a failure exception left possibly-erroneous state behind.
    tainted: bool,
    /// Pending acquisition requests, granted in `(registered_at, thread)`
    /// order.
    waiters: Vec<Waiter>,
    /// Latest virtual instant at which a request was granted; at most one
    /// grant per object per instant keeps same-instant accesses ordered.
    last_grant_at: Option<VirtualInstant>,
    /// Latest virtual instant at which a layer was popped; a release at
    /// instant `t` only enables grants strictly after `t`.
    last_release_at: Option<VirtualInstant>,
    /// Latest virtual instant at which a waiter was cancelled (recovery
    /// interrupted its wait); gates grants exactly like a release.
    last_cancel_at: Option<VirtualInstant>,
}

struct ObjectShared<T> {
    /// Interned: shared with every `ObjectAcquired` event.
    name: Arc<str>,
    undoable: bool,
    state: Mutex<ObjectInner<T>>,
}

/// Outcome of one arbitration attempt (see [`SharedObject`] internals).
pub(crate) enum AccessOutcome<R> {
    /// Conditions not met; park until an arbitration event schedules the
    /// next attempt.
    NotYet,
    /// Granted and executed. `opened` is the number of transaction layers
    /// newly opened for the requesting chain (> 0 exactly on acquisition).
    Done {
        /// Closure result.
        value: R,
        /// Newly opened layers.
        opened: usize,
        /// Follow-up wake-up for the next eligible waiter, if any (a
        /// grant is an arbitration event).
        wake: Wake,
    },
}

/// The next waiter that can win under the minimum-compatible-waiter rule
/// given the current layers, and the first tick of its grid strictly
/// after every grant gate — the wake every arbitration event schedules.
///
/// The gates are folded in (not just `now`) because an object can outlive
/// the [`System`](crate::System) that last touched it: a fresh system's
/// clock restarts at the epoch while the object still carries the old
/// run's gate stamps, and the polling design this reproduces kept
/// attempting every quantum until the grid marched past them.
fn winner_wake<T>(inner: &ObjectInner<T>, now: VirtualInstant) -> Wake {
    let now = [
        inner.last_grant_at,
        inner.last_release_at,
        inner.last_cancel_at,
    ]
    .iter()
    .flatten()
    .copied()
    .fold(now, VirtualInstant::max);
    let mut best: Option<&Waiter> = None;
    for waiter in &inner.waiters {
        let compatible = inner
            .layers
            .iter()
            .all(|layer| waiter.chain.contains(&layer.owner));
        if compatible && best.is_none_or(|b| waiter.key() < b.key()) {
            best = Some(waiter);
        }
    }
    best.map(|w| (w.thread, next_attempt_tick(w.registered_at, now), w.epoch))
}

/// An atomic object shared between CA actions.
///
/// Clone handles freely; all clones refer to the same object. Access from
/// within an action goes through
/// [`Ctx::read`](crate::Ctx::read) / [`Ctx::update`](crate::Ctx::update),
/// which acquire the object for the action and register it for commit,
/// rollback and exception notification. Direct snapshots for assertions are
/// available through [`SharedObject::committed`].
///
/// # Examples
///
/// ```
/// use caa_runtime::SharedObject;
///
/// let press_state = SharedObject::new("press", 0u32);
/// assert_eq!(press_state.committed(), 0);
/// assert!(press_state.is_undoable());
/// ```
pub struct SharedObject<T> {
    shared: Arc<ObjectShared<T>>,
}

impl<T> Clone for SharedObject<T> {
    fn clone(&self) -> Self {
        SharedObject {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for SharedObject<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.shared.state.lock();
        f.debug_struct("SharedObject")
            .field("name", &self.shared.name)
            .field("committed", &inner.committed)
            .field("open_layers", &inner.layers.len())
            .field("waiters", &inner.waiters.len())
            .field("tainted", &inner.tainted)
            .finish()
    }
}

fn new_inner<T>(initial: T) -> ObjectInner<T> {
    ObjectInner {
        committed: initial,
        layers: Vec::new(),
        informed: Vec::new(),
        tainted: false,
        waiters: Vec::new(),
        last_grant_at: None,
        last_release_at: None,
        last_cancel_at: None,
    }
}

impl<T: Clone + Send + 'static> SharedObject<T> {
    /// Creates an undoable object with the given committed state.
    #[must_use]
    pub fn new(name: impl Into<Arc<str>>, initial: T) -> Self {
        SharedObject {
            shared: Arc::new(ObjectShared {
                name: name.into(),
                undoable: true,
                state: Mutex::new(new_inner(initial)),
            }),
        }
    }

    /// The object's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The object's name as a shared reference (cheap to clone into
    /// events).
    #[must_use]
    pub(crate) fn name_shared(&self) -> Arc<str> {
        Arc::clone(&self.shared.name)
    }

    /// Whether rollback of this object can succeed.
    #[must_use]
    pub fn is_undoable(&self) -> bool {
        self.shared.undoable
    }

    /// Snapshot of the committed (outside-any-action) state.
    #[must_use]
    pub fn committed(&self) -> T {
        self.shared.state.lock().committed.clone()
    }

    /// Mutates the committed state directly, outside any CA action — the
    /// hook for the *environment* (e.g. the production cell's blank
    /// supplier adding a blank to the feed belt).
    ///
    /// This path is **not** arbitrated through the simulation: callers must
    /// not race it against in-action access at the same virtual instant
    /// (the production cell's environment only touches the cell before and
    /// after runs).
    ///
    /// # Errors
    ///
    /// [`ObjectError::NotAcquired`] when a CA action currently holds the
    /// object: mutating under an open transaction would violate isolation.
    pub fn mutate_committed<R>(&self, f: impl FnOnce(&mut T) -> R) -> Result<R, ObjectError> {
        let mut inner = self.shared.state.lock();
        if !inner.layers.is_empty() {
            return Err(ObjectError::NotAcquired {
                object: self.shared.name.to_string(),
            });
        }
        Ok(f(&mut inner.committed))
    }

    /// Whether a failure exception left possibly-erroneous state behind.
    #[must_use]
    pub fn is_tainted(&self) -> bool {
        self.shared.state.lock().tainted
    }

    /// The exceptions this object has been informed of since its last
    /// top-level commit (diagnostics).
    #[must_use]
    pub fn informed_exceptions(&self) -> Vec<String> {
        self.shared.state.lock().informed.clone()
    }

    /// Registers `thread` in the waiter queue at virtual time `now` with
    /// its action chain and park epoch (idempotent while the request is
    /// outstanding, refreshing the epoch).
    ///
    /// Returns the requester's **own** first attempt tick (as a [`Wake`])
    /// when the requester is currently the next eligible waiter, `None`
    /// otherwise (it then parks until an arbitration event schedules it).
    /// A registration never reschedules *other* waiters: it cannot
    /// improve their eligibility (its key is ≥ every present key), and an
    /// already scheduled winner keeps its pending — still correct —
    /// doorbell.
    pub(crate) fn enqueue_waiter(
        &self,
        thread: ThreadId,
        now: VirtualInstant,
        chain: &[ActionId],
        epoch: u64,
    ) -> Wake {
        let mut inner = self.shared.state.lock();
        match inner.waiters.iter_mut().find(|w| w.thread == thread) {
            Some(waiter) => waiter.epoch = epoch,
            None => inner.waiters.push(Waiter {
                registered_at: now,
                thread,
                chain: chain.to_vec(),
                epoch,
            }),
        }
        match winner_wake(&inner, now) {
            wake @ Some((winner, _, _)) if winner == thread => wake,
            _ => None,
        }
    }

    /// Withdraws `thread`'s pending request (coordinated recovery
    /// interrupted its wait). Gates same-instant grants like a release,
    /// and — as an arbitration event — returns the wake-up for the next
    /// eligible waiter (the cancelled thread may have been the scheduled
    /// winner).
    pub(crate) fn cancel_waiter(&self, thread: ThreadId, now: VirtualInstant) -> Wake {
        let mut inner = self.shared.state.lock();
        let before = inner.waiters.len();
        inner.waiters.retain(|w| w.thread != thread);
        if inner.waiters.len() == before {
            return None; // no pending request: not an event
        }
        inner.last_cancel_at = Some(now);
        winner_wake(&inner, now)
    }

    /// One arbitration attempt by `thread` at virtual time `now`, on
    /// behalf of the action chain `chain` (outermost first, requesting
    /// action last — never empty). On grant the missing chain layers are
    /// opened, the waiter is dequeued, and `f` is taken and run over the
    /// top working state — all under one lock, so the grant and the access
    /// are atomic. `f` is left untouched when the attempt is denied.
    pub(crate) fn try_access<R, F: FnOnce(&mut T, &mut bool) -> R>(
        &self,
        thread: ThreadId,
        now: VirtualInstant,
        chain: &[ActionId],
        f: &mut Option<F>,
    ) -> AccessOutcome<R> {
        let mut inner = self.shared.state.lock();
        // Instant gating: any same-instant grant, release or cancellation
        // (whether it already happened or is still to happen) denies this
        // attempt, making the verdict independent of wall-clock order.
        let blocked_now = [
            inner.last_grant_at,
            inner.last_release_at,
            inner.last_cancel_at,
        ]
        .iter()
        .any(|t| t.is_some_and(|t| t >= now));
        if blocked_now {
            return AccessOutcome::NotYet;
        }
        let action = *chain.last().expect("chain is never empty");
        if inner
            .layers
            .iter()
            .any(|layer| !chain.contains(&layer.owner))
        {
            return AccessOutcome::NotYet; // competing holder
        }
        // Minimum-compatible-waiter rule: among the waiters whose chains
        // are compatible with the open layers, strictly earlier
        // registrations (and, at the same instant, smaller thread ids) go
        // first. Incompatible waiters — blocked on the current holder —
        // do not outrank the holder's own chain.
        let my_key = match inner.waiters.iter().find(|w| w.thread == thread) {
            Some(w) => w.key(),
            None => return AccessOutcome::NotYet, // cancelled meanwhile
        };
        let outranked = inner.waiters.iter().any(|w| {
            w.key() < my_key
                && inner
                    .layers
                    .iter()
                    .all(|layer| w.chain.contains(&layer.owner))
        });
        if outranked {
            return AccessOutcome::NotYet;
        }
        // Granted: open the missing chain layers, run the access.
        inner.waiters.retain(|w| w.thread != thread);
        inner.last_grant_at = Some(now);
        let opened = open_missing_layers(&mut inner, chain);
        if std::env::var_os("CAA_TRACE").is_some() {
            eprintln!(
                "[obj {}] grant to {thread} for {action} at {now} (opened {opened}, depth {})",
                self.shared.name,
                inner.layers.len()
            );
        }
        let top = inner.layers.last_mut().expect("chain layer just ensured");
        debug_assert_eq!(top.owner, action);
        let mut dirty = top.dirty;
        let f = f.take().expect("closure consumed only on grant");
        let value = f(&mut top.working, &mut dirty);
        top.dirty = dirty;
        // The grant is an arbitration event: a chain-compatible waiter
        // (e.g. a sibling role of the same action) may now be eligible.
        let wake = winner_wake(&inner, now);
        AccessOutcome::Done {
            value,
            opened,
            wake,
        }
    }

    /// Directly opens transaction layers for `action` (and any enclosing
    /// actions missing one) when no competing action holds the object.
    /// Returns `false` if a competing layer exists.
    ///
    /// This is the unarbitrated path used by unit tests and internal
    /// tooling; runtime access goes through [`SharedObject::try_access`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn try_acquire(&self, action: ActionId, enclosing: &[ActionId]) -> bool {
        let mut inner = self.shared.state.lock();
        let chain: Vec<ActionId> = enclosing.iter().copied().chain([action]).collect();
        if inner
            .layers
            .iter()
            .any(|layer| !chain.contains(&layer.owner))
        {
            return false;
        }
        open_missing_layers(&mut inner, &chain);
        true
    }

    /// Reads through the layer owned by `action`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn with_working<R>(
        &self,
        action: ActionId,
        f: impl FnOnce(&mut T, &mut bool) -> R,
    ) -> Result<R, ObjectError> {
        let mut inner = self.shared.state.lock();
        match inner.layers.last_mut() {
            Some(top) if top.owner == action => {
                let mut dirty = top.dirty;
                let r = f(&mut top.working, &mut dirty);
                top.dirty = dirty;
                Ok(r)
            }
            _ => Err(ObjectError::NotAcquired {
                object: self.shared.name.to_string(),
            }),
        }
    }
}

/// Opens a layer for every chain member missing one, in chain order.
/// Returns the number of layers opened.
fn open_missing_layers<T: Clone>(inner: &mut ObjectInner<T>, chain: &[ActionId]) -> usize {
    let mut opened = 0;
    for &owner in chain {
        if inner.layers.iter().any(|l| l.owner == owner) {
            continue;
        }
        let working = inner
            .layers
            .last()
            .map_or_else(|| inner.committed.clone(), |top| top.working.clone());
        inner.layers.push(TxLayer {
            owner,
            working,
            dirty: false,
        });
        opened += 1;
    }
    opened
}

/// Action-facing transaction control, object-type erased so an action frame
/// can track heterogeneous objects.
///
/// Layer pops are *releases* — arbitration events — so the mutating
/// operations return the [`Wake`] for the next eligible waiter; the
/// calling [`Ctx`](crate::Ctx) forwards it to the network as a scheduled
/// doorbell (wake-on-release).
pub(crate) trait TxControl: Send {
    /// Stable identity of the underlying object (names need not be
    /// unique): the shared allocation's address.
    fn object_id(&self) -> usize;
    /// Commits the layer owned by `action` into the layer below it (or the
    /// committed state). Stamps the release instant for grant gating.
    fn commit(&self, action: ActionId, now: VirtualInstant) -> Result<Wake, ObjectError>;
    /// Discards the layer owned by `action`, restoring the prior state.
    /// Fails for irreversible objects whose layer was modified.
    fn rollback(&self, action: ActionId, now: VirtualInstant) -> Result<Wake, ObjectError>;
    /// Records that recovery started in the owning action (§3.3.2 "inform
    /// external objects of the exception").
    fn inform_exception(&self, action: ActionId, exception: &str);
    /// Commits the layer but marks the object tainted: a failure exception
    /// ƒ left effects that "may have not been undone completely".
    fn commit_tainted(&self, action: ActionId, now: VirtualInstant) -> Result<Wake, ObjectError>;
}

impl<T: Clone + Send + 'static> SharedObject<T> {
    /// Position of `action`'s layer, if open.
    fn layer_index(inner: &ObjectInner<T>, action: ActionId) -> Option<usize> {
        inner.layers.iter().position(|l| l.owner == action)
    }
}

impl<T: Clone + Send + 'static> TxControl for SharedObject<T> {
    fn object_id(&self) -> usize {
        Arc::as_ptr(&self.shared) as *const () as usize
    }

    fn commit(&self, action: ActionId, now: VirtualInstant) -> Result<Wake, ObjectError> {
        let mut inner = self.shared.state.lock();
        let Some(index) = Self::layer_index(&inner, action) else {
            return Err(ObjectError::NotAcquired {
                object: self.shared.name.to_string(),
            });
        };
        if std::env::var_os("CAA_TRACE").is_some() {
            eprintln!(
                "[obj {}] commit by {action} (layer {index} of {})",
                self.shared.name,
                inner.layers.len()
            );
        }
        // Splice the layer out wherever it sits and merge downward: pops of
        // a completing action's layers commute with pops of its enclosing
        // action's layers, so same-instant completions by different
        // participants reach the same final state in any wall-clock order.
        let layer = inner.layers.remove(index);
        match index.checked_sub(1).map(|i| &mut inner.layers[i]) {
            Some(parent) => {
                parent.working = layer.working;
                parent.dirty |= layer.dirty;
            }
            None => {
                inner.committed = layer.working;
                if inner.layers.is_empty() {
                    inner.informed.clear();
                }
            }
        }
        inner.last_release_at = Some(now);
        Ok(winner_wake(&inner, now))
    }

    fn rollback(&self, action: ActionId, now: VirtualInstant) -> Result<Wake, ObjectError> {
        let mut inner = self.shared.state.lock();
        let Some(index) = Self::layer_index(&inner, action) else {
            return Err(ObjectError::NotAcquired {
                object: self.shared.name.to_string(),
            });
        };
        if std::env::var_os("CAA_TRACE").is_some() {
            eprintln!(
                "[obj {}] rollback by {action} (layer {index} of {})",
                self.shared.name,
                inner.layers.len()
            );
        }
        if !self.shared.undoable && inner.layers[index..].iter().any(|l| l.dirty) {
            return Err(ObjectError::UndoImpossible {
                object: self.shared.name.to_string(),
            });
        }
        // Discard the layer AND everything above it. Any layer above was
        // opened while this one existed, so its owner's chain contains
        // `action` — it is a descendant, and §3.3.1 rolls nested effects
        // back with their aborting ancestor. This also keeps pops
        // commutative when a descendant's straggler commit races an
        // enclosing rollback at the same virtual instant: whichever order
        // the OS schedules, the descendant's working copy (which embeds
        // the rolled-back state) never reaches `committed`.
        inner.layers.truncate(index);
        inner.last_release_at = Some(now);
        Ok(winner_wake(&inner, now))
    }

    fn inform_exception(&self, action: ActionId, exception: &str) {
        let mut inner = self.shared.state.lock();
        if inner.layers.iter().any(|l| l.owner == action) {
            inner.informed.push(exception.to_owned());
        }
    }

    fn commit_tainted(&self, action: ActionId, now: VirtualInstant) -> Result<Wake, ObjectError> {
        {
            let mut inner = self.shared.state.lock();
            inner.tainted = true;
        }
        self.commit(action, now)
    }
}

/// Creates an object whose effects cannot be undone (e.g. a physical
/// actuator). Rolling it back after modification fails, which converts the
/// undo exception µ into the failure exception ƒ during signalling (§3.4).
///
/// # Examples
///
/// ```
/// use caa_runtime::objects::irreversible;
///
/// let forge = irreversible("forge", 0u32);
/// assert!(!forge.is_undoable());
/// ```
#[must_use]
pub fn irreversible<T: Clone + Send + 'static>(
    name: impl Into<Arc<str>>,
    initial: T,
) -> SharedObject<T> {
    SharedObject {
        shared: Arc::new(ObjectShared {
            name: name.into(),
            undoable: false,
            state: Mutex::new(new_inner(initial)),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(serial: u64) -> ActionId {
        ActionId::top_level(serial)
    }

    fn at(ns: u64) -> VirtualInstant {
        VirtualInstant::from_nanos(ns)
    }

    const NOW: VirtualInstant = VirtualInstant::EPOCH;

    #[test]
    fn acquire_modify_commit() {
        let obj = SharedObject::new("belt", vec![1, 2]);
        let a = aid(1);
        assert!(obj.try_acquire(a, &[]));
        obj.with_working(a, |v, dirty| {
            v.push(3);
            *dirty = true;
        })
        .unwrap();
        // Uncommitted work is invisible outside.
        assert_eq!(obj.committed(), vec![1, 2]);
        obj.commit(a, NOW).unwrap();
        assert_eq!(obj.committed(), vec![1, 2, 3]);
    }

    #[test]
    fn rollback_restores_prior_state() {
        let obj = SharedObject::new("table", 10u32);
        let a = aid(1);
        assert!(obj.try_acquire(a, &[]));
        obj.with_working(a, |v, dirty| {
            *v = 99;
            *dirty = true;
        })
        .unwrap();
        obj.rollback(a, NOW).unwrap();
        assert_eq!(obj.committed(), 10);
        assert!(!obj.is_tainted());
    }

    #[test]
    fn competing_action_must_wait() {
        let obj = SharedObject::new("press", 0u32);
        let a = aid(1);
        let b = aid(2);
        assert!(obj.try_acquire(a, &[]));
        assert!(!obj.try_acquire(b, &[]), "b is not nested inside a");
        obj.commit(a, NOW).unwrap();
        assert!(obj.try_acquire(b, &[]), "free after commit");
    }

    #[test]
    fn nested_action_layers_commit_into_parent() {
        let obj = SharedObject::new("robot", 0u32);
        let outer = aid(1);
        let inner = ActionId::nested(2, &outer);
        assert!(obj.try_acquire(outer, &[]));
        obj.with_working(outer, |v, d| {
            *v = 1;
            *d = true;
        })
        .unwrap();
        assert!(obj.try_acquire(inner, &[outer]));
        obj.with_working(inner, |v, d| {
            *v += 10;
            *d = true;
        })
        .unwrap();
        // Inner commit merges into outer's layer, not the committed state.
        obj.commit(inner, NOW).unwrap();
        assert_eq!(obj.committed(), 0);
        obj.commit(outer, NOW).unwrap();
        assert_eq!(obj.committed(), 11);
    }

    #[test]
    fn nested_rollback_preserves_parent_work() {
        let obj = SharedObject::new("robot", 0u32);
        let outer = aid(1);
        let inner = ActionId::nested(2, &outer);
        obj.try_acquire(outer, &[]);
        obj.with_working(outer, |v, d| {
            *v = 5;
            *d = true;
        })
        .unwrap();
        obj.try_acquire(inner, &[outer]);
        obj.with_working(inner, |v, d| {
            *v = 999;
            *d = true;
        })
        .unwrap();
        obj.rollback(inner, NOW).unwrap();
        obj.with_working(outer, |v, _| assert_eq!(*v, 5)).unwrap();
        obj.commit(outer, NOW).unwrap();
        assert_eq!(obj.committed(), 5);
    }

    #[test]
    fn out_of_order_pops_commute() {
        // Same-instant completions: the enclosing action's layer may be
        // committed while the nested layer is still open; the nested commit
        // then lands in the committed state. Both orders agree.
        let obj = SharedObject::new("metrics", 0u32);
        let outer = aid(1);
        let inner = ActionId::nested(2, &outer);
        obj.try_acquire(outer, &[]);
        obj.with_working(outer, |v, d| {
            *v = 1;
            *d = true;
        })
        .unwrap();
        obj.try_acquire(inner, &[outer]);
        obj.with_working(inner, |v, d| {
            *v += 10;
            *d = true;
        })
        .unwrap();
        // Outer commits first (spliced from the middle), inner second.
        obj.commit(outer, NOW).unwrap();
        obj.commit(inner, NOW).unwrap();
        assert_eq!(obj.committed(), 11, "same result as inner-then-outer");
    }

    #[test]
    fn enclosing_rollback_discards_straggler_nested_layer_in_either_order() {
        // The race: an enclosing recovery rolls back action O on one thread
        // while a straggler commit completes nested N on another, at the
        // same virtual instant. Both wall-clock orders must agree — and
        // must NOT resurrect O's rolled-back effects via N's working copy.
        let run = |nested_commit_first: bool| {
            let obj = SharedObject::new("o", 0u32);
            let outer = aid(1);
            let nested = ActionId::nested(2, &outer);
            obj.try_acquire(outer, &[]);
            obj.with_working(outer, |v, d| {
                *v = 10;
                *d = true;
            })
            .unwrap();
            obj.try_acquire(nested, &[outer]);
            obj.with_working(nested, |v, d| {
                *v += 5;
                *d = true;
            })
            .unwrap();
            if nested_commit_first {
                obj.commit(nested, NOW).unwrap();
                obj.rollback(outer, NOW).unwrap();
            } else {
                obj.rollback(outer, NOW).unwrap();
                let _ = obj.commit(nested, NOW); // straggler: layer gone
            }
            obj.committed()
        };
        assert_eq!(run(true), 0, "rolled-back effects must not survive");
        assert_eq!(run(false), 0);
        assert_eq!(run(true), run(false), "pop order must not matter");
    }

    #[test]
    fn irreversible_object_refuses_dirty_rollback() {
        let obj = irreversible("forge", 0u32);
        assert!(!obj.is_undoable());
        let a = aid(1);
        obj.try_acquire(a, &[]);
        // Clean layer can still be discarded.
        obj.rollback(a, NOW).unwrap();
        obj.try_acquire(a, &[]);
        obj.with_working(a, |v, d| {
            *v = 1;
            *d = true;
        })
        .unwrap();
        assert_eq!(
            obj.rollback(a, NOW).unwrap_err(),
            ObjectError::UndoImpossible {
                object: "forge".into()
            }
        );
    }

    #[test]
    fn tainted_commit_records_failure() {
        let obj = SharedObject::new("deposit", 0u32);
        let a = aid(1);
        obj.try_acquire(a, &[]);
        obj.with_working(a, |v, d| {
            *v = 7;
            *d = true;
        })
        .unwrap();
        obj.commit_tainted(a, NOW).unwrap();
        assert!(obj.is_tainted());
        assert_eq!(obj.committed(), 7, "ƒ leaves the erroneous effects visible");
    }

    #[test]
    fn inform_exception_is_recorded_until_commit() {
        let obj = SharedObject::new("arm1", 0u32);
        let a = aid(1);
        obj.try_acquire(a, &[]);
        obj.inform_exception(a, "l_plate");
        assert_eq!(obj.informed_exceptions(), vec!["l_plate".to_owned()]);
        obj.commit(a, NOW).unwrap();
        assert!(obj.informed_exceptions().is_empty());
    }

    #[test]
    fn operations_without_acquisition_fail() {
        let obj = SharedObject::new("lone", 0u32);
        let a = aid(1);
        assert!(matches!(
            obj.with_working(a, |_, _| ()).unwrap_err(),
            ObjectError::NotAcquired { .. }
        ));
        assert!(obj.commit(a, NOW).is_err());
        assert!(obj.rollback(a, NOW).is_err());
    }

    #[test]
    fn reacquire_by_same_action_is_idempotent() {
        let obj = SharedObject::new("belt", 0u32);
        let a = aid(1);
        assert!(obj.try_acquire(a, &[]));
        assert!(obj.try_acquire(a, &[]));
        obj.commit(a, NOW).unwrap();
        // After commit the layer is gone; commit again fails.
        assert!(obj.commit(a, NOW).is_err());
    }

    #[test]
    fn error_display() {
        let e = ObjectError::UndoImpossible {
            object: "press".into(),
        };
        assert_eq!(e.to_string(), "object press cannot undo its effects");
    }

    // ---------------- arbitration semantics ----------------

    fn tid(t: u32) -> ThreadId {
        ThreadId::new(t)
    }

    fn grant<T: Clone + Send + 'static>(
        obj: &SharedObject<T>,
        thread: ThreadId,
        now: VirtualInstant,
        action: ActionId,
    ) -> bool {
        let mut f = Some(|_: &mut T, _: &mut bool| ());
        matches!(
            obj.try_access(thread, now, &[action], &mut f),
            AccessOutcome::Done { .. }
        )
    }

    #[test]
    fn min_waiter_wins_regardless_of_attempt_order() {
        let obj = SharedObject::new("o", 0u32);
        // Both register at the same instant; the smaller thread id must win
        // even when the larger one attempts first.
        obj.enqueue_waiter(tid(2), at(0), &[aid(2)], 0);
        obj.enqueue_waiter(tid(1), at(0), &[aid(1)], 0);
        assert!(!grant(&obj, tid(2), at(1), aid(2)), "t2 is not min");
        assert!(grant(&obj, tid(1), at(1), aid(1)), "t1 is min");
    }

    #[test]
    fn earlier_registration_outranks_smaller_thread_id() {
        let obj = SharedObject::new("o", 0u32);
        obj.enqueue_waiter(tid(5), at(0), &[aid(5)], 0);
        obj.enqueue_waiter(tid(1), at(10), &[aid(1)], 0);
        assert!(!grant(&obj, tid(1), at(20), aid(1)));
        assert!(grant(&obj, tid(5), at(20), aid(5)));
    }

    #[test]
    fn at_most_one_grant_per_instant() {
        let obj = SharedObject::new("o", 0u32);
        let (a, b) = (aid(1), ActionId::nested(2, &aid(1))); // same chain
        obj.enqueue_waiter(tid(1), at(0), &[a], 0);
        obj.enqueue_waiter(tid(2), at(0), &[a, b], 0);
        assert!(grant(&obj, tid(1), at(5), a));
        // Same chain, so layers do not block t2 — but the instant does.
        let mut f = Some(|_: &mut u32, _: &mut bool| ());
        assert!(
            !matches!(
                obj.try_access(tid(2), at(5), &[a, b], &mut f),
                AccessOutcome::Done { .. }
            ),
            "second grant at the same instant must be denied"
        );
        assert!(f.is_some(), "denied attempts must not consume the closure");
        assert!(matches!(
            obj.try_access(tid(2), at(6), &[a, b], &mut f),
            AccessOutcome::Done { .. }
        ));
    }

    #[test]
    fn release_gates_same_instant_grants() {
        let obj = SharedObject::new("o", 0u32);
        let holder = aid(1);
        obj.try_acquire(holder, &[]);
        obj.enqueue_waiter(tid(2), at(0), &[aid(2)], 0);
        obj.commit(holder, at(5)).unwrap();
        assert!(
            !grant(&obj, tid(2), at(5), aid(2)),
            "release at t enables grants only strictly after t"
        );
        assert!(grant(&obj, tid(2), at(6), aid(2)));
    }

    #[test]
    fn cancellation_gates_same_instant_grants() {
        let obj = SharedObject::new("o", 0u32);
        obj.enqueue_waiter(tid(1), at(0), &[aid(1)], 0);
        obj.enqueue_waiter(tid(2), at(0), &[aid(2)], 0);
        obj.cancel_waiter(tid(1), at(5));
        assert!(!grant(&obj, tid(2), at(5), aid(2)));
        assert!(grant(&obj, tid(2), at(6), aid(2)));
    }

    #[test]
    fn incompatible_earlier_waiter_does_not_block_holder_reaccess() {
        // Priority inversion guard: a competing waiter that registered
        // first (but cannot proceed while the holder's layer is open) must
        // not outrank the holder's own re-access.
        let obj = SharedObject::new("o", 0u32);
        let holder = aid(1);
        obj.try_acquire(holder, &[]);
        obj.enqueue_waiter(tid(2), at(0), &[aid(2)], 0); // competing, earlier
        obj.enqueue_waiter(tid(1), at(10), &[holder], 0); // holder re-access
        assert!(grant(&obj, tid(1), at(11), holder));
        obj.commit(holder, at(12)).unwrap();
        assert!(grant(&obj, tid(2), at(13), aid(2)));
    }

    #[test]
    fn competing_holder_denies_grant() {
        let obj = SharedObject::new("o", 0u32);
        obj.try_acquire(aid(1), &[]);
        obj.enqueue_waiter(tid(2), at(0), &[aid(2)], 0);
        assert!(!grant(&obj, tid(2), at(3), aid(2)));
        obj.commit(aid(1), at(4)).unwrap();
        assert!(grant(&obj, tid(2), at(9), aid(2)));
    }

    #[test]
    fn access_runs_atomically_with_grant_and_reports_opened_layers() {
        let obj = SharedObject::new("o", 0u32);
        obj.enqueue_waiter(tid(1), at(0), &[aid(1)], 0);
        let mut f = Some(|v: &mut u32, d: &mut bool| {
            *v = 42;
            *d = true;
            *v
        });
        match obj.try_access(tid(1), at(1), &[aid(1)], &mut f) {
            AccessOutcome::Done { value, opened, .. } => {
                assert_eq!(value, 42);
                assert_eq!(opened, 1, "first access opens the layer");
            }
            AccessOutcome::NotYet => panic!("grant expected"),
        }
        // Re-access by the holder: no new layers.
        obj.enqueue_waiter(tid(1), at(2), &[aid(1)], 0);
        let mut f = Some(|v: &mut u32, _: &mut bool| *v);
        match obj.try_access(tid(1), at(3), &[aid(1)], &mut f) {
            AccessOutcome::Done { value, opened, .. } => {
                assert_eq!(value, 42);
                assert_eq!(opened, 0);
            }
            AccessOutcome::NotYet => panic!("holder re-access must be granted"),
        }
    }

    // ---------------- wake-on-release scheduling ----------------

    const Q: u64 = OBJECT_QUANTUM.as_nanos();

    #[test]
    fn next_attempt_tick_lands_on_the_registration_grid() {
        let r = at(500);
        // First attempt: one quantum after registration.
        assert_eq!(next_attempt_tick(r, at(500)), at(500 + Q));
        // An event inside the first quantum does not delay the attempt.
        assert_eq!(next_attempt_tick(r, at(500 + Q - 1)), at(500 + Q));
        // An event exactly on a grid tick pushes to the next tick
        // (strictly-after semantics, matching the `>= now` gate).
        assert_eq!(next_attempt_tick(r, at(500 + Q)), at(500 + 2 * Q));
        // Later events land on the first grid tick after them.
        assert_eq!(next_attempt_tick(r, at(500 + 2 * Q + 7)), at(500 + 3 * Q));
    }

    #[test]
    fn enqueue_schedules_only_the_eligible_minimum_waiter() {
        let obj = SharedObject::new("o", 0u32);
        assert_eq!(
            obj.enqueue_waiter(tid(2), at(0), &[aid(2)], 7),
            Some((tid(2), at(Q), 7)),
            "first waiter on a free object schedules its first tick"
        );
        assert_eq!(
            obj.enqueue_waiter(tid(5), at(0), &[aid(5)], 0),
            None,
            "outranked same-instant waiter parks unscheduled"
        );
        assert_eq!(
            obj.enqueue_waiter(tid(1), at(0), &[aid(1)], 9),
            Some((tid(1), at(Q), 9)),
            "a smaller same-instant thread id displaces the winner"
        );
    }

    #[test]
    fn enqueue_against_a_competing_holder_parks_unscheduled() {
        let obj = SharedObject::new("o", 0u32);
        obj.try_acquire(aid(1), &[]);
        assert_eq!(
            obj.enqueue_waiter(tid(2), at(0), &[aid(2)], 0),
            None,
            "incompatible waiter must wait for the release event"
        );
        // The release schedules the parked waiter on its own grid.
        let wake = obj.commit(aid(1), at(5)).unwrap();
        assert_eq!(
            wake,
            Some((tid(2), at(Q), 0)),
            "woken at its first grid tick after the release"
        );
    }

    #[test]
    fn release_after_the_first_tick_schedules_the_next_grid_tick() {
        let obj = SharedObject::new("o", 0u32);
        obj.try_acquire(aid(1), &[]);
        obj.enqueue_waiter(tid(2), at(100), &[aid(2)], 0);
        // Holder releases two-and-a-bit quanta later: the waiter's next
        // on-grid attempt is strictly after the release instant.
        let wake = obj.commit(aid(1), at(100 + 2 * Q + 3)).unwrap();
        assert_eq!(wake, Some((tid(2), at(100 + 3 * Q), 0)));
    }

    #[test]
    fn cancel_of_the_scheduled_winner_promotes_the_next_waiter() {
        let obj = SharedObject::new("o", 0u32);
        obj.enqueue_waiter(tid(1), at(0), &[aid(1)], 0);
        obj.enqueue_waiter(tid(2), at(10), &[aid(2)], 0);
        let wake = obj.cancel_waiter(tid(1), at(20));
        assert_eq!(wake, Some((tid(2), at(10 + Q), 0)));
        assert_eq!(
            obj.cancel_waiter(tid(1), at(21)),
            None,
            "cancelling an absent waiter is not an arbitration event"
        );
    }

    #[test]
    fn grant_schedules_a_chain_compatible_follower() {
        let obj = SharedObject::new("o", 0u32);
        let a = aid(1);
        let nested = ActionId::nested(2, &a);
        obj.enqueue_waiter(tid(1), at(0), &[a], 0);
        obj.enqueue_waiter(tid(2), at(0), &[a, nested], 0);
        let mut f = Some(|_: &mut u32, _: &mut bool| ());
        match obj.try_access(tid(1), at(Q), &[a], &mut f) {
            AccessOutcome::Done { wake, .. } => {
                // t2 shares the chain, so the grant event schedules it for
                // the next tick (the same-instant gate forbids this one).
                assert_eq!(wake, Some((tid(2), at(2 * Q), 0)));
            }
            AccessOutcome::NotYet => panic!("grant expected"),
        }
    }

    #[test]
    fn grant_does_not_schedule_incompatible_waiters() {
        let obj = SharedObject::new("o", 0u32);
        obj.enqueue_waiter(tid(1), at(0), &[aid(1)], 0);
        obj.enqueue_waiter(tid(2), at(0), &[aid(2)], 0);
        let mut f = Some(|_: &mut u32, _: &mut bool| ());
        match obj.try_access(tid(1), at(Q), &[aid(1)], &mut f) {
            AccessOutcome::Done { wake, .. } => {
                assert_eq!(wake, None, "competing waiter stays parked until release");
            }
            AccessOutcome::NotYet => panic!("grant expected"),
        }
    }
}
