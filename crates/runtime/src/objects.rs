//! Transactional external objects (§2.2, §3.1 "External Objects").
//!
//! Objects external to a CA action "can hence be shared with other actions
//! concurrently, must be atomic and individually responsible for their own
//! integrity". Each [`SharedObject`] therefore implements its own little
//! transaction stack:
//!
//! * the first access by an action *acquires* the object and opens a
//!   transaction layer initialised from the committed (or enclosing) state;
//! * a nested action opens a sub-layer over its parent's layer — CA actions
//!   are "a disciplined approach to using multi-threaded nested
//!   transactions";
//! * on successful completion the layer commits into its parent (or the
//!   committed state); on abort/undo the layer is discarded, restoring the
//!   prior state;
//! * when recovery begins the object is *informed of the exception*
//!   (§3.3.2: "inform external objects … of the exception") and records it;
//! * an object may be declared non-undoable, in which case rolling it back
//!   fails and the signalling algorithm converts the undo exception µ into
//!   the failure exception ƒ (§3.4).
//!
//! Competing actions wait for the object via scheduler-visible polling, so
//! virtual time keeps advancing while they queue.

use std::fmt;
use std::sync::Arc;

use caa_core::ids::ActionId;
use parking_lot::Mutex;

/// Errors reported by object transaction control.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ObjectError {
    /// The action does not currently hold this object.
    NotAcquired {
        /// The object's name.
        object: String,
    },
    /// Rollback was requested but the object is not undoable.
    UndoImpossible {
        /// The object's name.
        object: String,
    },
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::NotAcquired { object } => {
                write!(f, "object {object} is not held by this action")
            }
            ObjectError::UndoImpossible { object } => {
                write!(f, "object {object} cannot undo its effects")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

struct TxLayer<T> {
    owner: ActionId,
    working: T,
    dirty: bool,
}

struct ObjectInner<T> {
    committed: T,
    layers: Vec<TxLayer<T>>,
    /// Exceptions this object has been informed of (names), most recent
    /// last. Cleared on commit of the outermost layer.
    informed: Vec<String>,
    /// Set when a failure exception left possibly-erroneous state behind.
    tainted: bool,
}

struct ObjectShared<T> {
    name: String,
    undoable: bool,
    state: Mutex<ObjectInner<T>>,
}

/// An atomic object shared between CA actions.
///
/// Clone handles freely; all clones refer to the same object. Access from
/// within an action goes through
/// [`Ctx::read`](crate::Ctx::read) / [`Ctx::update`](crate::Ctx::update),
/// which acquire the object for the action and register it for commit,
/// rollback and exception notification. Direct snapshots for assertions are
/// available through [`SharedObject::committed`].
///
/// # Examples
///
/// ```
/// use caa_runtime::SharedObject;
///
/// let press_state = SharedObject::new("press", 0u32);
/// assert_eq!(press_state.committed(), 0);
/// assert!(press_state.is_undoable());
/// ```
pub struct SharedObject<T> {
    shared: Arc<ObjectShared<T>>,
}

impl<T> Clone for SharedObject<T> {
    fn clone(&self) -> Self {
        SharedObject {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for SharedObject<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.shared.state.lock();
        f.debug_struct("SharedObject")
            .field("name", &self.shared.name)
            .field("committed", &inner.committed)
            .field("open_layers", &inner.layers.len())
            .field("tainted", &inner.tainted)
            .finish()
    }
}

impl<T: Clone + Send + 'static> SharedObject<T> {
    /// Creates an undoable object with the given committed state.
    #[must_use]
    pub fn new(name: impl Into<String>, initial: T) -> Self {
        SharedObject {
            shared: Arc::new(ObjectShared {
                name: name.into(),
                undoable: true,
                state: Mutex::new(ObjectInner {
                    committed: initial,
                    layers: Vec::new(),
                    informed: Vec::new(),
                    tainted: false,
                }),
            }),
        }
    }

    /// The object's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Whether rollback of this object can succeed.
    #[must_use]
    pub fn is_undoable(&self) -> bool {
        self.shared.undoable
    }

    /// Snapshot of the committed (outside-any-action) state.
    #[must_use]
    pub fn committed(&self) -> T {
        self.shared.state.lock().committed.clone()
    }

    /// Mutates the committed state directly, outside any CA action — the
    /// hook for the *environment* (e.g. the production cell's blank
    /// supplier adding a blank to the feed belt).
    ///
    /// # Errors
    ///
    /// [`ObjectError::NotAcquired`] when a CA action currently holds the
    /// object: mutating under an open transaction would violate isolation.
    pub fn mutate_committed<R>(&self, f: impl FnOnce(&mut T) -> R) -> Result<R, ObjectError> {
        let mut inner = self.shared.state.lock();
        if !inner.layers.is_empty() {
            return Err(ObjectError::NotAcquired {
                object: self.shared.name.clone(),
            });
        }
        Ok(f(&mut inner.committed))
    }

    /// Whether a failure exception left possibly-erroneous state behind.
    #[must_use]
    pub fn is_tainted(&self) -> bool {
        self.shared.state.lock().tainted
    }

    /// The exceptions this object has been informed of since its last
    /// top-level commit (diagnostics).
    #[must_use]
    pub fn informed_exceptions(&self) -> Vec<String> {
        self.shared.state.lock().informed.clone()
    }

    /// Attempts to acquire the object for `action`, opening transaction
    /// layers as needed. Returns `false` when a *competing* (non-enclosing)
    /// action holds it — the caller should wait and retry in
    /// scheduler-visible time.
    ///
    /// `enclosing` must list the action ids on the caller's action stack
    /// (outermost first, excluding `action` itself). A layer is opened for
    /// **every** enclosing action missing one, so a nested action's commit
    /// always lands under its ancestors' control: if an ancestor later
    /// aborts, the nested effects roll back with it (nested-transaction
    /// semantics, §2.2).
    pub(crate) fn try_acquire(&self, action: ActionId, enclosing: &[ActionId]) -> bool {
        let mut inner = self.shared.state.lock();
        // Every already-open layer must belong to our action chain;
        // anything else is a competing action.
        let chain: Vec<ActionId> = enclosing.iter().copied().chain([action]).collect();
        if inner
            .layers
            .iter()
            .any(|layer| !chain.contains(&layer.owner))
        {
            return false;
        }
        // Open missing layers in chain order (existing layers are a
        // chain-order prefix by construction).
        for &owner in &chain {
            if inner.layers.iter().any(|l| l.owner == owner) {
                continue;
            }
            let working = inner
                .layers
                .last()
                .map_or_else(|| inner.committed.clone(), |top| top.working.clone());
            inner.layers.push(TxLayer {
                owner,
                working,
                dirty: false,
            });
            if std::env::var_os("CAA_TRACE").is_some() {
                eprintln!(
                    "[obj {}] open layer for {owner} (depth {})",
                    self.shared.name,
                    inner.layers.len()
                );
            }
        }
        true
    }

    /// Reads through the layer owned by `action`.
    pub(crate) fn with_working<R>(
        &self,
        action: ActionId,
        f: impl FnOnce(&mut T, &mut bool) -> R,
    ) -> Result<R, ObjectError> {
        let mut inner = self.shared.state.lock();
        match inner.layers.last_mut() {
            Some(top) if top.owner == action => {
                let mut dirty = top.dirty;
                let r = f(&mut top.working, &mut dirty);
                top.dirty = dirty;
                Ok(r)
            }
            _ => Err(ObjectError::NotAcquired {
                object: self.shared.name.clone(),
            }),
        }
    }
}

/// Action-facing transaction control, object-type erased so an action frame
/// can track heterogeneous objects.
pub(crate) trait TxControl: Send {
    /// The object's name (diagnostics).
    fn object_name(&self) -> &str;
    /// Commits the layer owned by `action` into its parent (or the
    /// committed state).
    fn commit(&self, action: ActionId) -> Result<(), ObjectError>;
    /// Discards the layer owned by `action`, restoring the prior state.
    /// Fails for irreversible objects whose layer was modified.
    fn rollback(&self, action: ActionId) -> Result<(), ObjectError>;
    /// Records that recovery started in the owning action (§3.3.2 "inform
    /// external objects of the exception").
    fn inform_exception(&self, action: ActionId, exception: &str);
    /// Commits the layer but marks the object tainted: a failure exception
    /// ƒ left effects that "may have not been undone completely".
    fn commit_tainted(&self, action: ActionId) -> Result<(), ObjectError>;
}

impl<T: Clone + Send + 'static> TxControl for SharedObject<T> {
    fn object_name(&self) -> &str {
        &self.shared.name
    }

    fn commit(&self, action: ActionId) -> Result<(), ObjectError> {
        let mut inner = self.shared.state.lock();
        if std::env::var_os("CAA_TRACE").is_some() {
            eprintln!(
                "[obj {}] commit by {action}, top owner {:?}",
                self.shared.name,
                inner.layers.last().map(|l| l.owner)
            );
        }
        match inner.layers.last() {
            Some(top) if top.owner == action => {
                let layer = inner.layers.pop().expect("just peeked");
                match inner.layers.last_mut() {
                    Some(parent) => {
                        parent.working = layer.working;
                        parent.dirty |= layer.dirty;
                    }
                    None => {
                        inner.committed = layer.working;
                        inner.informed.clear();
                    }
                }
                Ok(())
            }
            _ => Err(ObjectError::NotAcquired {
                object: self.shared.name.clone(),
            }),
        }
    }

    fn rollback(&self, action: ActionId) -> Result<(), ObjectError> {
        let mut inner = self.shared.state.lock();
        if std::env::var_os("CAA_TRACE").is_some() {
            eprintln!(
                "[obj {}] rollback by {action}, top owner {:?}",
                self.shared.name,
                inner.layers.last().map(|l| l.owner)
            );
        }
        match inner.layers.last() {
            Some(top) if top.owner == action => {
                if !self.shared.undoable && top.dirty {
                    return Err(ObjectError::UndoImpossible {
                        object: self.shared.name.clone(),
                    });
                }
                inner.layers.pop();
                Ok(())
            }
            _ => Err(ObjectError::NotAcquired {
                object: self.shared.name.clone(),
            }),
        }
    }

    fn inform_exception(&self, action: ActionId, exception: &str) {
        let mut inner = self.shared.state.lock();
        if inner.layers.last().is_some_and(|top| top.owner == action) {
            inner.informed.push(exception.to_owned());
        }
    }

    fn commit_tainted(&self, action: ActionId) -> Result<(), ObjectError> {
        {
            let mut inner = self.shared.state.lock();
            inner.tainted = true;
        }
        self.commit(action)
    }
}

/// Creates an object whose effects cannot be undone (e.g. a physical
/// actuator). Rolling it back after modification fails, which converts the
/// undo exception µ into the failure exception ƒ during signalling (§3.4).
///
/// # Examples
///
/// ```
/// use caa_runtime::objects::irreversible;
///
/// let forge = irreversible("forge", 0u32);
/// assert!(!forge.is_undoable());
/// ```
#[must_use]
pub fn irreversible<T: Clone + Send + 'static>(
    name: impl Into<String>,
    initial: T,
) -> SharedObject<T> {
    SharedObject {
        shared: Arc::new(ObjectShared {
            name: name.into(),
            undoable: false,
            state: Mutex::new(ObjectInner {
                committed: initial,
                layers: Vec::new(),
                informed: Vec::new(),
                tainted: false,
            }),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(serial: u64) -> ActionId {
        ActionId::top_level(serial)
    }

    #[test]
    fn acquire_modify_commit() {
        let obj = SharedObject::new("belt", vec![1, 2]);
        let a = aid(1);
        assert!(obj.try_acquire(a, &[]));
        obj.with_working(a, |v, dirty| {
            v.push(3);
            *dirty = true;
        })
        .unwrap();
        // Uncommitted work is invisible outside.
        assert_eq!(obj.committed(), vec![1, 2]);
        obj.commit(a).unwrap();
        assert_eq!(obj.committed(), vec![1, 2, 3]);
    }

    #[test]
    fn rollback_restores_prior_state() {
        let obj = SharedObject::new("table", 10u32);
        let a = aid(1);
        assert!(obj.try_acquire(a, &[]));
        obj.with_working(a, |v, dirty| {
            *v = 99;
            *dirty = true;
        })
        .unwrap();
        obj.rollback(a).unwrap();
        assert_eq!(obj.committed(), 10);
        assert!(!obj.is_tainted());
    }

    #[test]
    fn competing_action_must_wait() {
        let obj = SharedObject::new("press", 0u32);
        let a = aid(1);
        let b = aid(2);
        assert!(obj.try_acquire(a, &[]));
        assert!(!obj.try_acquire(b, &[]), "b is not nested inside a");
        obj.commit(a).unwrap();
        assert!(obj.try_acquire(b, &[]), "free after commit");
    }

    #[test]
    fn nested_action_layers_commit_into_parent() {
        let obj = SharedObject::new("robot", 0u32);
        let outer = aid(1);
        let inner = ActionId::nested(2, &outer);
        assert!(obj.try_acquire(outer, &[]));
        obj.with_working(outer, |v, d| {
            *v = 1;
            *d = true;
        })
        .unwrap();
        assert!(obj.try_acquire(inner, &[outer]));
        obj.with_working(inner, |v, d| {
            *v += 10;
            *d = true;
        })
        .unwrap();
        // Inner commit merges into outer's layer, not the committed state.
        obj.commit(inner).unwrap();
        assert_eq!(obj.committed(), 0);
        obj.commit(outer).unwrap();
        assert_eq!(obj.committed(), 11);
    }

    #[test]
    fn nested_rollback_preserves_parent_work() {
        let obj = SharedObject::new("robot", 0u32);
        let outer = aid(1);
        let inner = ActionId::nested(2, &outer);
        obj.try_acquire(outer, &[]);
        obj.with_working(outer, |v, d| {
            *v = 5;
            *d = true;
        })
        .unwrap();
        obj.try_acquire(inner, &[outer]);
        obj.with_working(inner, |v, d| {
            *v = 999;
            *d = true;
        })
        .unwrap();
        obj.rollback(inner).unwrap();
        obj.with_working(outer, |v, _| assert_eq!(*v, 5)).unwrap();
        obj.commit(outer).unwrap();
        assert_eq!(obj.committed(), 5);
    }

    #[test]
    fn irreversible_object_refuses_dirty_rollback() {
        let obj = irreversible("forge", 0u32);
        assert!(!obj.is_undoable());
        let a = aid(1);
        obj.try_acquire(a, &[]);
        // Clean layer can still be discarded.
        obj.rollback(a).unwrap();
        obj.try_acquire(a, &[]);
        obj.with_working(a, |v, d| {
            *v = 1;
            *d = true;
        })
        .unwrap();
        assert_eq!(
            obj.rollback(a).unwrap_err(),
            ObjectError::UndoImpossible {
                object: "forge".into()
            }
        );
    }

    #[test]
    fn tainted_commit_records_failure() {
        let obj = SharedObject::new("deposit", 0u32);
        let a = aid(1);
        obj.try_acquire(a, &[]);
        obj.with_working(a, |v, d| {
            *v = 7;
            *d = true;
        })
        .unwrap();
        obj.commit_tainted(a).unwrap();
        assert!(obj.is_tainted());
        assert_eq!(obj.committed(), 7, "ƒ leaves the erroneous effects visible");
    }

    #[test]
    fn inform_exception_is_recorded_until_commit() {
        let obj = SharedObject::new("arm1", 0u32);
        let a = aid(1);
        obj.try_acquire(a, &[]);
        obj.inform_exception(a, "l_plate");
        assert_eq!(obj.informed_exceptions(), vec!["l_plate".to_owned()]);
        obj.commit(a).unwrap();
        assert!(obj.informed_exceptions().is_empty());
    }

    #[test]
    fn operations_without_acquisition_fail() {
        let obj = SharedObject::new("lone", 0u32);
        let a = aid(1);
        assert!(matches!(
            obj.with_working(a, |_, _| ()).unwrap_err(),
            ObjectError::NotAcquired { .. }
        ));
        assert!(obj.commit(a).is_err());
        assert!(obj.rollback(a).is_err());
    }

    #[test]
    fn reacquire_by_same_action_is_idempotent() {
        let obj = SharedObject::new("belt", 0u32);
        let a = aid(1);
        assert!(obj.try_acquire(a, &[]));
        assert!(obj.try_acquire(a, &[]));
        obj.commit(a).unwrap();
        // After commit the layer is gone; commit again fails.
        assert!(obj.commit(a).is_err());
    }

    #[test]
    fn error_display() {
        let e = ObjectError::UndoImpossible {
            object: "press".into(),
        };
        assert_eq!(e.to_string(), "object press cannot undo its effects");
    }
}
