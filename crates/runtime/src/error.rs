//! Errors and the non-local control flow of role bodies.
//!
//! Rust has no asynchronous exceptions, so the paper's Ada 95 asynchronous
//! transfer of control (ATC) is replaced by a `Result`-based design: every
//! runtime operation a role performs returns [`Step`], and when coordinated
//! recovery must take over, the operation returns `Err(`[`Flow`]`)` which the
//! role body propagates with `?`. The action machinery catches the [`Flow`]
//! at the action boundary and runs the §3.3.2 protocol; role code never
//! inspects it.

use std::error::Error;
use std::fmt;

use caa_core::exception::Exception;
use caa_core::ids::ActionId;
use caa_simnet::SimError;

/// A unit of fallible role progress. `Err` means control is being
/// transferred to the coordinated exception-handling machinery; propagate it
/// with `?`.
pub type Step<T = ()> = Result<T, Flow>;

/// Opaque token transferring control from a role body to the CA-action
/// runtime.
///
/// Role bodies obtain one from [`Ctx::raise`](crate::Ctx::raise) or from any
/// runtime operation interrupted by a concurrent exception, and must
/// propagate it with `?`. Constructing or swallowing a `Flow` outside the
/// runtime is not possible.
pub struct Flow {
    pub(crate) unwind: Unwind,
}

impl fmt::Debug for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Flow({:?})", self.unwind)
    }
}

impl Flow {
    pub(crate) fn new(unwind: Unwind) -> Self {
        Flow { unwind }
    }

    /// Whether this transfer of control is a simulated crash-stop.
    ///
    /// Fault-injection harnesses use this to tell an injected process death
    /// apart from ordinary recovery flow at a thread's top level: a crash
    /// `Flow` escaping the outermost action is the point at which a restart
    /// (and possibly an epoch-numbered rejoin via
    /// [`Ctx::rejoin`](crate::Ctx::rejoin)) may be simulated.
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self.unwind, Unwind::Crash)
    }
}

/// Internal reason a role body is being unwound.
#[derive(Debug)]
pub(crate) enum Unwind {
    /// The role itself raised an exception in its active action.
    Raise(Exception),
    /// A peer's exception (already recorded at the active frame) requires
    /// this role to suspend and join recovery of its active action.
    Suspend,
    /// Recovery is required at the enclosing action `target`; frames below
    /// it must abort on the way out. `eab` carries the exception raised by
    /// the most recently executed abortion handler (only the handler of the
    /// action directly inside `target` survives, per §3.3.1).
    Outer {
        target: ActionId,
        eab: Option<Exception>,
    },
    /// The participant crash-stopped (simulated process death): frames are
    /// discarded silently on the way out, no handlers run, no messages are
    /// sent. Terminates the thread with [`RuntimeError::Crashed`].
    Crash,
    /// Unrecoverable error; propagates to the thread's top level.
    Fatal(RuntimeError),
}

/// Unrecoverable failure of a participating thread.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The simulation can make no further progress (virtual mode only) —
    /// the condition Theorem 1 proves the protocols never create.
    Deadlock(String),
    /// A role was entered by a thread that is not bound to it.
    RoleMismatch {
        /// The action being entered.
        action: String,
        /// The role the thread tried to play.
        role: String,
    },
    /// An action was entered with a role name not declared in its
    /// definition.
    UnknownRole {
        /// The action being entered.
        action: String,
        /// The undeclared role name.
        role: String,
    },
    /// An operation that requires an active action was invoked outside any
    /// action (e.g. `raise` at a thread's top level).
    NoActiveAction(&'static str),
    /// `raise` was invoked from within an exception handler; handlers must
    /// report failure through their verdict instead (termination model).
    RaiseInHandler,
    /// A protocol invariant was violated; indicates a bug in a
    /// [`ResolutionProtocol`](crate::protocol::ResolutionProtocol)
    /// implementation.
    Protocol(String),
    /// The participant crash-stopped via
    /// [`Ctx::crash_stop`](crate::Ctx::crash_stop) — an *injected* fault,
    /// not a runtime failure. Fault-injection harnesses treat this result
    /// as expected.
    Crashed,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Deadlock(info) => write!(f, "simulation deadlock: {info}"),
            RuntimeError::RoleMismatch { action, role } => {
                write!(f, "thread is not bound to role {role} of action {action}")
            }
            RuntimeError::UnknownRole { action, role } => {
                write!(f, "action {action} declares no role named {role}")
            }
            RuntimeError::NoActiveAction(op) => {
                write!(f, "{op} requires an active CA action")
            }
            RuntimeError::RaiseInHandler => {
                f.write_str("handlers cannot raise; return a verdict instead")
            }
            RuntimeError::Protocol(msg) => write!(f, "protocol invariant violated: {msg}"),
            RuntimeError::Crashed => f.write_str("participant crash-stopped (injected fault)"),
        }
    }
}

impl Error for RuntimeError {}

impl From<SimError> for RuntimeError {
    fn from(err: SimError) -> Self {
        match err {
            SimError::Deadlock(info) => RuntimeError::Deadlock(info.to_string()),
            other => RuntimeError::Protocol(other.to_string()),
        }
    }
}

impl From<SimError> for Flow {
    fn from(err: SimError) -> Self {
        Flow::new(Unwind::Fatal(err.into()))
    }
}

impl From<RuntimeError> for Flow {
    fn from(err: RuntimeError) -> Self {
        Flow::new(Unwind::Fatal(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RuntimeError::RoleMismatch {
            action: "Unload_Table".into(),
            role: "robot".into(),
        };
        assert_eq!(
            e.to_string(),
            "thread is not bound to role robot of action Unload_Table"
        );
        assert!(RuntimeError::RaiseInHandler.to_string().contains("verdict"));
        assert!(RuntimeError::NoActiveAction("raise")
            .to_string()
            .contains("raise"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RuntimeError>();
    }

    #[test]
    fn flow_debug_is_nonempty() {
        let f = Flow::new(Unwind::Suspend);
        assert!(format!("{f:?}").contains("Suspend"));
    }
}
