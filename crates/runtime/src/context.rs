//! Per-thread execution context: action stack, message routing and the
//! coordinated-recovery driver.
//!
//! Each participating thread owns a [`Ctx`]. Entering a CA action pushes a
//! frame on the paper's `SA` stack; every runtime operation the role
//! performs is a *poll point* at which pending control messages are
//! processed — the `Result`-based stand-in for Ada 95's asynchronous
//! transfer of control (see `DESIGN.md`). The driver in this module
//! realises, per action frame:
//!
//! * the resolution algorithm of §3.3.2 (delegated to the system's
//!   [`ResolutionProtocol`](crate::protocol::ResolutionProtocol)), with
//!   the crash-aware bounded wait of the membership extension
//!   ([`crate::membership`]): a silent peer is presumed crashed, removed
//!   from the frame's membership view and resolved as a synthesized crash
//!   exception;
//! * the abortion cascade over nested actions (§3.3.1);
//! * exception handling under the termination model (§3.1);
//! * the signalling algorithm of §3.4 with its µ/ƒ coordination;
//! * the synchronous exit protocol (§5.1).
//!
//! Signalling and exit rounds range over the frame's *current view*, so a
//! recovery that shrank the membership completes among the survivors — and
//! both rounds carry their own bounded waits: the suspicion facility of
//! [`crate::membership`] lets *any* round (resolution, signalling, exit)
//! presume a silent peer crashed and continue over the shrunken view, so a
//! crash-stop anywhere in an action's lifecycle is survived. A restarted
//! participant re-enters its crashed action through [`Ctx::rejoin`]
//! (epoch-numbered rejoin: ask a survivor for the current view, fast-forward
//! to it, finish the action's exit protocol as a member again).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use caa_core::exception::{Exception, ExceptionId, Signal};
use caa_core::ids::{ActionId, PartitionId, RoleId, ThreadId};
use caa_core::inline::InlineVec;
use caa_core::message::{AppPayload, Message, SignalRound};
use caa_core::outcome::{ActionOutcome, HandlerVerdict};
use caa_core::time::{VirtualDuration, VirtualInstant};
use caa_simnet::{Endpoint, Parked, Received};

use crate::action::{make_action_id, ActionDef, DefInner};
use crate::error::{Flow, RuntimeError, Step, Unwind};
use crate::membership::{synthesize_crashes, FrameMembership, SuspicionRound};
use crate::objects::{AccessOutcome, ObjectError, SharedObject, TxControl, Wake};
use crate::observe::{Event, EventKind};
use crate::protocol::{ProtoActions, ProtoCtx, ProtoEvent, ResolverState};
use crate::system::SystemShared;

/// A per-round snapshot of an action's live member set, kept on the stack
/// (see [`caa_core::inline`]): protocol rounds snapshot the view once per
/// round on the execute hot path, and groups beyond the inline capacity
/// spill to the heap transparently.
type ViewSnapshot = InlineVec<ThreadId, 8>;

/// An application message delivered to a role.
#[derive(Debug)]
pub struct AppMsg {
    /// The sending thread.
    pub from: ThreadId,
    /// The application-chosen tag.
    pub tag: &'static str,
    /// The payload.
    pub payload: AppPayload,
}

/// How a role body was started or restarted into recovery.
#[derive(Debug)]
enum RecoveryStart {
    /// This thread raised the exception.
    Raise(Exception),
    /// This thread suspends because of peers' exceptions.
    Suspend,
}

/// One entry of the action stack (`SA`).
struct Frame {
    action: ActionId,
    def: Arc<DefInner>,
    role: RoleId,
    /// Control messages for this action stashed by the router for the
    /// recovery driver (the trigger that interrupted the body, §3.3.2's
    /// "retain"). Drained when recovery starts.
    pending_control: VecDeque<Message>,
    /// Buffered application messages.
    app_inbox: VecDeque<AppMsg>,
    /// Exit votes seen, per epoch.
    exit_votes: BTreeMap<u32, BTreeSet<ThreadId>>,
    exit_epoch: u32,
    /// Signalling announcements seen, per round.
    signals: BTreeMap<(SignalRound, ThreadId), Signal>,
    /// Resolution completed — later Exception/Suspended messages for this
    /// instance are stragglers and are dropped (termination model: nothing
    /// new can be raised within the action after handlers start).
    recovered: bool,
    /// Enclosing-level recovery is aborting this frame (its abortion
    /// handler may be running). In-flight recovery messages for the
    /// instance — e.g. a `Commit` whose resolution raced with the
    /// enclosing trigger — are stragglers and are dropped.
    aborting: bool,
    /// External objects this thread touched within the action.
    objects: Vec<Box<dyn TxControl>>,
    /// Protocol state for this frame's recovery.
    resolver: Box<dyn ResolverState>,
    /// This participant's membership view of the instance: the threads it
    /// still believes live, plus the view epoch (see
    /// [`crate::membership`]). Starts as the full group; shrinks when the
    /// bounded resolution wait presumes a peer crashed. Signalling and
    /// exit rounds range over this view.
    membership: FrameMembership,
    /// Set while this frame's exception handler runs.
    in_handler: Option<ExceptionId>,
    /// A corrupted message arrived during the signalling collection; §3.4
    /// treats it as the failure exception.
    corrupted_during_signalling: bool,
    /// A membership view change removed *this* thread (a peer's suspicion
    /// was wrong — we are alive). The frame gives up locally and finalizes
    /// as [`ActionOutcome::Failed`] at the next protocol step; it must not
    /// broadcast further rounds the survivors no longer expect from it.
    evicted: bool,
    /// Liveness evidence for the eviction quorum gate: every peer this
    /// thread received a protocol message from within this instance
    /// (application traffic excluded — only recovery, signalling, exit and
    /// membership messages prove a peer advanced the protocol). A
    /// suspicion round may not evict a set of recently-alive peers larger
    /// than the view that would survive it: one-sided silence on that
    /// scale indicts this thread's own connectivity, not the peers'.
    heard_from: BTreeSet<ThreadId>,
    /// This frame was re-entered through [`Ctx::rejoin`] after a crash.
    /// Rejoiners that time out waiting for exit votes give up silently
    /// (finalize `Failed`) instead of suspecting the survivors: a rejoiner
    /// may be missing votes that were broadcast while it was down, and its
    /// suspicion would evict threads that are perfectly alive.
    is_rejoiner: bool,
    /// While a recovery is in flight (resolution start through signalling
    /// end): the members the recovery started with. Signalling ranges over
    /// `cohort ∩ current members` — peers readmitted mid-recovery have no
    /// handler verdict to announce. Also the join-deferral gate: rejoin
    /// grants are queued while this is `Some` and flushed before the exit
    /// protocol, so the view never grows mid-resolution or mid-signalling.
    cohort: Option<ViewSnapshot>,
    /// The exception this frame's completed recovery resolved to, handed to
    /// rejoiners so a restarted participant knows recovery already happened.
    resolved_exception: Option<ExceptionId>,
    /// Rejoin requests that arrived while `cohort` was `Some`, granted when
    /// the frame reaches its exit protocol.
    pending_join_requests: Vec<ThreadId>,
}

impl Frame {
    /// The members the signalling rounds range over: the recovery cohort
    /// that is still live. Peers readmitted mid-recovery never took part in
    /// this recovery's handling and have no verdict to announce, so they
    /// are excluded; crash-free frames never shrink the view and the
    /// cohort equals the full group.
    fn signalling_group(&self) -> ViewSnapshot {
        match &self.cohort {
            Some(cohort) => cohort
                .iter()
                .copied()
                .filter(|&t| self.membership.members().contains(&t))
                .collect(),
            None => ViewSnapshot::from_slice(self.membership.members()),
        }
    }
}

/// The execution context of one participating thread.
///
/// Obtained inside [`System::spawn`](crate::System::spawn). All blocking
/// operations are poll points: they may return `Err(`[`Flow`]`)` when
/// coordinated recovery takes over — propagate it with `?`.
pub struct Ctx {
    me: ThreadId,
    name: Arc<str>,
    endpoint: Endpoint<Message>,
    system: Arc<SystemShared>,
    stack: Vec<Frame>,
    /// A scheduled crash-stop instant ([`Ctx::schedule_crash`]): the
    /// thread dies at the first poll point at or after it — mid-body,
    /// mid-collection, mid-signalling or mid-exit alike.
    crash_at: Option<VirtualInstant>,
    /// Messages for action instances not yet entered (§3.3.2 "retain the
    /// Exception or Suspended message till Ti enters A*").
    retained: Vec<Message>,
    /// Per `(definition id, parent action serial)`: the next local instance
    /// number this thread will enter. Scoping instance numbers to the
    /// parent instance keeps ids aligned across threads even when recovery
    /// made some of them skip nested actions.
    entry_counts: BTreeMap<(u32, u64), u32>,
    /// Serials of action instances this thread has finished or aborted;
    /// their late messages are stragglers and are dropped.
    finished: std::collections::HashSet<u64>,
    /// The outermost action a crash-stop discarded, recorded when the crash
    /// unwind pops it. [`Ctx::rejoin`] consumes this to know which instance
    /// a restarted participant should ask to re-enter.
    last_crash: Option<ActionId>,
}

/// Upper bound on retained messages: instances a thread never enters (e.g.
/// a peer's raise inside an action abandoned by recovery) would otherwise
/// accumulate their triggers forever.
const RETAINED_CAP: usize = 4096;

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("thread", &self.me)
            .field("name", &self.name)
            .field("depth", &self.stack.len())
            .finish()
    }
}

/// Emits a trace line when `CAA_TRACE` is set (diagnostics for protocol
/// debugging; no-op otherwise).
macro_rules! trace {
    ($self:expr, $($arg:tt)*) => {
        if std::env::var_os("CAA_TRACE").is_some() {
            eprintln!(
                "[{} {} d{}] {}",
                $self.endpoint.now(),
                $self.name,
                $self.stack.len(),
                format_args!($($arg)*)
            );
        }
    };
}

/// What the router decided about one received message.
enum Routed {
    /// Fully absorbed (buffered, recorded or dropped).
    Done,
    /// A resolution-protocol control message for the *active* action.
    ActiveControl(Message),
    /// A corrupted message arrived (payload unrecoverable).
    Corrupted,
}

impl Ctx {
    pub(crate) fn new(
        me: ThreadId,
        name: Arc<str>,
        endpoint: Endpoint<Message>,
        system: Arc<SystemShared>,
    ) -> Self {
        Ctx {
            me,
            name,
            endpoint,
            system,
            stack: Vec::new(),
            crash_at: None,
            retained: Vec::new(),
            entry_counts: BTreeMap::new(),
            finished: std::collections::HashSet::new(),
            last_crash: None,
        }
    }

    /// This thread's identifier (total order; ties in recovery are broken
    /// toward the biggest id, §3.3.2).
    #[must_use]
    pub fn thread_id(&self) -> ThreadId {
        self.me
    }

    /// Reports one step to the system's observer, if any (see
    /// [`crate::observe`]). The event payload is only built — and the
    /// clock only read — when an observer is attached, so unobserved runs
    /// pay nothing on the protocol's hot paths.
    fn observe(&self, action: ActionId, kind: impl FnOnce() -> EventKind) {
        if let Some(observer) = &self.system.observer {
            observer.on_event(&Event {
                at: self.endpoint.now(),
                thread: self.me,
                action,
                kind: kind(),
            });
        }
    }

    /// This thread's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> VirtualInstant {
        self.endpoint.now()
    }

    /// Nesting depth: 0 outside any action.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The name of the active action, if any.
    #[must_use]
    pub fn action_name(&self) -> Option<&str> {
        self.stack.last().map(|f| &*f.def.name)
    }

    /// The resolving exception currently being handled, if this thread is
    /// executing an exception handler.
    #[must_use]
    pub fn handling(&self) -> Option<&ExceptionId> {
        self.stack.last().and_then(|f| f.in_handler.as_ref())
    }

    // ------------------------------------------------------------------
    // Role-facing operations (poll points)
    // ------------------------------------------------------------------

    /// Performs `dur` of local computation (virtual time).
    ///
    /// The computation is *interruptible*: if a control message demanding
    /// recovery arrives mid-way, control transfers immediately — the
    /// `Result`-based counterpart of the Ada 95 asynchronous transfer of
    /// control the paper's prototype uses (§5.1). Application messages
    /// arriving mid-way are buffered and the computation continues.
    ///
    /// # Errors
    ///
    /// Returns [`Flow`] when recovery interrupts this thread.
    pub fn work(&mut self, dur: VirtualDuration) -> Step {
        let deadline = self.now().saturating_add(dur);
        loop {
            self.poll()?;
            let remaining = deadline.duration_since(self.now());
            if remaining.is_zero() {
                return Ok(());
            }
            match self.recv_until(Some(deadline))? {
                None => return self.poll(),
                Some(received) => self.absorb_or_unwind(received)?,
            }
        }
    }

    /// Simulates a **crash-stop** of this participant: every open action
    /// frame is discarded without running handlers or sending messages
    /// (the process simply dies), transaction layers this thread had
    /// registered are broken, and the thread terminates with
    /// [`RuntimeError::Crashed`]. Peers observe only silence: their
    /// bounded waits — the [`resolution
    /// timeout`](crate::ActionDefBuilder::resolution_timeout)'s membership
    /// view change, the §3.4 signalling timeout, and the [`exit
    /// timeout`](crate::ActionDefBuilder::exit_timeout) — resolve the
    /// silence instead of deadlocking on it.
    ///
    /// # Errors
    ///
    /// Always returns `Err` — propagate it with `?`; it unwinds to the
    /// thread's top level.
    pub fn crash_stop(&mut self) -> Step<()> {
        Err(Flow::new(Unwind::Crash))
    }

    /// Schedules a crash-stop `after` from now: the process dies at the
    /// first poll point at or after that virtual instant, *wherever* it
    /// then is — computing, collecting resolution messages, exchanging
    /// signals or exit votes. This is how fault-injection harnesses model
    /// "the node dies at instant T" without structuring the role body
    /// around the death (contrast [`Ctx::crash_stop`], which dies exactly
    /// where it is called). A thread parked on a shared-object
    /// acquisition wakes at the instant and dies there too.
    ///
    /// The schedule is a property of the thread, not of the active action:
    /// it survives action exits and recoveries until it fires.
    pub fn schedule_crash(&mut self, after: VirtualDuration) {
        self.crash_at = Some(self.now().saturating_add(after));
    }

    /// Dies if a scheduled crash instant has been reached.
    fn crash_check(&self) -> Step {
        match self.crash_at {
            Some(at) if self.now() >= at => Err(Flow::new(Unwind::Crash)),
            _ => Ok(()),
        }
    }

    /// Receives the next message, waiting at most until `deadline` (when
    /// given). All protocol waits funnel through here so a scheduled
    /// crash-stop bounds every one of them: reaching the crash instant
    /// kills the thread, reaching the caller's deadline returns
    /// `Ok(None)`.
    ///
    /// # Errors
    ///
    /// [`Flow`] on a scheduled crash or a simulation error.
    fn recv_until(&mut self, deadline: Option<VirtualInstant>) -> Step<Option<Received<Message>>> {
        self.crash_check()?;
        let effective = match (deadline, self.crash_at) {
            (Some(d), Some(c)) => Some(d.min(c)),
            (d, c) => d.or(c),
        };
        let received = match effective {
            Some(at) => self.endpoint.recv_deadline(at)?,
            None => Some(self.endpoint.recv()?),
        };
        match received {
            Some(r) => Ok(Some(r)),
            None => {
                // Woke at the effective deadline: the crash instant takes
                // precedence over the caller's timeout.
                self.crash_check()?;
                Ok(None)
            }
        }
    }

    /// Raises exception `e` in the active action (§3.1 *raise*). The
    /// returned [`Flow`] must be propagated with `?`; the runtime then
    /// coordinates recovery across all participants.
    ///
    /// # Errors
    ///
    /// Always returns `Err`: either the raise itself (to be propagated), or
    /// a fatal error when called outside an action or from a handler.
    pub fn raise(&mut self, e: impl Into<Exception>) -> Step<()> {
        let frame = match self.stack.last() {
            Some(f) => f,
            None => return Err(RuntimeError::NoActiveAction("raise").into()),
        };
        if frame.in_handler.is_some() {
            return Err(RuntimeError::RaiseInHandler.into());
        }
        let e = e.into().with_origin(self.me);
        Err(Flow::new(Unwind::Raise(e)))
    }

    /// Sends an application message to the thread performing `role` in the
    /// active action. A poll point.
    ///
    /// # Errors
    ///
    /// Returns [`Flow`] on recovery interruption, or fatally when `role` is
    /// not part of the active action.
    pub fn send_to_role(
        &mut self,
        role: &str,
        tag: &'static str,
        payload: impl std::any::Any + Send,
    ) -> Step {
        self.poll()?;
        let frame = self
            .stack
            .last()
            .ok_or_else(|| Flow::from(RuntimeError::NoActiveAction("send_to_role")))?;
        let role_id = frame.def.role_id(role).ok_or_else(|| {
            Flow::from(RuntimeError::UnknownRole {
                action: frame.def.name.to_string(),
                role: role.to_owned(),
            })
        })?;
        let to = frame.def.thread_of(role_id);
        let msg = Message::App {
            action: frame.action,
            from: self.me,
            tag,
            payload: AppPayload::new(payload),
        };
        self.endpoint.send(PartitionId::new(to.as_u32()), msg);
        Ok(())
    }

    /// Receives the next application message addressed to this role within
    /// the active action, blocking as needed. A poll point.
    ///
    /// # Errors
    ///
    /// Returns [`Flow`] on recovery interruption.
    pub fn recv_app(&mut self) -> Step<AppMsg> {
        loop {
            self.poll()?;
            if self.stack.is_empty() {
                return Err(RuntimeError::NoActiveAction("recv_app").into());
            }
            if let Some(msg) = self.stack.last_mut().and_then(|f| f.app_inbox.pop_front()) {
                return Ok(msg);
            }
            if let Some(received) = self.recv_until(None)? {
                self.absorb_or_unwind(received)?;
            }
        }
    }

    /// Like [`Ctx::recv_app`] but gives up after `timeout`, returning
    /// `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Returns [`Flow`] on recovery interruption.
    pub fn recv_app_timeout(&mut self, timeout: VirtualDuration) -> Step<Option<AppMsg>> {
        let deadline = self.now().saturating_add(timeout);
        loop {
            self.poll()?;
            if self.stack.is_empty() {
                return Err(RuntimeError::NoActiveAction("recv_app").into());
            }
            if let Some(msg) = self.stack.last_mut().and_then(|f| f.app_inbox.pop_front()) {
                return Ok(Some(msg));
            }
            let remaining = deadline.duration_since(self.now());
            if remaining.is_zero() {
                return Ok(None);
            }
            match self.recv_until(Some(deadline))? {
                Some(received) => self.absorb_or_unwind(received)?,
                None => return Ok(None),
            }
        }
    }

    /// Reads external object `obj` within the active action, acquiring it
    /// (and waiting for competing actions to release it) if needed.
    ///
    /// # Errors
    ///
    /// Returns [`Flow`] on recovery interruption.
    pub fn read<T: Clone + Send + 'static, R>(
        &mut self,
        obj: &SharedObject<T>,
        f: impl FnOnce(&T) -> R,
    ) -> Step<R> {
        self.access(obj, |t, _dirty| f(t))
    }

    /// Mutates external object `obj` within the active action, acquiring it
    /// (and waiting for competing actions to release it) if needed. The
    /// update is transactional: it commits or rolls back with the action.
    ///
    /// # Errors
    ///
    /// Returns [`Flow`] on recovery interruption.
    pub fn update<T: Clone + Send + 'static, R>(
        &mut self,
        obj: &SharedObject<T>,
        f: impl FnOnce(&mut T) -> R,
    ) -> Step<R> {
        self.access(obj, |t, dirty| {
            *dirty = true;
            f(t)
        })
    }

    /// Forwards an arbitration-computed wake-up to the network as a
    /// scheduled doorbell: the wake-on-release half of the object
    /// scheduler (see [`crate::objects`] — every grant, release and
    /// cancellation computes the next eligible waiter and its on-grid
    /// attempt instant; this delivers it).
    fn forward_wake(&self, wake: Wake) {
        if let Some((thread, at, epoch)) = wake {
            self.endpoint
                .network()
                .schedule_wake(PartitionId::new(thread.as_u32()), at, epoch);
        }
    }

    fn access<T: Clone + Send + 'static, R>(
        &mut self,
        obj: &SharedObject<T>,
        f: impl FnOnce(&mut T, &mut bool) -> R,
    ) -> Step<R> {
        self.poll()?;
        if self.stack.is_empty() {
            return Err(RuntimeError::NoActiveAction("object access").into());
        }
        let chain: Vec<ActionId> = self.stack.iter().map(|fr| fr.action).collect();
        let action = *chain.last().expect("stack nonempty");
        // Open a fresh parked wait (discarding any stale doorbell; the
        // returned epoch tags every wake computed for this request), then
        // register and park until the arbitration schedules this thread's
        // next on-grid attempt (wake-on-release: the enabling event — a
        // release, grant or cancellation elsewhere — computes and
        // schedules it; `enqueue_waiter` seeds the first attempt when the
        // requester is already the eligible minimum). The wait is a poll
        // point: messages still arrive, and recovery can interrupt it (the
        // request is then withdrawn).
        let epoch = self.endpoint.begin_wait();
        let wait_start = self.now();
        self.forward_wake(obj.enqueue_waiter(self.me, wait_start, &chain, epoch));
        let mut f = Some(f);
        let (value, opened) = loop {
            match self.endpoint.park_wait_until(self.crash_at) {
                Ok(Parked::Deadline) => {
                    // The scheduled crash instant arrived while parked:
                    // withdraw the request and die.
                    self.forward_wake(obj.cancel_waiter(self.me, self.now()));
                    return Err(Flow::new(Unwind::Crash));
                }
                Ok(Parked::Doorbell) => {
                    // A scheduled attempt instant arrived. `try_access` is
                    // authoritative: a stale doorbell (the arbitration
                    // moved on) simply fails and the thread re-parks until
                    // the next event re-schedules it.
                    match obj.try_access(self.me, self.now(), &chain, &mut f) {
                        AccessOutcome::Done {
                            value,
                            opened,
                            wake,
                        } => {
                            self.forward_wake(wake);
                            break (value, opened);
                        }
                        AccessOutcome::NotYet => {}
                    }
                }
                Ok(Parked::Msg(received)) => {
                    if let Err(flow) = self.absorb_or_unwind(received) {
                        self.forward_wake(obj.cancel_waiter(self.me, self.now()));
                        return Err(flow);
                    }
                }
                Err(e) => {
                    self.forward_wake(obj.cancel_waiter(self.me, self.now()));
                    return Err(e.into());
                }
            }
        };
        // Register the object with every frame on the stack: acquisition
        // may have opened layers for enclosing actions too, and each frame
        // must commit or roll back its own layer when it completes.
        // Dedup by identity, not name — two distinct objects may share one.
        let obj_id = TxControl::object_id(obj);
        for frame in &mut self.stack {
            if !frame.objects.iter().any(|o| o.object_id() == obj_id) {
                frame.objects.push(Box::new(obj.clone()));
            }
        }
        if opened > 0 {
            let object = obj.name_shared();
            let waited_ns = self.now().as_nanos().saturating_sub(wait_start.as_nanos());
            self.observe(action, || EventKind::ObjectAcquired { object, waited_ns });
        }
        Ok(value)
    }

    // ------------------------------------------------------------------
    // Entering actions
    // ------------------------------------------------------------------

    /// Enters `def` playing `role`, runs `body` cooperatively with the other
    /// roles, and completes the action under the termination model.
    ///
    /// At the top level (depth 0) the outcome is returned. Inside an
    /// enclosing action, a non-success outcome is *raised* in the enclosing
    /// action instead ("the exceptions concurrently signalled from the
    /// nested action will simply be handled as if they are concurrently
    /// raised in the enclosing action", §3.1), so `Ok` is only ever
    /// `ActionOutcome::Success` there.
    ///
    /// # Errors
    ///
    /// Returns [`Flow`] when recovery at an enclosing level interrupts the
    /// action, and fatally on binding errors (unknown role, wrong thread).
    pub fn enter(
        &mut self,
        def: &ActionDef,
        role: &str,
        body: impl FnOnce(&mut Ctx) -> Step,
    ) -> Step<ActionOutcome> {
        let inner = Arc::clone(&def.inner);
        let role_id = inner.role_id(role).ok_or_else(|| {
            Flow::from(RuntimeError::UnknownRole {
                action: inner.name.to_string(),
                role: role.to_owned(),
            })
        })?;
        if inner.thread_of(role_id) != self.me {
            return Err(RuntimeError::RoleMismatch {
                action: inner.name.to_string(),
                role: role.to_owned(),
            }
            .into());
        }

        let depth = u32::try_from(self.stack.len()).expect("nesting depth bounded");
        let parent_serial = self.stack.last().map_or(0, |f| f.action.serial());
        let instance = {
            let counter = self
                .entry_counts
                .entry((inner.def_id, parent_serial))
                .or_insert(0);
            let i = *counter;
            *counter += 1;
            i
        };
        let action = make_action_id(inner.def_id, parent_serial, instance, depth);

        self.stack.push(Frame {
            action,
            def: Arc::clone(&inner),
            role: role_id,
            pending_control: VecDeque::new(),
            app_inbox: VecDeque::new(),
            exit_votes: BTreeMap::new(),
            exit_epoch: 0,
            signals: BTreeMap::new(),
            recovered: false,
            aborting: false,
            objects: Vec::new(),
            resolver: self.system.protocol.new_state(),
            membership: FrameMembership::new(&inner.group),
            in_handler: None,
            corrupted_during_signalling: false,
            evicted: false,
            heard_from: BTreeSet::new(),
            is_rejoiner: false,
            cohort: None,
            resolved_exception: None,
            pending_join_requests: Vec::new(),
        });

        // "if Ti enters A then <A> → SAi; consume messages having arrived".
        let mut initial: Option<RecoveryStart> = None;
        let retained: Vec<Message> = std::mem::take(&mut self.retained);
        let mut still_retained = Vec::new();
        for msg in retained {
            if msg.action() == action {
                match msg {
                    Message::Exception { .. }
                    | Message::Suspended { .. }
                    | Message::ViewChange { .. } => {
                        let frame = self.stack.last_mut().expect("frame just pushed");
                        frame.heard_from.insert(msg.from());
                        frame.pending_control.push_back(msg);
                        initial.get_or_insert(RecoveryStart::Suspend);
                    }
                    other => {
                        // Signals / votes / app traffic buffered normally.
                        let _ = self.route(Received {
                            src: PartitionId::new(other.from().as_u32()),
                            sent_at: VirtualInstant::EPOCH,
                            delivered_at: VirtualInstant::EPOCH,
                            msg: Some(other),
                        });
                    }
                }
            } else {
                still_retained.push(msg);
            }
        }
        self.retained = still_retained;

        trace!(self, "enter {} as {} ({})", inner.name, role, action);
        self.observe(action, || EventKind::Enter {
            name: Arc::clone(&inner.name),
            role: Arc::clone(&inner.role_names[role_id.index()]),
            depth: self.stack.len(),
        });
        let outcome = self.drive(initial, body);
        if std::env::var_os("CAA_TRACE").is_some() {
            match &outcome {
                Ok(o) => trace!(self, "leave {} ({action}): {o}", inner.name),
                Err(f) => trace!(
                    self,
                    "unwind from {} ({action}): {:?}",
                    inner.name,
                    f.unwind
                ),
            }
        }

        match outcome {
            Ok(outcome) => {
                if !outcome.is_success() && !self.stack.is_empty() {
                    // Auto-raise the signalled exception in the enclosing
                    // action (distributed signalling, §3.1).
                    let id = outcome
                        .exception_id()
                        .expect("non-success outcome always carries an exception");
                    Err(Flow::new(Unwind::Raise(
                        Exception::new(id).with_origin(self.me),
                    )))
                } else {
                    Ok(outcome)
                }
            }
            Err(flow) => Err(flow),
        }
    }

    /// Simulates the down-time of a crashed participant before its
    /// restart: cancels any pending crash schedule (the process already
    /// died; a stale schedule would re-kill the restart at its first poll
    /// point) and idles `dur` of virtual time at the thread's top level.
    /// Traffic arriving during the down-time is the peers' business —
    /// stragglers for the dead instance are dropped by the normal routing
    /// rules. Follow with [`Ctx::rejoin`].
    ///
    /// # Errors
    ///
    /// Fatally, on simulation failure.
    pub fn restart_after(&mut self, dur: VirtualDuration) -> Step {
        self.crash_at = None;
        self.work(dur)
    }

    /// Re-enters the action this thread last crashed out of, as a restarted
    /// participant (epoch-numbered rejoin; see [`crate::membership`]).
    ///
    /// Call at the thread's top level after a crash-stop [`Flow`] (see
    /// [`Flow::is_crash`]) unwound the stack. The restarted participant
    /// broadcasts a `JoinRequest` to every other member of the action's
    /// group — it cannot know who survived — and waits a bounded window for
    /// the first `JoinGrant`. A grant carries the granter's current view,
    /// exit epoch and resolved exception; the rejoiner fast-forwards to
    /// that view, re-enters the action (observing a `Rejoin` and a second
    /// `Enter` for the same instance) and completes its exit protocol as a
    /// member again.
    ///
    /// Returns `Ok(None)` — benign — when there is nothing to rejoin: no
    /// crash was recorded, or no survivor answered within the window (all
    /// finished the action, or all crashed too). Returns the re-entered
    /// action's outcome otherwise.
    ///
    /// # Errors
    ///
    /// Fatally on binding errors (unknown role, wrong thread, non-empty
    /// stack) and on inconsistent grants.
    pub fn rejoin(&mut self, def: &ActionDef, role: &str) -> Step<Option<ActionOutcome>> {
        // The restart cancels whatever killed us; a stale schedule would
        // re-kill the rejoiner at its first poll point.
        self.crash_at = None;
        let action = match self.last_crash.take() {
            Some(a) => a,
            None => return Ok(None),
        };
        if !self.stack.is_empty() {
            return Err(RuntimeError::Protocol(
                "rejoin requires an empty action stack (top-level restart)".into(),
            )
            .into());
        }
        let inner = Arc::clone(&def.inner);
        let role_id = inner.role_id(role).ok_or_else(|| {
            Flow::from(RuntimeError::UnknownRole {
                action: inner.name.to_string(),
                role: role.to_owned(),
            })
        })?;
        if inner.thread_of(role_id) != self.me {
            return Err(RuntimeError::RoleMismatch {
                action: inner.name.to_string(),
                role: role.to_owned(),
            }
            .into());
        }
        trace!(self, "rejoin request for {} ({action})", inner.name);
        for &peer in inner.group.iter().filter(|&&t| t != self.me) {
            self.observe(action, || EventKind::JoinRequested { to: peer });
            self.endpoint.send(
                PartitionId::new(peer.as_u32()),
                Message::JoinRequest {
                    action,
                    from: self.me,
                },
            );
        }
        // The window only needs to cover a request/grant round trip, so the
        // (short, unscaled) signalling timeout fits; survivors blocked on
        // our exit vote wait out the much longer exit timeout, keeping a
        // successful rejoin comfortably inside their patience.
        let window = inner
            .signal_timeout
            .or(inner.exit_timeout)
            .unwrap_or_else(|| caa_core::time::secs(60.0));
        let deadline = self.now().saturating_add(window);
        let (epoch, removed, exit_epoch, resolved) = loop {
            let received = match self.recv_until(Some(deadline))? {
                Some(r) => r,
                None => {
                    trace!(self, "rejoin window expired for {action}");
                    return Ok(None);
                }
            };
            match received.msg {
                Some(Message::JoinGrant {
                    action: a,
                    thread,
                    epoch,
                    removed,
                    exit_epoch,
                    resolved,
                    ..
                }) if a == action && thread == self.me => {
                    break (epoch, removed, exit_epoch, resolved);
                }
                other => {
                    // Traffic for other instances (retained or dropped as
                    // usual); the crashed instance's own stragglers are
                    // discarded because its serial is still `finished`.
                    let _ = self.route(Received {
                        src: received.src,
                        sent_at: received.sent_at,
                        delivered_at: received.delivered_at,
                        msg: other,
                    })?;
                }
            }
        };
        let membership = FrameMembership::sync_grant(&inner.group, epoch, &removed, self.me)
            .map_err(|reason| {
                Flow::from(RuntimeError::Protocol(format!(
                    "join grant rejected: {reason}"
                )))
            })?;
        trace!(
            self,
            "rejoin {} ({action}) at v{} e{exit_epoch}",
            inner.name,
            membership.epoch()
        );
        self.finished.remove(&action.serial());
        self.system.stats.lock().rejoins += 1;
        let recovered = resolved.is_some();
        self.stack.push(Frame {
            action,
            def: Arc::clone(&inner),
            role: role_id,
            pending_control: VecDeque::new(),
            app_inbox: VecDeque::new(),
            exit_votes: BTreeMap::new(),
            exit_epoch,
            signals: BTreeMap::new(),
            recovered,
            aborting: false,
            objects: Vec::new(),
            resolver: self.system.protocol.new_state(),
            membership,
            in_handler: None,
            corrupted_during_signalling: false,
            evicted: false,
            heard_from: BTreeSet::new(),
            is_rejoiner: true,
            cohort: None,
            resolved_exception: resolved,
            pending_join_requests: Vec::new(),
        });
        {
            let view_epoch = self
                .stack
                .last()
                .expect("frame just pushed")
                .membership
                .epoch();
            let me = self.me;
            self.observe(action, || EventKind::Rejoin {
                epoch: view_epoch,
                thread: me,
            });
        }
        self.observe(action, || EventKind::Enter {
            name: Arc::clone(&inner.name),
            role: Arc::clone(&inner.role_names[role_id.index()]),
            depth: self.stack.len(),
        });
        // The catch-up body is trivial: the rejoiner's pre-crash work is
        // lost (its transaction layers were broken at the crash) and must
        // not be redone — what remains is finishing the protocol rounds as
        // a member: join any in-flight recovery, vote, exit.
        let outcome = self.drive(None, |_| Ok(()))?;
        Ok(Some(outcome))
    }

    /// Runs the action's phases until an outcome is reached, recovering as
    /// many times as enclosing-level aborts demand. The frame is always
    /// popped before returning.
    fn drive(
        &mut self,
        initial: Option<RecoveryStart>,
        body: impl FnOnce(&mut Ctx) -> Step,
    ) -> Step<ActionOutcome> {
        let mut next: Option<RecoveryStart> = initial;
        if next.is_none() {
            match body(self) {
                Ok(()) => {}
                Err(flow) => match self.flow_to_start(flow) {
                    Ok(start) => next = Some(start),
                    Err(flow) => return Err(flow),
                },
            }
        }
        loop {
            let attempt: Step<ActionOutcome> = match next.take() {
                None => self.phase_exit_then(ActionOutcome::Success),
                Some(start) => self.phase_recover(start),
            };
            match attempt {
                Ok(outcome) => return Ok(outcome),
                Err(flow) => match self.flow_to_start(flow) {
                    Ok(start) => next = Some(start),
                    Err(flow) => return Err(flow),
                },
            }
        }
    }

    /// Converts an unwinding [`Flow`] into a recovery start for the current
    /// frame, or performs this frame's part of the abortion cascade and
    /// re-propagates.
    fn flow_to_start(&mut self, flow: Flow) -> Result<RecoveryStart, Flow> {
        match flow.unwind {
            Unwind::Raise(e) => Ok(RecoveryStart::Raise(e)),
            Unwind::Suspend => Ok(RecoveryStart::Suspend),
            Unwind::Outer { target, eab } => {
                let my_action = self.stack.last().map(|f| f.action);
                if my_action == Some(target) {
                    // Recovery lands at this level: the abortion-handler
                    // exception of the directly nested action (if any) is
                    // raised here, else we suspend (§3.3.1).
                    match eab {
                        Some(e) => Ok(RecoveryStart::Raise(e)),
                        None => Ok(RecoveryStart::Suspend),
                    }
                } else {
                    // This frame is being aborted on the way out.
                    let my_eab = self.abort_current_frame()?;
                    Err(Flow::new(Unwind::Outer {
                        target,
                        eab: my_eab,
                    }))
                }
            }
            Unwind::Crash => {
                // The process is "dead": unwind every frame silently.
                self.crash_current_frame();
                Err(Flow::new(Unwind::Crash))
            }
            fatal @ Unwind::Fatal(_) => {
                self.discard_current_frame();
                Err(Flow { unwind: fatal })
            }
        }
    }

    /// Aborts the top frame: rolls back its objects, runs its abortion
    /// handler (which may produce `Eab`), and pops it.
    fn abort_current_frame(&mut self) -> Result<Option<Exception>, Flow> {
        self.system.stats.lock().aborts += 1;
        let (action, def, role) = {
            let frame = self.stack.last_mut().expect("abort requires a frame");
            // From here on, recovery messages for this instance are
            // stragglers: its own recovery (if any) is abandoned in favour
            // of the enclosing level's.
            frame.aborting = true;
            (frame.action, Arc::clone(&frame.def), frame.role)
        };
        // Run the abortion handler while the frame is still active so it
        // can use the context (work, app messages). Deeper-outer triggers
        // during the handler extend the cascade.
        let mut deeper: Option<(ActionId, Option<Exception>)> = None;
        let mut eab = None;
        if let Some(handler) = def.abort_handlers.get(&role).cloned() {
            match handler(self) {
                Ok(result) => eab = result,
                Err(flow) => match flow.unwind {
                    // An abortion handler may report Eab by raising.
                    Unwind::Raise(e) => eab = Some(e),
                    Unwind::Suspend => {}
                    Unwind::Outer { target, eab: e } => deeper = Some((target, e)),
                    Unwind::Crash => {
                        self.crash_current_frame();
                        return Err(Flow::new(Unwind::Crash));
                    }
                    fatal @ Unwind::Fatal(_) => {
                        self.discard_current_frame();
                        return Err(Flow { unwind: fatal });
                    }
                },
            }
        }
        // Undo the aborted action's effects; effects that cannot be undone
        // taint the object (ƒ semantics).
        let now = self.endpoint.now();
        let frame = self.stack.last_mut().expect("frame still present");
        let objects = std::mem::take(&mut frame.objects);
        for obj in &objects {
            self.release_rollback_or_taint(obj.as_ref(), action, now);
        }
        self.observe(action, || EventKind::Abort {
            eab: eab.as_ref().map(|e| e.id().clone()),
        });
        self.pop_frame();
        if let Some((target, e)) = deeper {
            // The cascade continues past the original target.
            return Err(Flow::new(Unwind::Outer { target, eab: e }));
        }
        Ok(eab)
    }

    /// Rolls `action`'s layer back on `obj` — tainting instead when the
    /// object is irreversible (ƒ semantics) — and forwards the release's
    /// wake-up to the next waiter.
    fn release_rollback_or_taint(
        &self,
        obj: &dyn TxControl,
        action: ActionId,
        now: VirtualInstant,
    ) {
        match obj.rollback(action, now) {
            Ok(wake) => self.forward_wake(wake),
            Err(ObjectError::UndoImpossible { .. }) => {
                if let Ok(wake) = obj.commit_tainted(action, now) {
                    self.forward_wake(wake);
                }
            }
            Err(ObjectError::NotAcquired { .. }) => {}
        }
    }

    /// Pops the top frame without ceremony (fatal-error path).
    fn discard_current_frame(&mut self) {
        if let Some(frame) = self.stack.last_mut() {
            let action = frame.action;
            let now = self.endpoint.now();
            let objects = std::mem::take(&mut frame.objects);
            for obj in &objects {
                if let Ok(wake) = obj.rollback(action, now) {
                    self.forward_wake(wake);
                }
            }
            self.observe(action, || EventKind::Abort { eab: None });
            self.pop_frame();
        }
    }

    /// Crash-stop: discards the top frame like a process death — objects
    /// this thread registered are rolled back (the crashed node's
    /// transaction layers are broken), no handlers run, no messages are
    /// sent. Emits a [`EventKind::Crash`] event so traces and oracles can
    /// account for the never-closed entry.
    fn crash_current_frame(&mut self) {
        if let Some(frame) = self.stack.last_mut() {
            let action = frame.action;
            let now = self.endpoint.now();
            let objects = std::mem::take(&mut frame.objects);
            for obj in &objects {
                self.release_rollback_or_taint(obj.as_ref(), action, now);
            }
            self.observe(action, || EventKind::Crash);
            // The unwind pops frames innermost-out; the last one recorded
            // is the outermost action the crash discarded — the instance a
            // restart would ask to rejoin.
            self.last_crash = Some(action);
            self.pop_frame();
        }
    }

    fn pop_frame(&mut self) {
        if let Some(frame) = self.stack.pop() {
            self.finished.insert(frame.action.serial());
        }
    }

    // ------------------------------------------------------------------
    // Phases
    // ------------------------------------------------------------------

    /// Exit protocol, then finalize with `outcome` if no recovery begins.
    fn phase_exit_then(&mut self, outcome: ActionOutcome) -> Step<ActionOutcome> {
        match self.run_exit()? {
            ExitResult::Done => self.finalize(outcome),
            ExitResult::Recover => self.phase_recover(RecoveryStart::Suspend),
            // A peer's view change removed this thread (or a rejoiner gave
            // up): the survivors conclude without us — resolve locally to
            // abortion (ƒ) so objects are tainted, not left hanging.
            ExitResult::Evicted => self.finalize(ActionOutcome::Failed),
        }
    }

    /// One full recovery: resolution, handling, signalling, exit.
    fn phase_recover(&mut self, start: RecoveryStart) -> Step<ActionOutcome> {
        self.system.stats.lock().recoveries += 1;
        let resolved = match self.run_recovery(start)? {
            Some(resolved) => resolved,
            // A concurrent view change evicted this thread: the survivors
            // resolve among themselves, we give up locally (ƒ).
            None => return self.finalize(ActionOutcome::Failed),
        };
        let verdict = self.run_handler(&resolved)?;
        let my_signal = self.run_signalling(verdict)?;
        {
            let frame = self.stack.last_mut().expect("frame active");
            frame.exit_epoch += 1;
            let action = frame.action;
            let signal = my_signal.clone();
            self.observe(action, || EventKind::SignalOutcome { signal });
        }
        // The recovery rounds are over: re-admit any restarted participant
        // that asked to rejoin while they ran. Done after the new exit
        // epoch opens so grants carry the epoch the joiner must vote in.
        self.flush_pending_joins();
        match self.run_exit()? {
            ExitResult::Done => {}
            ExitResult::Recover => {
                // Stragglers cannot re-trigger (the frame is marked
                // recovered); a genuine trigger here is a protocol bug.
                return Err(RuntimeError::Protocol(
                    "recovery re-triggered after signalling".into(),
                )
                .into());
            }
            // This thread was removed from the view between signalling and
            // exit: ƒ dominates whatever the signalling round concluded.
            ExitResult::Evicted => return self.finalize(ActionOutcome::Failed),
        }
        let outcome = match my_signal {
            Signal::None => ActionOutcome::Success,
            Signal::Exception(id) => ActionOutcome::Signalled(id),
            Signal::Undo => ActionOutcome::Undone,
            Signal::Failure => ActionOutcome::Failed,
        };
        self.finalize(outcome)
    }

    /// Commits or finalizes objects per outcome and pops the frame.
    fn finalize(&mut self, outcome: ActionOutcome) -> Step<ActionOutcome> {
        let now = self.endpoint.now();
        let frame = self.stack.last_mut().expect("frame active");
        let action = frame.action;
        let objects = std::mem::take(&mut frame.objects);
        match &outcome {
            ActionOutcome::Success | ActionOutcome::Signalled(_) => {
                // Forward recovery leaves objects in (new) valid states.
                for obj in &objects {
                    if let Ok(wake) = obj.commit(action, now) {
                        self.forward_wake(wake);
                    }
                }
            }
            ActionOutcome::Undone => {
                // Rollback already happened during the undo round; any
                // layer still open (acquired after undo) is discarded.
                for obj in &objects {
                    if let Ok(wake) = obj.rollback(action, now) {
                        self.forward_wake(wake);
                    }
                }
            }
            ActionOutcome::Failed => {
                // ƒ: effects may not have been undone; leave them visible
                // and taint the objects.
                for obj in &objects {
                    if let Ok(wake) = obj.commit_tainted(action, now) {
                        self.forward_wake(wake);
                    }
                }
            }
        }
        self.observe(action, || EventKind::Exit {
            outcome: outcome.clone(),
        });
        self.pop_frame();
        Ok(outcome)
    }

    // ------------------------------------------------------------------
    // Recovery: resolution
    // ------------------------------------------------------------------

    /// Runs resolution until agreement, or until a concurrent view change
    /// evicts this thread (`Ok(None)`: the survivors resolve without us and
    /// the caller must give up locally).
    fn run_recovery(&mut self, start: RecoveryStart) -> Step<Option<ExceptionId>> {
        trace!(self, "recovery start: {start:?}");
        {
            let frame = self.stack.last_mut().expect("frame active");
            // Open the join-deferral window and pin the signalling cohort:
            // the view must not grow while resolution or signalling ranges
            // over it (see `Frame::cohort`).
            frame.cohort = Some(ViewSnapshot::from_slice(frame.membership.members()));
            let action = frame.action;
            self.observe(action, || EventKind::RecoveryStart {
                raised: matches!(start, RecoveryStart::Raise(_)),
            });
        }
        // Feed the stashed trigger(s) first, then our own transition.
        let pending: Vec<Message> = {
            let frame = self.stack.last_mut().expect("frame active");
            frame.pending_control.drain(..).collect()
        };
        let mut resolved: Option<ExceptionId> = None;
        for msg in pending {
            if let Some(r) = self.absorb_active_control(msg)? {
                resolved = Some(r);
            }
        }
        if self.stack.last().expect("frame active").evicted {
            // A pending view change removed us before we ever announced
            // our own transition: stay silent and give up.
            return Ok(None);
        }
        match &start {
            RecoveryStart::Raise(e) => {
                self.system.stats.lock().exceptions_raised += 1;
                // "inform external objects (used by Ti within A) of the
                // exception".
                let frame = self.stack.last().expect("frame active");
                let action = frame.action;
                for obj in &frame.objects {
                    obj.inform_exception(action, e.id().name());
                }
                self.observe(action, || EventKind::Raise {
                    exception: e.id().clone(),
                });
                if let Some(r) = self.feed_resolver(ProtoEventKind::Raise(e.clone()))? {
                    resolved = Some(r);
                }
            }
            RecoveryStart::Suspend => {
                if let Some(r) = self.feed_resolver(ProtoEventKind::Suspend)? {
                    resolved = Some(r);
                }
            }
        }
        // Collect control messages until agreement. With a configured
        // resolution timeout the wait is bounded per round (the membership
        // extension): expiry presumes the silent peers crashed, shrinks the
        // view and re-runs resolution; an applied view change — local or
        // remote — opens a fresh round for the shrunken view.
        let timeout = self
            .stack
            .last()
            .expect("frame active")
            .def
            .resolution_timeout;
        let mut deadline = timeout.map(|t| self.now().saturating_add(t));
        while resolved.is_none() {
            if self.stack.last().expect("frame active").evicted {
                return Ok(None);
            }
            let received = match self.recv_until(deadline)? {
                Some(r) => r,
                None => {
                    trace!(self, "bounded resolution wait expired");
                    if let Some(r) = self.presume_crashed()? {
                        resolved = Some(r);
                    }
                    deadline = timeout.map(|t| self.now().saturating_add(t));
                    continue;
                }
            };
            match self.route(received)? {
                Routed::Done => {}
                Routed::Corrupted => {
                    // Lost information during resolution; Assumption 1
                    // excludes this for the resolution algorithm, so count
                    // and continue (the signalling algorithm is the layer
                    // with the ƒ extension).
                    self.system.stats.lock().corrupted_ignored += 1;
                }
                Routed::ActiveControl(msg) => {
                    let view_change = matches!(msg, Message::ViewChange { .. });
                    if let Some(r) = self.absorb_active_control(msg)? {
                        resolved = Some(r);
                    }
                    if view_change {
                        deadline = timeout.map(|t| self.now().saturating_add(t));
                    }
                }
            }
        }
        let resolved = resolved.expect("loop exits only when resolved");
        if self.stack.last().expect("frame active").evicted {
            // The message that concluded resolution also carried a view
            // excluding us (a commit whose membership moved on): give up.
            return Ok(None);
        }
        trace!(self, "resolved: {resolved}");
        let frame = self.stack.last_mut().expect("frame active");
        frame.recovered = true;
        frame.resolved_exception = Some(resolved.clone());
        let action = frame.action;
        self.observe(action, || EventKind::Resolved {
            exception: resolved.clone(),
        });
        Ok(Some(resolved))
    }

    fn feed_resolver(&mut self, event: ProtoEventKind) -> Step<Option<ExceptionId>> {
        let (me, action, view, graph) = {
            let frame = self.stack.last().expect("frame active");
            (
                self.me,
                frame.action,
                ViewSnapshot::from_slice(frame.membership.members()),
                Arc::clone(&frame.def.graph),
            )
        };
        let actions: ProtoActions = {
            let frame = self.stack.last_mut().expect("frame active");
            let ctx = ProtoCtx {
                me,
                action,
                group: &view,
                graph: &graph,
            };
            match &event {
                ProtoEventKind::Raise(e) => {
                    frame.resolver.on_event(&ctx, ProtoEvent::LocalRaise(e))
                }
                ProtoEventKind::Suspend => frame.resolver.on_event(&ctx, ProtoEvent::LocalSuspend),
                ProtoEventKind::Control(m) => frame.resolver.on_event(&ctx, ProtoEvent::Control(m)),
            }
        };
        self.dispatch_proto_actions(action, actions)
    }

    /// Sends a resolver's outbound messages (stamping the frame's
    /// membership view into outgoing `Commit`s), charges `Treso` per
    /// resolution invocation and reports the resolved exception, if any.
    fn dispatch_proto_actions(
        &mut self,
        action: ActionId,
        mut actions: ProtoActions,
    ) -> Step<Option<ExceptionId>> {
        {
            let frame = self.stack.last_mut().expect("frame active");
            let epoch = frame.membership.epoch();
            if epoch > 0 {
                // Crash-free recoveries (epoch 0, nothing removed) keep
                // the resolver's pre-stamped empty set — no work at all.
                let removed = frame.membership.removed_shared();
                for (_, msg) in &mut actions.outbound {
                    if let Message::Commit {
                        view_epoch,
                        view_removed,
                        ..
                    } = msg
                    {
                        *view_epoch = epoch;
                        *view_removed = Arc::clone(&removed);
                    }
                }
            }
        }
        for (to, msg) in actions.outbound {
            self.endpoint.send(PartitionId::new(to.as_u32()), msg);
        }
        if actions.resolve_invocations > 0 {
            self.system.stats.lock().resolutions_invoked += u64::from(actions.resolve_invocations);
            self.observe(action, || EventKind::ResolutionInvoked {
                invocations: actions.resolve_invocations,
            });
            let delay = self.system.resolution_delay * actions.resolve_invocations;
            if !delay.is_zero() {
                self.endpoint.sleep(delay)?;
            }
        }
        Ok(actions.resolved)
    }

    // ------------------------------------------------------------------
    // Recovery: membership (crash-aware resolution, see crate::membership)
    // ------------------------------------------------------------------

    /// Feeds one resolution-control message for the active frame to the
    /// right machine: a `ViewChange` announcement goes to the membership
    /// layer, everything else to the resolver — a `Commit` first adopts
    /// the membership view piggybacked on it, so a commit racing ahead of
    /// its `ViewChange` announcement still shrinks this frame's view.
    fn absorb_active_control(&mut self, msg: Message) -> Step<Option<ExceptionId>> {
        let top = self.stack.len() - 1;
        match msg {
            Message::ViewChange { removed, .. } => {
                match self.adopt_removal_set(top, &removed) {
                    // Removals naming us mean the survivors resolve without
                    // us; do not re-elect over a view we are not part of.
                    Some(fresh) if !self.stack[top].evicted => self.feed_view_change(&fresh),
                    _ => Ok(None),
                }
            }
            msg => {
                if let Message::Commit { view_removed, .. } = &msg {
                    let removed = Arc::clone(view_removed);
                    self.adopt_removal_set(top, &removed);
                    if self.stack[top].evicted {
                        // The committed view excludes us: give up instead
                        // of acting on a resolution we are not part of.
                        return Ok(None);
                    }
                }
                self.feed_resolver(ProtoEventKind::Control(msg))
            }
        }
    }

    /// The bounded resolution wait expired: suspect the threads this
    /// participant is blocked on, remove them from the frame's view,
    /// announce the change to the survivors and re-run resolution with a
    /// crash exception synthesized on each silent suspect's behalf
    /// (presume-ƒ).
    fn presume_crashed(&mut self) -> Step<Option<ExceptionId>> {
        let suspects = {
            let frame = self.stack.last().expect("frame active");
            let view = ViewSnapshot::from_slice(frame.membership.members());
            let graph = Arc::clone(&frame.def.graph);
            let ctx = ProtoCtx {
                me: self.me,
                action: frame.action,
                group: &view,
                graph: &graph,
            };
            frame.resolver.waiting_on(&ctx)
        };
        if suspects.is_empty() {
            return Err(RuntimeError::Protocol(
                "bounded resolution wait expired but the protocol reports no suspects \
                 (resolution protocol without membership support?)"
                    .into(),
            )
            .into());
        }
        trace!(self, "presume crashed: {suspects:?}");
        self.suspect_round(SuspicionRound::Resolution, &suspects)
    }

    /// Round-agnostic suspicion: the bounded wait of `round` expired with
    /// the listed peers silent. Observes the round's timeout event, removes
    /// the suspects from the active frame's view, and announces the change
    /// to the *pre-removal* view — so a falsely suspected (live) peer
    /// learns of its eviction and gives up instead of counter-suspecting
    /// the survivors. For resolution rounds the resolver is then re-fed
    /// with a crash exception synthesized per suspect (presume-ƒ);
    /// signalling and exit rounds need no synthesis — their own ƒ rules
    /// cover the silence.
    fn suspect_round(
        &mut self,
        round: SuspicionRound,
        suspects: &[ThreadId],
    ) -> Step<Option<ExceptionId>> {
        let action = self.stack.last().expect("frame active").action;
        trace!(self, "suspect in {round:?}: {suspects:?}");
        match round {
            SuspicionRound::Resolution => {
                self.system.stats.lock().resolution_timeouts += 1;
                let s = suspects.to_vec();
                self.observe(action, || EventKind::ResolutionTimeout { suspects: s });
            }
            SuspicionRound::Signalling(r) => {
                self.system.stats.lock().signal_timeouts += 1;
                let s = suspects.to_vec();
                self.observe(action, || EventKind::SignalTimeout {
                    round: r,
                    suspects: s,
                });
            }
            SuspicionRound::Exit { epoch } => {
                self.system.stats.lock().exit_timeouts += 1;
                self.observe(action, || EventKind::ExitTimeout { epoch });
            }
        }
        // Quorum gate (primary-partition rule): when the suspects this
        // thread has *heard from* within the instance outnumber the view
        // that would survive their eviction, the unanimous silence is far
        // better explained by this thread's own connectivity (its outbound
        // announcements lost, or it lagging a round behind) than by a
        // majority of recently-alive peers all crashing inside one bounded
        // wait. A minority must not install a view the majority will never
        // adopt — the survivors' own suspicion of *us* is already in
        // flight, and acting on ours would split the membership. Give up
        // locally instead: the frame finalizes `Failed` without
        // broadcasting, exactly as if the survivors' eviction notice had
        // arrived in time. Peers that never sent a protocol message are
        // exempt from the count — their silence is indistinguishable from
        // a crash before the protocol ever reached them (presume-ƒ), so a
        // sole survivor can still evict a genuinely dead cohort.
        let refused = {
            let frame = self.stack.last().expect("frame active");
            let members = frame.membership.members();
            let survivors = members.iter().filter(|t| !suspects.contains(t)).count();
            let recently_alive = suspects
                .iter()
                .filter(|t| members.contains(t) && frame.heard_from.contains(t))
                .count();
            (survivors < recently_alive).then_some((survivors, recently_alive))
        };
        if let Some((survivors, recently_alive)) = refused {
            trace!(
                self,
                "suspicion refused: {survivors} survivor(s) vs \
                 {recently_alive} recently-alive suspect(s); giving up"
            );
            self.stack.last_mut().expect("frame active").evicted = true;
            return Ok(None);
        }
        let (epoch, recipients) = {
            let frame = self.stack.last_mut().expect("frame active");
            let recipients = ViewSnapshot::from_slice(frame.membership.members());
            let epoch = frame.membership.initiate(suspects).map_err(|reason| {
                Flow::from(RuntimeError::Protocol(format!(
                    "membership view change rejected: {reason}"
                )))
            })?;
            (epoch, recipients)
        };
        self.system.stats.lock().view_changes += 1;
        {
            let removed = suspects.to_vec();
            self.observe(action, || EventKind::ViewChange { epoch, removed });
        }
        // Announce before continuing the round: per-link FIFO then
        // guarantees every survivor sees the view change before any later
        // message this participant derives from it.
        let removed: Arc<[ThreadId]> = Arc::from(suspects);
        for &peer in recipients.iter().filter(|&&t| t != self.me) {
            self.endpoint.send(
                PartitionId::new(peer.as_u32()),
                Message::ViewChange {
                    action,
                    from: self.me,
                    epoch,
                    removed: Arc::clone(&removed),
                },
            );
        }
        match round {
            SuspicionRound::Resolution => self.feed_view_change(suspects),
            _ => Ok(None),
        }
    }

    /// Applies a removal set announced by a peer — a `ViewChange` step set
    /// or the cumulative set piggybacked on a `Commit` — to the frame at
    /// `index`: already-removed threads are ignored, anything new shrinks
    /// the view at the next local epoch (set-wise convergence; see
    /// [`crate::membership`]). Returns the freshly removed threads, if
    /// any. A removal naming this thread itself marks the frame evicted:
    /// a peer suspected us wrongly — we are alive — and the survivors
    /// have moved on without us.
    fn adopt_removal_set(&mut self, index: usize, removed: &[ThreadId]) -> Option<Vec<ThreadId>> {
        let (epoch, fresh) = self.stack[index].membership.adopt_removals(removed)?;
        let action = self.stack[index].action;
        trace!(self, "adopt view change v{epoch}: -{fresh:?}");
        self.system.stats.lock().view_changes += 1;
        {
            let removed = fresh.clone();
            self.observe(action, || EventKind::ViewChange { epoch, removed });
        }
        if fresh.contains(&self.me) {
            self.stack[index].evicted = true;
        }
        Some(fresh)
    }

    /// Answers a restarted participant's `JoinRequest` at the frame at
    /// `index`: re-admits it into the view (epoch-numbered rejoin) and
    /// sends back the current view, exit epoch and resolved exception so
    /// the joiner can fast-forward. If this thread already voted in the
    /// current exit epoch, the vote is re-sent — the original broadcast
    /// went to the joiner's pre-crash endpoint and was discarded.
    fn grant_join(&mut self, index: usize, joiner: ThreadId) {
        if !self.stack[index].def.group.contains(&joiner) {
            return; // never part of this action's group; ignore
        }
        let action = self.stack[index].action;
        if let Some(epoch) = self.stack[index].membership.adopt_rejoin(joiner) {
            trace!(self, "readmit {joiner} at v{epoch}");
            self.observe(action, || EventKind::Rejoin {
                epoch,
                thread: joiner,
            });
        }
        // (A joiner the view never removed — it restarted before anyone
        // suspected it — simply gets its unchanged membership confirmed.)
        let (grant, exit_epoch, revote) = {
            let frame = &mut self.stack[index];
            let grant = Message::JoinGrant {
                action,
                from: self.me,
                thread: joiner,
                epoch: frame.membership.epoch(),
                removed: frame.membership.removed_shared(),
                exit_epoch: frame.exit_epoch,
                resolved: frame.resolved_exception.clone(),
            };
            let revote = frame
                .exit_votes
                .get(&frame.exit_epoch)
                .is_some_and(|v| v.contains(&self.me));
            (grant, frame.exit_epoch, revote)
        };
        let to = PartitionId::new(joiner.as_u32());
        self.endpoint.send(to, grant);
        if revote {
            self.endpoint.send(
                to,
                Message::ExitVote {
                    action,
                    from: self.me,
                    epoch: exit_epoch,
                },
            );
        }
    }

    /// Ends the join-deferral window a recovery opened: clears the
    /// signalling cohort and grants the rejoin requests that arrived while
    /// resolution/signalling ranged over it.
    fn flush_pending_joins(&mut self) {
        let top = self.stack.len() - 1;
        self.stack[top].cohort = None;
        let pending = std::mem::take(&mut self.stack[top].pending_join_requests);
        for joiner in pending {
            self.grant_join(top, joiner);
        }
    }

    /// Notifies the resolver of an applied view change: `removed` threads
    /// are gone, and a synthesized crash exception stands in for each one
    /// that never announced anything. May conclude the resolution (this
    /// participant may now hold the quorum and the election).
    fn feed_view_change(&mut self, removed: &[ThreadId]) -> Step<Option<ExceptionId>> {
        let synthesized = synthesize_crashes(removed);
        let (me, action, view, graph) = {
            let frame = self.stack.last().expect("frame active");
            (
                self.me,
                frame.action,
                ViewSnapshot::from_slice(frame.membership.members()),
                Arc::clone(&frame.def.graph),
            )
        };
        let actions: ProtoActions = {
            let frame = self.stack.last_mut().expect("frame active");
            let ctx = ProtoCtx {
                me,
                action,
                group: &view,
                graph: &graph,
            };
            frame.resolver.on_view_change(&ctx, removed, &synthesized)
        };
        self.dispatch_proto_actions(action, actions)
    }

    // ------------------------------------------------------------------
    // Recovery: handling
    // ------------------------------------------------------------------

    fn run_handler(&mut self, resolved: &ExceptionId) -> Step<HandlerVerdict> {
        let (handler, role, action) = {
            let frame = self.stack.last_mut().expect("frame active");
            frame.in_handler = Some(resolved.clone());
            (
                frame.def.handler_for(frame.role, resolved),
                frame.role,
                frame.action,
            )
        };
        let _ = role;
        self.observe(action, || EventKind::HandlerStart {
            exception: resolved.clone(),
        });
        let verdict = match handler {
            Some(h) => {
                let r = h(self);
                if let Some(frame) = self.stack.last_mut() {
                    frame.in_handler = None;
                }
                r?
            }
            None => {
                if let Some(frame) = self.stack.last_mut() {
                    frame.in_handler = None;
                }
                DefInner::default_verdict(resolved)
            }
        };
        self.observe(action, || EventKind::HandlerEnd {
            verdict: verdict.clone(),
        });
        Ok(verdict)
    }

    // ------------------------------------------------------------------
    // Recovery: signalling (§3.4)
    // ------------------------------------------------------------------

    fn run_signalling(&mut self, verdict: HandlerVerdict) -> Step<Signal> {
        let my_signal = verdict.to_signal();
        if self.stack.last().expect("frame active").evicted {
            // Removed from the view: the survivors no longer expect our
            // announcements; any broadcast would only confuse their rounds.
            return Ok(Signal::Failure);
        }
        // Coordinate over the current view: presumed-crashed members are
        // not waited on (their silence would otherwise force ƒ through
        // the signalling timeout even after recovery handled the crash).
        let group_len = self
            .stack
            .last()
            .expect("frame active")
            .signalling_group()
            .len();
        if group_len == 1 {
            // No coordination needed; µ still requires the local undo.
            return match my_signal {
                Signal::Undo => Ok(self.perform_undo()),
                other => Ok(other),
            };
        }

        let collected = self.signal_round(SignalRound::First, my_signal.clone())?;
        let any_failure = collected.iter().any(|s| matches!(s, Signal::Failure))
            || self
                .stack
                .last()
                .expect("frame active")
                .corrupted_during_signalling;
        let any_undo = collected.iter().any(|s| matches!(s, Signal::Undo));

        if any_failure {
            // Case 3: ƒ dominates — every thread signals ƒ.
            return Ok(Signal::Failure);
        }
        if !any_undo {
            // Case 1: everyone signals its own exception (or nothing).
            return Ok(my_signal);
        }
        // Case 2: µ requested — all threads undo, then exchange again.
        self.system.stats.lock().undo_rounds += 1;
        let after_undo = self.perform_undo();
        let collected = self.signal_round(SignalRound::AfterUndo, after_undo)?;
        if collected.iter().any(|s| matches!(s, Signal::Failure))
            || self
                .stack
                .last()
                .expect("frame active")
                .corrupted_during_signalling
        {
            Ok(Signal::Failure)
        } else {
            Ok(Signal::Undo)
        }
    }

    /// Undoes this thread's effects: rolls back every object it touched and
    /// runs the role's undo hook. Returns the signal to announce (µ on
    /// success, ƒ when some undo operation failed).
    fn perform_undo(&mut self) -> Signal {
        let (action, def, role) = {
            let frame = self.stack.last().expect("frame active");
            (frame.action, Arc::clone(&frame.def), frame.role)
        };
        let mut ok = true;
        if let Some(hook) = def.undo_hooks.get(&role).cloned() {
            match hook(self) {
                Ok(hook_ok) => ok &= hook_ok,
                Err(_) => ok = false,
            }
        }
        let now = self.endpoint.now();
        let frame = self.stack.last_mut().expect("frame active");
        let objects = std::mem::take(&mut frame.objects);
        for obj in &objects {
            match obj.rollback(action, now) {
                Ok(wake) => self.forward_wake(wake),
                Err(ObjectError::UndoImpossible { .. }) => {
                    if let Ok(wake) = obj.commit_tainted(action, now) {
                        self.forward_wake(wake);
                    }
                    ok = false;
                }
                Err(ObjectError::NotAcquired { .. }) => {}
            }
        }
        if ok {
            Signal::Undo
        } else {
            Signal::Failure
        }
    }

    /// One exchange of the signalling algorithm: broadcast my signal for
    /// `round`, collect everyone's.
    fn signal_round(&mut self, round: SignalRound, mine: Signal) -> Step<Vec<Signal>> {
        let (action, group, timeout) = {
            let frame = self.stack.last_mut().expect("frame active");
            frame.signals.insert((round, self.me), mine.clone());
            (
                frame.action,
                frame.signalling_group(),
                frame.def.signal_timeout,
            )
        };
        for &peer in group.iter().filter(|&&t| t != self.me) {
            self.endpoint.send(
                PartitionId::new(peer.as_u32()),
                Message::ToBeSignalled {
                    action,
                    from: self.me,
                    round,
                    signal: mine.clone(),
                },
            );
        }
        // The §3.4 timeout is a per-round deadline: unrelated traffic
        // (exit votes, retained triggers for other instances) must not
        // extend the wait, or a peer's signalling stall becomes unbounded.
        let deadline = timeout.map(|t| self.now().saturating_add(t));
        loop {
            {
                let frame = self.stack.last().expect("frame active");
                // Re-derive the group each pass: a view change adopted by
                // the router mid-round must not leave us waiting on a
                // freshly removed member.
                let group = frame.signalling_group();
                let have = group
                    .iter()
                    .filter(|&&t| frame.signals.contains_key(&(round, t)))
                    .count();
                if have == group.len() {
                    let collected = group
                        .iter()
                        .map(|&t| frame.signals[&(round, t)].clone())
                        .collect();
                    return Ok(collected);
                }
            }
            let received = match self.recv_until(deadline)? {
                Some(r) => r,
                None => {
                    let (epoch, group_now, suspects) = {
                        let frame = self.stack.last().expect("frame active");
                        let group_now = frame.signalling_group();
                        let suspects: Vec<ThreadId> = group_now
                            .iter()
                            .copied()
                            .filter(|&t| t != self.me && !frame.signals.contains_key(&(round, t)))
                            .collect();
                        (frame.membership.epoch(), group_now, suspects)
                    };
                    if epoch > 0
                        && !suspects.is_empty()
                        && !self.stack.last().expect("frame active").evicted
                    {
                        // The view is already degraded — a crash was
                        // detected earlier in this action's life — so a
                        // missing announcement here is presumed another
                        // crash, not a §3.4-tolerated loss: suspect the
                        // silent peers so the exit protocol will not wait
                        // for them. Against a pristine view the two are
                        // indistinguishable and the pure ƒ rule below
                        // stands alone (a genuinely crashed peer is still
                        // caught by the exit round's suspicion).
                        self.suspect_round(SuspicionRound::Signalling(round), &suspects)?;
                    }
                    // §3.4 extension: a missing announcement (lost message
                    // or crashed peer) is treated as ƒ; all fault-free
                    // threads still signal coordinated exceptions. Fill
                    // and conclude over the group as it was when the wait
                    // expired — every member of it reaches ƒ through its
                    // own timeout, so the round's outcome stays agreed
                    // even when the suspicion above shrank the view.
                    // (Only reachable with a deadline.)
                    let frame = self.stack.last_mut().expect("frame active");
                    for &t in &group_now {
                        frame.signals.entry((round, t)).or_insert(Signal::Failure);
                    }
                    let collected = group_now
                        .iter()
                        .map(|&t| frame.signals[&(round, t)].clone())
                        .collect();
                    return Ok(collected);
                }
            };
            match self.route(received)? {
                Routed::Done => {}
                Routed::Corrupted => {
                    let frame = self.stack.last_mut().expect("frame active");
                    frame.corrupted_during_signalling = true;
                }
                Routed::ActiveControl(_) => {
                    // Straggler Exception/Suspended cannot reach here (the
                    // frame is marked recovered); Commit stragglers are
                    // dropped by the router.
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Exit protocol (§5.1)
    // ------------------------------------------------------------------

    fn run_exit(&mut self) -> Step<ExitResult> {
        // Vote and collect over the current view: a recovery that removed
        // a presumed-crashed member must not wait for the dead thread's
        // vote (it would only ever leave through the exit timeout's ƒ).
        if self.stack.last().expect("frame active").evicted {
            // A peer's view change removed us: the survivors no longer
            // count our vote, and broadcasting one would only confuse the
            // epochs they are collecting.
            return Ok(ExitResult::Evicted);
        }
        let (action, group, epoch, timeout, is_rejoiner) = {
            let frame = self.stack.last_mut().expect("frame active");
            let epoch = frame.exit_epoch;
            frame.exit_votes.entry(epoch).or_default().insert(self.me);
            (
                frame.action,
                ViewSnapshot::from_slice(frame.membership.members()),
                epoch,
                frame.def.exit_timeout,
                frame.is_rejoiner,
            )
        };
        self.observe(action, || EventKind::ExitStart { epoch });
        let mut deadline = timeout.map(|t| self.now().saturating_add(t));
        for &peer in group.iter().filter(|&&t| t != self.me) {
            self.endpoint.send(
                PartitionId::new(peer.as_u32()),
                Message::ExitVote {
                    action,
                    from: self.me,
                    epoch,
                },
            );
        }
        loop {
            {
                let frame = self.stack.last().expect("frame active");
                if frame.evicted {
                    return Ok(ExitResult::Evicted);
                }
                // Re-derive the wait set each pass: suspicion shrinks it,
                // and a granted rejoin grows it (the readmitted thread's
                // vote is required again).
                let group = ViewSnapshot::from_slice(frame.membership.members());
                if frame
                    .exit_votes
                    .get(&epoch)
                    .is_some_and(|votes| group.iter().all(|t| votes.contains(t)))
                {
                    return Ok(ExitResult::Done);
                }
            }
            let received = match self.recv_until(deadline)? {
                Some(r) => r,
                None => {
                    // (Only reachable with a deadline.)
                    if is_rejoiner {
                        // A rejoiner may simply be missing votes that were
                        // broadcast while it was down; suspecting the
                        // survivors over that silence would evict threads
                        // that are perfectly alive. Give up silently.
                        self.system.stats.lock().exit_timeouts += 1;
                        self.observe(action, || EventKind::ExitTimeout { epoch });
                        return Ok(ExitResult::Evicted);
                    }
                    // Round-agnostic suspicion: presume the silent peers
                    // crashed, announce the shrunken view and keep
                    // collecting votes over it — the action concludes
                    // among the survivors instead of resolving to ƒ
                    // wholesale.
                    let suspects: Vec<ThreadId> = {
                        let frame = self.stack.last().expect("frame active");
                        let votes = frame.exit_votes.get(&epoch);
                        frame
                            .membership
                            .members()
                            .iter()
                            .copied()
                            .filter(|t| !votes.is_some_and(|v| v.contains(t)))
                            .collect()
                    };
                    if !suspects.is_empty() {
                        self.suspect_round(SuspicionRound::Exit { epoch }, &suspects)?;
                    }
                    deadline = timeout.map(|t| self.now().saturating_add(t));
                    continue;
                }
            };
            match self.route(received)? {
                Routed::Done => {}
                Routed::Corrupted => {
                    self.system.stats.lock().corrupted_ignored += 1;
                }
                Routed::ActiveControl(msg) => match msg {
                    Message::Exception { .. } | Message::Suspended { .. } => {
                        // A peer started recovery while we were leaving:
                        // stash the trigger and join it.
                        let frame = self.stack.last_mut().expect("frame active");
                        frame.pending_control.push_back(msg);
                        return Ok(ExitResult::Recover);
                    }
                    Message::ViewChange { removed, .. } => {
                        // A peer's exit wait expired and it suspected
                        // someone — possibly us. This cannot be a missed
                        // recovery: any trigger would have arrived long
                        // before a suspicion announcement (suspicion needs
                        // a full bounded wait to expire first). Adopt the
                        // removals and keep exiting over the new view.
                        let top = self.stack.len() - 1;
                        self.adopt_removal_set(top, &removed);
                    }
                    other => {
                        return Err(RuntimeError::Protocol(format!(
                            "unexpected {} during exit",
                            other.kind()
                        ))
                        .into());
                    }
                },
            }
        }
    }

    // ------------------------------------------------------------------
    // Message routing
    // ------------------------------------------------------------------

    /// Non-blocking poll point: absorbs everything deliverable now; unwinds
    /// if recovery must take over (or a scheduled crash instant passed).
    fn poll(&mut self) -> Step {
        self.crash_check()?;
        while let Some(received) = self.endpoint.try_recv()? {
            self.absorb_or_unwind(received)?;
        }
        Ok(())
    }

    /// Routes one message during *body* execution: control messages for the
    /// active action interrupt it.
    fn absorb_or_unwind(&mut self, received: Received<Message>) -> Step {
        match self.route(received)? {
            Routed::Done => Ok(()),
            Routed::Corrupted => {
                // A corrupted message during normal computation raises the
                // action's corruption exception (Figure 7's `l_mes`).
                match self.stack.last() {
                    Some(frame) if frame.in_handler.is_none() && !frame.recovered => {
                        let e = Exception::new(frame.def.corruption_exception.clone())
                            .with_origin(self.me)
                            .with_detail("corrupted message delivered");
                        Err(Flow::new(Unwind::Raise(e)))
                    }
                    _ => {
                        self.system.stats.lock().corrupted_ignored += 1;
                        Ok(())
                    }
                }
            }
            Routed::ActiveControl(msg) => match msg {
                Message::Exception { .. }
                | Message::Suspended { .. }
                | Message::ViewChange { .. } => {
                    let frame = self.stack.last_mut().expect("active control implies frame");
                    frame.pending_control.push_back(msg);
                    Err(Flow::new(Unwind::Suspend))
                }
                other => Err(RuntimeError::Protocol(format!(
                    "unexpected {} while body running",
                    other.kind()
                ))
                .into()),
            },
        }
    }

    /// Classifies one received message relative to the action stack.
    fn route(&mut self, received: Received<Message>) -> Result<Routed, Flow> {
        let msg = match received.msg {
            Some(m) => m,
            None => return Ok(Routed::Corrupted),
        };
        trace!(
            self,
            "recv {} from {} for {}",
            msg.kind(),
            msg.from(),
            msg.action()
        );
        let action = msg.action();
        let position = self.stack.iter().position(|f| f.action == action);
        match position {
            Some(i) if i + 1 == self.stack.len() => self.route_to_frame(i, msg, true),
            Some(i) => self.route_to_frame(i, msg, false),
            None => {
                if !self.finished.contains(&action.serial()) && self.retained.len() < RETAINED_CAP {
                    // For an action this thread has not entered yet:
                    // "retain the Exception or Suspended message till Ti
                    // enters A*". (Messages for instances this thread will
                    // never enter — abandoned by recovery at a peer — stay
                    // here harmlessly until the cap evicts them.)
                    self.retained.push(msg);
                } // else: straggler of a finished/aborted instance; drop.
                Ok(Routed::Done)
            }
        }
    }

    fn route_to_frame(&mut self, index: usize, msg: Message, is_top: bool) -> Result<Routed, Flow> {
        let target = self.stack[index].action;
        if !matches!(msg, Message::App { .. }) {
            // Protocol traffic proves the sender advanced this instance's
            // protocol: liveness evidence for the eviction quorum gate.
            self.stack[index].heard_from.insert(msg.from());
        }
        match msg {
            Message::Exception { .. } | Message::Suspended { .. } => {
                if self.stack[index].recovered || self.stack[index].aborting {
                    // Straggler after commit/abort: the termination model
                    // admits nothing new once handlers started.
                    return Ok(Routed::Done);
                }
                if is_top {
                    Ok(Routed::ActiveControl(msg))
                } else {
                    // Recovery at an enclosing action: stash the trigger
                    // there and unwind, aborting nested frames on the way.
                    self.stack[index].pending_control.push_back(msg);
                    Err(Flow::new(Unwind::Outer { target, eab: None }))
                }
            }
            Message::ViewChange { ref removed, .. } => {
                if self.stack[index].aborting {
                    return Ok(Routed::Done);
                }
                // Announcements from threads this view already removed are
                // adopted like any other: in a symmetric mutual-eviction
                // race (both sides time out within one message latency and
                // evict each other) mutual adoption collapses both views
                // into one removal set covering both announcers — each side
                // observes its own eviction and steps aside consistently.
                // The asymmetric case (a partitioned minority counter-
                // evicting a recently-alive majority) never reaches this
                // point: the eviction quorum gate refuses the suspicion on
                // the announcer's side before anything is broadcast.
                if self.stack[index].recovered {
                    // Post-recovery suspicion from a peer's signalling or
                    // exit wait (set-wise: already-known removals are
                    // no-ops): adopt without disturbing whatever round
                    // this frame is in — the rounds re-derive their group
                    // from the view each pass.
                    let removed: Vec<ThreadId> = removed.to_vec();
                    self.adopt_removal_set(index, &removed);
                    return Ok(Routed::Done);
                }
                if is_top {
                    Ok(Routed::ActiveControl(msg))
                } else {
                    // A view change for a not-yet-recovered enclosing
                    // action: recovery is (or will be) running there.
                    self.stack[index].pending_control.push_back(msg);
                    Err(Flow::new(Unwind::Outer { target, eab: None }))
                }
            }
            Message::Commit { .. } | Message::Resolve { .. } => {
                // A commit may race with an enclosing-level trigger that is
                // aborting this frame: the nested resolution completed at a
                // peer while this thread had already abandoned it (§3.3.1
                // gives the enclosing recovery precedence).
                if self.stack[index].recovered || self.stack[index].aborting {
                    return Ok(Routed::Done);
                }
                if is_top {
                    Ok(Routed::ActiveControl(msg))
                } else {
                    Err(RuntimeError::Protocol(
                        "resolution message received for enclosing action while nested".into(),
                    )
                    .into())
                }
            }
            Message::ToBeSignalled {
                from,
                round,
                signal,
                ..
            } => {
                self.stack[index].signals.insert((round, from), signal);
                Ok(Routed::Done)
            }
            Message::ExitVote { from, epoch, .. } => {
                self.stack[index]
                    .exit_votes
                    .entry(epoch)
                    .or_default()
                    .insert(from);
                Ok(Routed::Done)
            }
            Message::JoinRequest { from, .. } => {
                if self.stack[index].aborting || self.stack[index].evicted {
                    // Nothing worth granting: this frame's view is moot.
                    return Ok(Routed::Done);
                }
                if self.stack[index].cohort.is_some() {
                    // Mid-recovery: the view must not grow while
                    // resolution or signalling ranges over it. Granted
                    // when the recovery's exit epoch opens.
                    self.stack[index].pending_join_requests.push(from);
                } else {
                    self.grant_join(index, from);
                }
                Ok(Routed::Done)
            }
            Message::JoinGrant { .. } => {
                // Grants are addressed to the requester and consumed in
                // `Ctx::rejoin`'s own receive loop; one landing here is a
                // duplicate from an additional granter, arriving after the
                // first grant already readmitted us.
                Ok(Routed::Done)
            }
            Message::App {
                from, tag, payload, ..
            } => {
                self.stack[index]
                    .app_inbox
                    .push_back(AppMsg { from, tag, payload });
                Ok(Routed::Done)
            }
        }
    }

    /// Called by the system when the thread body finishes: release the
    /// endpoint.
    pub(crate) fn shutdown(self) {
        self.endpoint.retire();
    }
}

/// Owned version of [`ProtoEvent`] for queueing.
enum ProtoEventKind {
    Raise(Exception),
    Suspend,
    Control(Message),
}

enum ExitResult {
    Done,
    Recover,
    /// This thread is no longer part of the view — a peer's (wrong)
    /// suspicion removed it, or a rejoiner gave up on votes it can never
    /// collect. The caller finalizes as `Failed` without further rounds.
    Evicted,
}
