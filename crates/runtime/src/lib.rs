//! Distributed CA-action run-time with coordinated exception handling — the
//! system implementation of Xu, Romanovsky & Randell (ICDCS 1998).
//!
//! A [`System`] hosts participating threads, each on its own OS thread bound
//! to a network partition (the paper's architecture, Figure 8). Threads
//! enter [`ActionDef`]s — Coordinated Atomic actions — through
//! [`Ctx::enter`], cooperate via role-to-role messages and transactional
//! [`SharedObject`]s, and recover from exceptions through:
//!
//! * the **resolution algorithm** of §3.3.2 (default
//!   [`XrrResolution`], pluggable via [`protocol::ResolutionProtocol`] for
//!   the baseline comparisons of §5.3),
//! * the **membership extension** ([`membership`]): a bounded resolution
//!   wait whose expiry presumes silent peers crashed, shrinks the
//!   per-instance membership view and resolves a synthesized crash
//!   exception among the survivors,
//! * the **abortion cascade** over nested actions (§3.3.1),
//! * exception **handlers** under the termination model (§3.1),
//! * the **signalling algorithm** of §3.4 coordinating `ε`/µ/ƒ, and
//! * a synchronous **exit protocol** (§5.1) — signalling and exit range
//!   over the current membership view.
//!
//! Rust has no asynchronous exceptions, so the Ada 95 ATC of the paper's
//! prototype becomes a `Result`-based design: all role operations return
//! [`Step`], and coordinated recovery takes over when an operation returns
//! `Err(`[`Flow`]`)` — propagate it with `?` and the action boundary
//! catches it.
//!
//! # Determinism
//!
//! On the virtual-time network every run is byte-replayable, including
//! shared-object traffic: [`SharedObject`] acquisition is **mediated
//! through the simulation** — requests queue per object and grants follow
//! a deterministic `(registration virtual time, thread id)` order at
//! scheduler-visible quantum ticks (see [`objects`]), costing each access
//! one quantum of virtual time. Scheduling is **wake-on-release**: a
//! blocked waiter parks until the arbitration event that can actually
//! enable it (a release, grant or cancellation) schedules its next
//! on-grid attempt as a targeted doorbell
//! ([`caa_simnet::Network::schedule_wake`]) — grant order and grant
//! instants are identical to the historical per-quantum polling design,
//! but the per-tick retry wake-ups are gone. Fault tolerance is bounded,
//! not hung on:
//! the §3.4 signalling timeout treats missing announcements as ƒ, and the
//! same timeout generalised to the exit protocol
//! ([`ActionDefBuilder::exit_timeout`]) resolves a crash-stopped peer's
//! missing vote ([`Ctx::crash_stop`]) to abortion at a deterministic
//! virtual deadline.
//!
//! # Examples
//!
//! Two roles cooperate; one raises; both run their handlers for the
//! resolved exception; the action still exits with success after forward
//! recovery:
//!
//! ```
//! use caa_runtime::{ActionDef, System};
//! use caa_core::exception::Exception;
//! use caa_core::outcome::{ActionOutcome, HandlerVerdict};
//! use caa_core::time::secs;
//! use caa_exgraph::ExceptionGraphBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = ExceptionGraphBuilder::new().primitive("sensor_glitch").build()?;
//! let action = ActionDef::builder("calibrate")
//!     .role("driver", 0u32)
//!     .role("monitor", 1u32)
//!     .graph(graph)
//!     .handler("driver", "sensor_glitch", |_| Ok(HandlerVerdict::Recovered))
//!     .handler("monitor", "sensor_glitch", |_| Ok(HandlerVerdict::Recovered))
//!     .build()?;
//!
//! let mut sys = System::builder().build();
//! let a = action.clone();
//! sys.spawn("T0", move |ctx| {
//!     let outcome = ctx.enter(&a, "driver", |rc| {
//!         rc.work(secs(0.1))?;
//!         rc.raise(Exception::new("sensor_glitch"))
//!     })?;
//!     assert_eq!(outcome, ActionOutcome::Success);
//!     Ok(())
//! });
//! sys.spawn("T1", move |ctx| {
//!     let outcome = ctx.enter(&action, "monitor", |rc| rc.work(secs(5.0)))?;
//!     assert_eq!(outcome, ActionOutcome::Success);
//!     Ok(())
//! });
//! sys.run().expect_ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod action;
pub mod context;
mod error;
pub mod membership;
pub mod objects;
pub mod observe;
mod pool;
pub mod protocol;
mod system;

pub use action::{ActionDef, ActionDefBuilder, DefError};
pub use context::{AppMsg, Ctx};
pub use error::{Flow, RuntimeError, Step};
pub use objects::SharedObject;
pub use protocol::XrrResolution;
pub use system::{RuntimeStats, System, SystemBuilder, SystemReport};
