//! Observation hooks into the CA-action runtime.
//!
//! A [`System`](crate::System) can carry an [`Observer`] (see
//! [`SystemBuilder::observer`](crate::SystemBuilder::observer)) that is
//! invoked synchronously at every protocol-significant step of every
//! participating thread: action entry/exit, raises, recovery, resolution,
//! handler execution, signalling and abortion. The simulation-testing
//! harness (`caa-harness`) builds its structured traces and invariant
//! oracles on these hooks; they are equally useful for ad-hoc diagnostics.
//!
//! Observers run on the participating threads themselves, inside the
//! virtual-time simulation: they must be cheap, must not block on other
//! participants, and must not call back into the observed
//! [`Ctx`](crate::Ctx).
//!
//! Events from one thread arrive in that thread's execution order; events
//! from different threads interleave in arbitrary *wall-clock* order even
//! though their virtual timestamps are deterministic. Consumers that need a
//! canonical order should sort by `(at, thread, per-thread sequence)` as
//! the harness's trace recorder does.

use std::fmt;
use std::sync::Arc;

use caa_core::exception::{ExceptionId, Signal};
use caa_core::ids::{ActionId, ThreadId};
use caa_core::message::SignalRound;
use caa_core::outcome::{ActionOutcome, HandlerVerdict};
use caa_core::time::VirtualInstant;

/// One observed runtime step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time at which the step happened.
    pub at: VirtualInstant,
    /// The participating thread that performed the step.
    pub thread: ThreadId,
    /// The action instance the step belongs to.
    pub action: ActionId,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of observable runtime steps.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// The thread entered an action, playing `role` at nesting `depth`
    /// (1 = top level).
    Enter {
        /// Action (definition) name (shared with the definition — building
        /// the event clones a reference, not the text).
        name: Arc<str>,
        /// Role the thread performs (shared with the definition).
        role: Arc<str>,
        /// Nesting depth after entry; top-level actions are depth 1.
        depth: usize,
    },
    /// The action completed with `outcome` (objects committed or rolled
    /// back accordingly and the frame popped).
    Exit {
        /// The outcome the action completed with.
        outcome: ActionOutcome,
    },
    /// The action was aborted by enclosing-level recovery; `eab` is the
    /// abortion-handler exception propagated outward, if any (§3.3.1).
    Abort {
        /// Exception produced by the abortion handler.
        eab: Option<ExceptionId>,
    },
    /// The thread raised `exception` in the action (§3.1).
    Raise {
        /// The raised exception's identity.
        exception: ExceptionId,
    },
    /// The thread started coordinated recovery of the action, either
    /// because it raised (`raised`) or because peers' exceptions suspended
    /// it.
    RecoveryStart {
        /// Whether this thread's own raise started the recovery.
        raised: bool,
    },
    /// The resolution procedure (exception-graph search) ran `invocations`
    /// times on this thread while processing one protocol event.
    ResolutionInvoked {
        /// Number of graph searches performed.
        invocations: u32,
    },
    /// Resolution agreement was reached on this thread: every participant
    /// must handle `exception` (§3.3.2).
    Resolved {
        /// The resolving exception.
        exception: ExceptionId,
    },
    /// The thread began executing its handler for `exception`.
    HandlerStart {
        /// The resolving exception being handled.
        exception: ExceptionId,
    },
    /// The handler finished with `verdict` (termination model, §3.1).
    HandlerEnd {
        /// The handler's verdict.
        verdict: HandlerVerdict,
    },
    /// The signalling algorithm concluded on this thread with `signal`
    /// (§3.4).
    SignalOutcome {
        /// The coordinated signal this thread will act on.
        signal: Signal,
    },
    /// The thread acquired external object `object` for the action (opened
    /// at least one transaction layer). Grant order is deterministic — see
    /// the `caa-runtime` objects module — so these events byte-replay.
    ObjectAcquired {
        /// The object's name (shared with the object — building the event
        /// clones a reference, not the text).
        object: Arc<str>,
        /// Virtual nanoseconds the thread waited for the grant, from
        /// enqueueing the request to acquisition. Deterministic (virtual
        /// time), but deliberately **not rendered** into the trace text:
        /// rendered traces and their fingerprints predate this field and
        /// stay byte-identical.
        waited_ns: u64,
    },
    /// The thread started the exit protocol (vote broadcast) for epoch
    /// `epoch` of the action.
    ExitStart {
        /// The frame's exit epoch (incremented per recovery).
        epoch: u32,
    },
    /// The bounded exit wait expired with votes missing: the thread
    /// suspects the listed peers crashed and initiates a membership view
    /// change, then keeps collecting votes over the shrunken view
    /// (round-agnostic suspicion — see `caa-runtime`'s `membership`
    /// module).
    ExitTimeout {
        /// The frame's exit epoch.
        epoch: u32,
    },
    /// The bounded signalling wait expired with announcements missing: the
    /// thread suspects the listed peers crashed and initiates a membership
    /// view change, then re-collects the round over the shrunken view.
    SignalTimeout {
        /// Which signalling exchange timed out.
        round: SignalRound,
        /// The silent peers whose announcements never arrived.
        suspects: Vec<ThreadId>,
    },
    /// The bounded resolution wait expired: the thread suspects the listed
    /// peers crashed and initiates a membership view change (presume-ƒ —
    /// see `caa-runtime`'s `membership` module).
    ResolutionTimeout {
        /// The silent peers this thread's resolution was blocked on.
        suspects: Vec<ThreadId>,
    },
    /// The thread's membership view of this action advanced to `epoch`,
    /// removing `removed` — either by its own failure detector, by a
    /// peer's `ViewChange` announcement, or by the membership data
    /// piggybacked on a resolver's `Commit`.
    ViewChange {
        /// The new membership epoch.
        epoch: u32,
        /// The threads this change removed from the view.
        removed: Vec<ThreadId>,
    },
    /// The thread crash-stopped inside this action: the frame was
    /// discarded without handlers, messages or an exit.
    Crash,
    /// A restarted participant asked `to` (a survivor of its last known
    /// view) for the current view and state summary (epoch-numbered
    /// rejoin, step 1).
    JoinRequested {
        /// The survivor the request was addressed to.
        to: ThreadId,
    },
    /// The thread's membership view of this action grew to `epoch`,
    /// re-admitting restarted participant `thread` — either by granting
    /// its `JoinRequest` locally or by applying a peer's `JoinGrant`
    /// broadcast. Observed by every member of the new view, including the
    /// rejoiner itself.
    Rejoin {
        /// The new membership epoch.
        epoch: u32,
        /// The re-admitted thread.
        thread: ThreadId,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Enter { name, role, depth } => {
                write!(f, "enter {name} as {role} depth={depth}")
            }
            EventKind::Exit { outcome } => write!(f, "exit {outcome}"),
            EventKind::Abort { eab: Some(e) } => write!(f, "abort eab={e}"),
            EventKind::Abort { eab: None } => f.write_str("abort"),
            EventKind::Raise { exception } => write!(f, "raise {exception}"),
            EventKind::RecoveryStart { raised } => {
                write!(f, "recovery {}", if *raised { "raise" } else { "suspend" })
            }
            EventKind::ResolutionInvoked { invocations } => {
                write!(f, "resolve-invoked x{invocations}")
            }
            EventKind::Resolved { exception } => write!(f, "resolved {exception}"),
            EventKind::HandlerStart { exception } => write!(f, "handler-start {exception}"),
            EventKind::HandlerEnd { verdict } => write!(f, "handler-end {verdict:?}"),
            EventKind::SignalOutcome { signal } => write!(f, "signal {signal:?}"),
            EventKind::ObjectAcquired { object, .. } => write!(f, "object acquire {object}"),
            EventKind::ExitStart { epoch } => write!(f, "exit start e{epoch}"),
            EventKind::ExitTimeout { epoch } => write!(f, "exit timeout e{epoch}"),
            EventKind::ResolutionTimeout { suspects } => {
                f.write_str("resolution timeout suspects")?;
                for t in suspects {
                    write!(f, " {t}")?;
                }
                Ok(())
            }
            EventKind::ViewChange { epoch, removed } => {
                write!(f, "view change v{epoch} -")?;
                for t in removed {
                    write!(f, " {t}")?;
                }
                Ok(())
            }
            EventKind::SignalTimeout { round, suspects } => {
                write!(f, "signal timeout {round} suspects")?;
                for t in suspects {
                    write!(f, " {t}")?;
                }
                Ok(())
            }
            EventKind::Crash => f.write_str("crash-stop"),
            EventKind::JoinRequested { to } => write!(f, "join request {to}"),
            EventKind::Rejoin { epoch, thread } => {
                write!(f, "rejoin v{epoch} + {thread}")
            }
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.at, self.thread, self.action, self.kind
        )
    }
}

/// Receives runtime [`Event`]s from every participating thread.
///
/// Implementations must be thread-safe: participants invoke the observer
/// concurrently from their own OS threads.
pub trait Observer: Send + Sync {
    /// Called synchronously at each observable step.
    fn on_event(&self, event: &Event);
}

/// The default observer: ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn on_event(&self, _event: &Event) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_compactly() {
        let e = Event {
            at: VirtualInstant::EPOCH,
            thread: ThreadId::new(2),
            action: ActionId::top_level(9),
            kind: EventKind::Raise {
                exception: ExceptionId::new("vm_stop"),
            },
        };
        let s = e.to_string();
        assert!(s.contains("raise vm_stop"), "{s}");
    }

    #[test]
    fn noop_observer_is_callable() {
        let e = Event {
            at: VirtualInstant::EPOCH,
            thread: ThreadId::new(0),
            action: ActionId::top_level(1),
            kind: EventKind::RecoveryStart { raised: true },
        };
        NoopObserver.on_event(&e);
    }
}
