//! The distributed CA-action system: participating threads, the simulated
//! network beneath them, and run-wide statistics.
//!
//! §5.1: "For a given CA action, each participating thread is located in its
//! own node (or partition) … Every partition has a copy of the run-time
//! system, including the subsystems for concurrent exception handling and
//! resolution." [`System::spawn`] creates exactly that: one OS thread per
//! participant, bound 1:1 to a network partition, with the recovery driver
//! (see [`crate::context`]) as its partition executive.

use std::fmt;
use std::sync::Arc;

use caa_core::ids::ThreadId;
use caa_core::message::Message;
use caa_core::time::{VirtualDuration, VirtualInstant};
use caa_simnet::{ClockMode, FaultPlan, LatencyModel, NetConfig, NetStats, Network};
use parking_lot::Mutex;

use crate::context::Ctx;
use crate::error::{RuntimeError, Step, Unwind};
use crate::observe::Observer;
use crate::pool::{spawn_pooled, TaskHandle};
use crate::protocol::{ResolutionProtocol, XrrResolution};

/// Run-wide counters maintained by the recovery driver.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RuntimeStats {
    /// Completed coordinated recoveries (one per participant per action
    /// recovery).
    pub recoveries: u64,
    /// Exceptions raised by roles (including abortion-handler exceptions).
    pub exceptions_raised: u64,
    /// Invocations of the resolution procedure (graph search). The paper's
    /// algorithm performs exactly one per recovery; the Campbell–Randell
    /// baseline performs `N(N−1)(N−2)` (§5.3).
    pub resolutions_invoked: u64,
    /// Nested actions aborted by enclosing-level recovery.
    pub aborts: u64,
    /// Undo rounds executed by the signalling algorithm (§3.4 case 2).
    pub undo_rounds: u64,
    /// Corrupted messages absorbed outside the signalling window.
    pub corrupted_ignored: u64,
    /// Exit-protocol waits that expired with votes missing (presumed
    /// crashed peers; the action resolved to abortion).
    pub exit_timeouts: u64,
    /// Bounded resolution waits that expired with a peer silent (the
    /// membership extension then presumes the peer crashed).
    pub resolution_timeouts: u64,
    /// Membership view changes applied (initiated locally or adopted from
    /// a peer's announcement; each participant counts its own).
    pub view_changes: u64,
}

/// State shared between all participants of one [`System`].
pub(crate) struct SystemShared {
    pub(crate) protocol: Arc<dyn ResolutionProtocol>,
    /// The paper's `Treso`: virtual time charged per invocation of the
    /// resolution procedure.
    pub(crate) resolution_delay: VirtualDuration,
    pub(crate) stats: Mutex<RuntimeStats>,
    pub(crate) observer: Option<Arc<dyn Observer>>,
}

/// Holds participant bodies back until every participant is registered.
///
/// A spawned OS thread may otherwise run ahead — advancing virtual time,
/// sending messages to not-yet-registered partitions, or even declaring a
/// deadlock — before the caller has spawned its peers. [`System::run`]
/// opens the gate once spawning is complete.
#[derive(Default)]
struct StartGate {
    open: Mutex<bool>,
    cv: parking_lot::Condvar,
}

impl StartGate {
    fn wait(&self) {
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }

    fn open(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

/// A distributed object system hosting CA actions.
///
/// # Examples
///
/// ```
/// use caa_runtime::{ActionDef, System};
/// use caa_core::outcome::ActionOutcome;
/// use caa_core::time::secs;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sys = System::builder().build();
/// let action = ActionDef::builder("hello")
///     .role("solo", 0u32)
///     .build()?;
///
/// sys.spawn("T0", move |ctx| {
///     let outcome = ctx.enter(&action, "solo", |rc| rc.work(secs(1.0)))?;
///     assert_eq!(outcome, ActionOutcome::Success);
///     Ok(())
/// });
/// let report = sys.run();
/// assert!(report.is_ok());
/// # Ok(())
/// # }
/// ```
pub struct System {
    net: Network<Message>,
    shared: Arc<SystemShared>,
    gate: Arc<StartGate>,
    threads: Vec<(String, TaskHandle<Result<(), RuntimeError>>)>,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("threads", &self.threads.len())
            .field("protocol", &self.shared.protocol.name())
            .finish()
    }
}

impl System {
    /// Starts configuring a system.
    #[must_use]
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// The underlying network (message counters, current virtual time).
    #[must_use]
    pub fn network(&self) -> &Network<Message> {
        &self.net
    }

    /// Snapshot of the runtime counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.shared.stats.lock().clone()
    }

    /// Spawns a participating thread. Thread ids are assigned in spawn
    /// order starting from 0 — bind action roles accordingly.
    ///
    /// The body runs on its own OS thread (drawn from a process-wide pool
    /// of finished participants, so short-lived systems — e.g. sweep
    /// seeds — do not pay a fresh thread spawn per participant) with a
    /// dedicated network partition; it typically enters one or more CA
    /// actions and propagates [`Flow`](crate::Flow) with `?`.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(&mut Ctx) -> Step + Send + 'static,
    ) -> ThreadId {
        let name = name.into();
        let endpoint = self.net.endpoint(name.clone());
        let me = ThreadId::new(endpoint.id().as_u32());
        let shared = Arc::clone(&self.shared);
        let gate = Arc::clone(&self.gate);
        let thread_name = name.clone();
        let handle = spawn_pooled(move || {
            // Hold the body until every participant is registered, so
            // virtual time cannot advance past a partition that does
            // not exist yet.
            gate.wait();
            let mut ctx = Ctx::new(me, thread_name, endpoint, shared);
            let result = body(&mut ctx);
            ctx.shutdown();
            match result {
                Ok(()) => Ok(()),
                Err(flow) => match flow.unwind {
                    Unwind::Fatal(e) => Err(e),
                    Unwind::Crash => Err(RuntimeError::Crashed),
                    other => Err(RuntimeError::Protocol(format!(
                        "control flow unwound to the thread top level: {other:?}"
                    ))),
                },
            }
        });
        self.threads.push((name, handle));
        me
    }

    /// Waits for every participating thread and collects the run's results
    /// and statistics.
    #[must_use]
    pub fn run(mut self) -> SystemReport {
        self.gate.open();
        let mut results = Vec::with_capacity(self.threads.len());
        for (name, handle) in std::mem::take(&mut self.threads) {
            let result = match handle.join() {
                Ok(r) => r,
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_owned());
                    Err(RuntimeError::Protocol(format!("thread panicked: {msg}")))
                }
            };
            results.push((name, result));
        }
        SystemReport {
            elapsed: self.net.now().duration_since(VirtualInstant::EPOCH),
            net_stats: self.net.stats(),
            runtime_stats: self.shared.stats.lock().clone(),
            results,
        }
    }
}

impl Drop for System {
    /// Opens the start gate so spawned participant threads do not park
    /// forever when a `System` is dropped without [`System::run`] (their
    /// bodies then execute and terminate as they did before the gate
    /// existed).
    fn drop(&mut self) {
        self.gate.open();
    }
}

/// Outcome of a whole system run.
#[derive(Debug)]
pub struct SystemReport {
    /// Per-thread results in spawn order.
    pub results: Vec<(String, Result<(), RuntimeError>)>,
    /// Message counters from the network.
    pub net_stats: NetStats,
    /// Runtime counters.
    pub runtime_stats: RuntimeStats,
    /// Total (virtual) execution time.
    pub elapsed: VirtualDuration,
}

impl SystemReport {
    /// Whether every thread completed without a fatal error.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.results.iter().all(|(_, r)| r.is_ok())
    }

    /// Panics with a readable summary if any thread failed.
    ///
    /// # Panics
    ///
    /// When any thread returned an error.
    pub fn expect_ok(&self) {
        for (name, result) in &self.results {
            if let Err(e) = result {
                panic!("thread {name} failed: {e}");
            }
        }
    }

    /// Total execution time in seconds, the unit of the paper's tables.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Builder for [`System`] ([C-BUILDER]).
pub struct SystemBuilder {
    mode: ClockMode,
    latency: LatencyModel,
    seed: u64,
    ack_timeout: Option<VirtualDuration>,
    faults: FaultPlan,
    resolution_delay: VirtualDuration,
    protocol: Arc<dyn ResolutionProtocol>,
    observer: Option<Arc<dyn Observer>>,
    tap: Option<Arc<dyn caa_simnet::NetTap>>,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            mode: ClockMode::Virtual,
            latency: LatencyModel::default(),
            seed: 0,
            ack_timeout: None,
            faults: FaultPlan::new(),
            resolution_delay: VirtualDuration::ZERO,
            protocol: Arc::new(XrrResolution),
            observer: None,
            tap: None,
        }
    }
}

impl fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("mode", &self.mode)
            .field("latency", &self.latency)
            .field("seed", &self.seed)
            .field("protocol", &self.protocol.name())
            .finish()
    }
}

impl SystemBuilder {
    /// Virtual (default) or real time.
    #[must_use]
    pub fn clock(mut self, mode: ClockMode) -> Self {
        self.mode = mode;
        self
    }

    /// Message latency model — the paper's `Tmmax` lives here.
    #[must_use]
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Seed for deterministic latency sampling.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Acknowledgment timeout for the retransmission model (the >1 s knee
    /// of Figure 10).
    #[must_use]
    pub fn ack_timeout(mut self, timeout: VirtualDuration) -> Self {
        self.ack_timeout = Some(timeout);
        self
    }

    /// Message losses and corruptions to inject.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The paper's `Treso`: virtual time charged per invocation of the
    /// resolution procedure.
    #[must_use]
    pub fn resolution_delay(mut self, delay: VirtualDuration) -> Self {
        self.resolution_delay = delay;
        self
    }

    /// The resolution protocol (default: the paper's algorithm,
    /// [`XrrResolution`]).
    #[must_use]
    pub fn protocol(mut self, protocol: Arc<dyn ResolutionProtocol>) -> Self {
        self.protocol = protocol;
        self
    }

    /// Attaches an [`Observer`] receiving every protocol-significant
    /// runtime event (see [`crate::observe`]). Default: none — without an
    /// observer the runtime skips event construction entirely.
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a network tap receiving every message send, loss and
    /// corruption (see [`caa_simnet::NetTap`]). Default: none.
    #[must_use]
    pub fn tap(mut self, tap: Arc<dyn caa_simnet::NetTap>) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Builds the system.
    #[must_use]
    pub fn build(self) -> System {
        let net = Network::new(NetConfig {
            mode: self.mode,
            latency: self.latency,
            seed: self.seed,
            ack_timeout: self.ack_timeout,
            faults: self.faults,
            tap: self.tap,
        });
        System {
            net,
            shared: Arc::new(SystemShared {
                protocol: self.protocol,
                resolution_delay: self.resolution_delay,
                stats: Mutex::new(RuntimeStats::default()),
                observer: self.observer,
            }),
            gate: Arc::new(StartGate::default()),
            threads: Vec::new(),
        }
    }
}
