//! The distributed CA-action system: participating threads, the simulated
//! network beneath them, and run-wide statistics.
//!
//! §5.1: "For a given CA action, each participating thread is located in its
//! own node (or partition) … Every partition has a copy of the run-time
//! system, including the subsystems for concurrent exception handling and
//! resolution." [`System::spawn`] creates exactly that: one OS thread per
//! participant, bound 1:1 to a network partition, with the recovery driver
//! (see [`crate::context`]) as its partition executive.

use std::fmt;
use std::sync::Arc;

use caa_core::ids::ThreadId;
use caa_core::message::Message;
use caa_core::time::{VirtualDuration, VirtualInstant};
use caa_simnet::{
    ClockMode, FaultPlan, LatencyModel, NetArena, NetConfig, NetStats, Network, SchedStats,
};
use parking_lot::Mutex;

use crate::context::Ctx;
use crate::error::{RuntimeError, Step, Unwind};
use crate::observe::Observer;
use crate::pool::{spawn_pooled, TaskHandle};
use crate::protocol::{ResolutionProtocol, XrrResolution};

/// Run-wide counters maintained by the recovery driver.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RuntimeStats {
    /// Completed coordinated recoveries (one per participant per action
    /// recovery).
    pub recoveries: u64,
    /// Exceptions raised by roles (including abortion-handler exceptions).
    pub exceptions_raised: u64,
    /// Invocations of the resolution procedure (graph search). The paper's
    /// algorithm performs exactly one per recovery; the Campbell–Randell
    /// baseline performs `N(N−1)(N−2)` (§5.3).
    pub resolutions_invoked: u64,
    /// Nested actions aborted by enclosing-level recovery.
    pub aborts: u64,
    /// Undo rounds executed by the signalling algorithm (§3.4 case 2).
    pub undo_rounds: u64,
    /// Corrupted messages absorbed outside the signalling window.
    pub corrupted_ignored: u64,
    /// Exit-protocol waits that expired with votes missing (the suspicion
    /// facility then presumes the silent peers crashed and the wait
    /// continues over the shrunken view).
    pub exit_timeouts: u64,
    /// Bounded signalling waits that expired against a degraded view (the
    /// suspicion facility presumes the silent peers crashed before the ƒ
    /// rule of §3.4 fills their announcements).
    pub signal_timeouts: u64,
    /// Bounded resolution waits that expired with a peer silent (the
    /// membership extension then presumes the peer crashed).
    pub resolution_timeouts: u64,
    /// Membership view changes applied (initiated locally or adopted from
    /// a peer's announcement; each participant counts its own).
    pub view_changes: u64,
    /// Completed epoch-numbered rejoins: restarted participants that were
    /// granted the current view by a survivor and re-entered their crashed
    /// action (counted once per re-entry, on the rejoining thread).
    pub rejoins: u64,
}

/// State shared between all participants of one [`System`].
pub(crate) struct SystemShared {
    pub(crate) protocol: Arc<dyn ResolutionProtocol>,
    /// The paper's `Treso`: virtual time charged per invocation of the
    /// resolution procedure.
    pub(crate) resolution_delay: VirtualDuration,
    pub(crate) stats: Mutex<RuntimeStats>,
    pub(crate) observer: Option<Arc<dyn Observer>>,
}

/// A registered-but-not-yet-dispatched participant body.
///
/// [`System::spawn`] registers the participant's network partition
/// immediately (ids are assigned in spawn order, and a registered
/// endpoint holds virtual time back), but hands the body to a pool
/// thread only when [`System::run`] is called — by which point every
/// participant is registered, so no start gate is needed and each worker
/// begins executing its body directly instead of parking on a gate
/// first. (The former gate cost one extra park/wake per participant per
/// run — measurable at sweep rates.)
type PendingBody = Box<dyn FnOnce() -> Result<(), RuntimeError> + Send + 'static>;

/// A dispatched participant's join handle.
type ParticipantHandle = TaskHandle<Result<(), RuntimeError>>;

/// A distributed object system hosting CA actions.
///
/// # Examples
///
/// ```
/// use caa_runtime::{ActionDef, System};
/// use caa_core::outcome::ActionOutcome;
/// use caa_core::time::secs;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sys = System::builder().build();
/// let action = ActionDef::builder("hello")
///     .role("solo", 0u32)
///     .build()?;
///
/// sys.spawn("T0", move |ctx| {
///     let outcome = ctx.enter(&action, "solo", |rc| rc.work(secs(1.0)))?;
///     assert_eq!(outcome, ActionOutcome::Success);
///     Ok(())
/// });
/// let report = sys.run();
/// assert!(report.is_ok());
/// # Ok(())
/// # }
/// ```
pub struct System {
    net: Network<Message>,
    shared: Arc<SystemShared>,
    pending: Vec<(Arc<str>, PendingBody)>,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("threads", &self.pending.len())
            .field("protocol", &self.shared.protocol.name())
            .finish()
    }
}

impl System {
    /// Starts configuring a system.
    #[must_use]
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// The underlying network (message counters, current virtual time).
    #[must_use]
    pub fn network(&self) -> &Network<Message> {
        &self.net
    }

    /// Snapshot of the runtime counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.shared.stats.lock().clone()
    }

    /// Spawns a participating thread. Thread ids are assigned in spawn
    /// order starting from 0 — bind action roles accordingly.
    ///
    /// The body runs on its own OS thread (drawn from a process-wide pool
    /// of finished participants, so short-lived systems — e.g. sweep
    /// seeds — do not pay a fresh thread spawn per participant) with a
    /// dedicated network partition; it typically enters one or more CA
    /// actions and propagates [`Flow`](crate::Flow) with `?`.
    pub fn spawn(
        &mut self,
        name: impl Into<Arc<str>>,
        body: impl FnOnce(&mut Ctx) -> Step + Send + 'static,
    ) -> ThreadId {
        // One interning per participant: the endpoint, the context and the
        // report label all share the same text (and callers that already
        // hold an `Arc<str>` — e.g. sweep drivers with cached thread
        // names — pay no allocation at all).
        let name = name.into();
        let endpoint = self.net.endpoint(Arc::clone(&name));
        let me = ThreadId::new(endpoint.id().as_u32());
        let shared = Arc::clone(&self.shared);
        let thread_name = Arc::clone(&name);
        // Registration happens now (the endpoint above holds virtual time
        // back); the body is dispatched to a pool thread by `run`, once
        // every participant is registered.
        let job: PendingBody = Box::new(move || {
            let mut ctx = Ctx::new(me, thread_name, endpoint, shared);
            let result = body(&mut ctx);
            ctx.shutdown();
            match result {
                Ok(()) => Ok(()),
                Err(flow) => match flow.unwind {
                    Unwind::Fatal(e) => Err(e),
                    Unwind::Crash => Err(RuntimeError::Crashed),
                    other => Err(RuntimeError::Protocol(format!(
                        "control flow unwound to the thread top level: {other:?}"
                    ))),
                },
            }
        });
        self.pending.push((name, job));
        me
    }

    /// Waits for every participating thread and collects the run's results
    /// and statistics.
    #[must_use]
    pub fn run(self) -> SystemReport {
        self.run_reclaiming().0
    }

    /// [`System::run`], additionally reclaiming the network's allocations
    /// into a [`NetArena`] for the next system (see
    /// [`SystemBuilder::net_arena`]). Returns `None` for the arena when a
    /// clone of the network (or a leaked endpoint) is still alive — safe
    /// to call unconditionally; sweep drivers thread the arena through
    /// every seed so actor slots, delivery heaps and link rows are
    /// allocated once per worker instead of once per seed.
    #[must_use]
    pub fn run_reclaiming(mut self) -> (SystemReport, Option<NetArena<Message>>) {
        let threads: Vec<(Arc<str>, ParticipantHandle)> = self
            .pending
            .drain(..)
            .map(|(name, job)| (name, spawn_pooled(job)))
            .collect();
        let mut results = Vec::with_capacity(threads.len());
        for (name, handle) in threads {
            let result = match handle.join() {
                Ok(r) => r,
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_owned());
                    Err(RuntimeError::Protocol(format!("thread panicked: {msg}")))
                }
            };
            results.push((name.to_string(), result));
        }
        let report = SystemReport {
            elapsed: self.net.now().duration_since(VirtualInstant::EPOCH),
            net_stats: self.net.stats(),
            sched_stats: self.net.sched_stats(),
            runtime_stats: self.shared.stats.lock().clone(),
            results,
        };
        // `System` has a `Drop` impl, so the network cannot be moved out;
        // clone the (Arc-backed) handle, drop the system, then reclaim
        // through the now-sole owner.
        let net = self.net.clone();
        drop(self);
        let arena = net.reclaim();
        (report, arena)
    }
}

impl Drop for System {
    /// Dispatches any never-run participant bodies when a `System` is
    /// dropped without [`System::run`]: the bodies execute (and their
    /// endpoints retire) exactly as they did under the former start-gate
    /// design, where dropping the system opened the gate.
    fn drop(&mut self) {
        for (_, job) in self.pending.drain(..) {
            drop(spawn_pooled(job));
        }
    }
}

/// Outcome of a whole system run.
#[derive(Debug)]
pub struct SystemReport {
    /// Per-thread results in spawn order.
    pub results: Vec<(String, Result<(), RuntimeError>)>,
    /// Message counters from the network.
    pub net_stats: NetStats,
    /// Scheduler park/wake handoff counters (wall-clock facts about the
    /// host scheduler, not deterministic — see [`SchedStats`]).
    pub sched_stats: SchedStats,
    /// Runtime counters.
    pub runtime_stats: RuntimeStats,
    /// Total (virtual) execution time.
    pub elapsed: VirtualDuration,
}

impl SystemReport {
    /// Whether every thread completed without a fatal error.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.results.iter().all(|(_, r)| r.is_ok())
    }

    /// Panics with a readable summary if any thread failed.
    ///
    /// # Panics
    ///
    /// When any thread returned an error.
    pub fn expect_ok(&self) {
        for (name, result) in &self.results {
            if let Err(e) = result {
                panic!("thread {name} failed: {e}");
            }
        }
    }

    /// Total execution time in seconds, the unit of the paper's tables.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Builder for [`System`] ([C-BUILDER]).
pub struct SystemBuilder {
    mode: ClockMode,
    latency: LatencyModel,
    seed: u64,
    ack_timeout: Option<VirtualDuration>,
    faults: FaultPlan,
    resolution_delay: VirtualDuration,
    protocol: Arc<dyn ResolutionProtocol>,
    observer: Option<Arc<dyn Observer>>,
    tap: Option<Arc<dyn caa_simnet::NetTap>>,
    net_arena: Option<NetArena<Message>>,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            mode: ClockMode::Virtual,
            latency: LatencyModel::default(),
            seed: 0,
            ack_timeout: None,
            faults: FaultPlan::new(),
            resolution_delay: VirtualDuration::ZERO,
            protocol: Arc::new(XrrResolution),
            observer: None,
            tap: None,
            net_arena: None,
        }
    }
}

impl fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("mode", &self.mode)
            .field("latency", &self.latency)
            .field("seed", &self.seed)
            .field("protocol", &self.protocol.name())
            .finish()
    }
}

impl SystemBuilder {
    /// Virtual (default) or real time.
    #[must_use]
    pub fn clock(mut self, mode: ClockMode) -> Self {
        self.mode = mode;
        self
    }

    /// Message latency model — the paper's `Tmmax` lives here.
    #[must_use]
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Seed for deterministic latency sampling.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Acknowledgment timeout for the retransmission model (the >1 s knee
    /// of Figure 10).
    #[must_use]
    pub fn ack_timeout(mut self, timeout: VirtualDuration) -> Self {
        self.ack_timeout = Some(timeout);
        self
    }

    /// Message losses and corruptions to inject.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The paper's `Treso`: virtual time charged per invocation of the
    /// resolution procedure.
    #[must_use]
    pub fn resolution_delay(mut self, delay: VirtualDuration) -> Self {
        self.resolution_delay = delay;
        self
    }

    /// The resolution protocol (default: the paper's algorithm,
    /// [`XrrResolution`]).
    #[must_use]
    pub fn protocol(mut self, protocol: Arc<dyn ResolutionProtocol>) -> Self {
        self.protocol = protocol;
        self
    }

    /// Attaches an [`Observer`] receiving every protocol-significant
    /// runtime event (see [`crate::observe`]). Default: none — without an
    /// observer the runtime skips event construction entirely.
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a network tap receiving every message send, loss and
    /// corruption (see [`caa_simnet::NetTap`]). Default: none.
    #[must_use]
    pub fn tap(mut self, tap: Arc<dyn caa_simnet::NetTap>) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Recycles the allocations of a previous system's network (see
    /// [`System::run_reclaiming`] and [`caa_simnet::NetArena`]). Purely an
    /// allocation cache: a system built from an arena behaves — and
    /// traces — byte-identically to a fresh one.
    #[must_use]
    pub fn net_arena(mut self, arena: NetArena<Message>) -> Self {
        self.net_arena = Some(arena);
        self
    }

    /// Builds the system.
    #[must_use]
    pub fn build(self) -> System {
        let net = Network::new_reusing(
            NetConfig {
                mode: self.mode,
                latency: self.latency,
                seed: self.seed,
                ack_timeout: self.ack_timeout,
                faults: self.faults,
                tap: self.tap,
            },
            self.net_arena,
        );
        System {
            net,
            shared: Arc::new(SystemShared {
                protocol: self.protocol,
                resolution_delay: self.resolution_delay,
                stats: Mutex::new(RuntimeStats::default()),
                observer: self.observer,
            }),
            pending: Vec::new(),
        }
    }
}
