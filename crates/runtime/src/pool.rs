//! A process-wide pool of reusable participant threads.
//!
//! [`System::spawn`](crate::System::spawn) binds every participant to an
//! OS thread. Sweep drivers build and tear down thousands of short-lived
//! systems per second, so spawning fresh OS threads per run is a
//! measurable per-seed cost; this pool hands finished participants'
//! threads to the next system instead. Pooling is invisible to the
//! simulation: thread identity plays no role anywhere (participants are
//! identified by their registration-order [`ThreadId`]s), and a pooled
//! worker carries no state between jobs.
//!
//! Workers park on a private channel and exit after a short idle period,
//! so the pool's footprint tracks the peak concurrency of recent runs
//! rather than growing without bound.
//!
//! Trade-off: pooled OS threads carry the generic name
//! `caa-participant` instead of the participant's name. Participant
//! attribution is preserved where it matters — panics are captured per
//! task and re-paired with the participant name by
//! [`System::run`](crate::System::run)'s join loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Idle workers: `(worker id, sender of its private channel)`. Dispatch
/// pops an entry and sends the job; retirement is race-free because a
/// worker only exits after removing its own entry *under this lock* — if
/// the entry is already gone, a dispatcher has claimed the worker and a
/// job is in flight, so the worker waits for it instead of exiting (an
/// exit in that window would strand the job and hang its `TaskHandle`).
static IDLE: Mutex<Vec<(u64, Sender<Job>)>> = Mutex::new(Vec::new());

/// Worker-id source for the retirement handshake above.
static NEXT_WORKER_ID: AtomicU64 = AtomicU64::new(0);

/// How long an idle worker parks before exiting.
const IDLE_TTL: Duration = Duration::from_secs(5);

/// A join handle for a pooled task, mirroring
/// [`std::thread::JoinHandle::join`]'s panic-capturing contract.
pub(crate) struct TaskHandle<T> {
    result: Arc<(Mutex<Option<std::thread::Result<T>>>, Condvar)>,
}

impl<T> TaskHandle<T> {
    /// Waits for the task and returns its result — `Err(payload)` if the
    /// task panicked, exactly like joining a dedicated thread.
    pub(crate) fn join(self) -> std::thread::Result<T> {
        let (lock, cv) = &*self.result;
        let mut slot = lock.lock();
        while slot.is_none() {
            cv.wait(&mut slot);
        }
        slot.take().expect("checked above")
    }
}

/// Runs `f` on a pooled worker thread (spawning a fresh one only when no
/// worker is idle) and returns a handle to its result.
pub(crate) fn spawn_pooled<T: Send + 'static>(
    f: impl FnOnce() -> T + Send + 'static,
) -> TaskHandle<T> {
    let result = Arc::new((Mutex::new(None), Condvar::new()));
    let published = Arc::clone(&result);
    let mut job: Job = Box::new(move || {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        let (lock, cv) = &*published;
        *lock.lock() = Some(outcome);
        cv.notify_all();
    });
    loop {
        let idle = IDLE.lock().pop();
        match idle {
            Some((_, worker)) => match worker.send(job) {
                Ok(()) => return TaskHandle { result },
                // Unreachable under the retirement handshake (a worker
                // only exits after removing its entry under the lock), but
                // handled defensively: reclaim the job, try the next one.
                Err(send_error) => job = send_error.0,
            },
            None => break,
        }
    }
    spawn_worker(job);
    TaskHandle { result }
}

fn spawn_worker(first: Job) {
    let id = NEXT_WORKER_ID.fetch_add(1, Ordering::Relaxed);
    let (tx, rx) = channel::<Job>();
    std::thread::Builder::new()
        .name("caa-participant".into())
        .spawn(move || {
            let mut job = Some(first);
            loop {
                let run = match job.take() {
                    Some(run) => run,
                    None => match rx.recv_timeout(IDLE_TTL) {
                        Ok(run) => run,
                        Err(RecvTimeoutError::Disconnected) => return,
                        Err(RecvTimeoutError::Timeout) => {
                            // Retire only while still listed as idle: with
                            // our entry removed under the lock, no
                            // dispatcher can hand us a job anymore. If the
                            // entry is gone, a dispatcher popped it and
                            // its job is (or is about to be) in flight —
                            // receive it instead of stranding it.
                            let mut idle = IDLE.lock();
                            match idle.iter().position(|(wid, _)| *wid == id) {
                                Some(pos) => {
                                    idle.remove(pos);
                                    return;
                                }
                                None => {
                                    drop(idle);
                                    match rx.recv() {
                                        Ok(run) => run,
                                        Err(_) => return,
                                    }
                                }
                            }
                        }
                    },
                };
                run();
                // Park: become claimable for the next system's spawn.
                IDLE.lock().push((id, tx.clone()));
            }
        })
        .expect("spawning a pooled participant thread");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_round_trips() {
        let handle = spawn_pooled(|| 21 * 2);
        assert_eq!(handle.join().unwrap(), 42);
    }

    #[test]
    fn panic_is_captured_like_a_joined_thread() {
        let handle = spawn_pooled(|| panic!("boom"));
        let payload = handle.join().unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        // The worker survives the panic (or a fresh one spawns): the pool
        // stays usable.
        assert_eq!(spawn_pooled(|| 7).join().unwrap(), 7);
    }

    #[test]
    fn workers_are_reused_across_tasks() {
        // Run a task, let its worker park, run another: the pool should
        // not be empty in between (timing-tolerant: we only assert the
        // second task completes).
        spawn_pooled(|| ()).join().unwrap();
        spawn_pooled(|| ()).join().unwrap();
    }
}
